//! End-to-end distributed training (§5.5): Megatron-style GPT-3 and T5
//! training throughput with each CCL backend, including the SM-contention
//! coupling between communication TB footprint and compute.
//!
//! ```sh
//! cargo run --release --example megatron_training
//! ```

use rescc::train::{train_throughput, CclChoice, ModelConfig, ParallelConfig, TrainConfig};

fn main() {
    let cfg = TrainConfig::default();

    println!("=== GPT-3 (tensor parallel, TP=8) ===");
    println!(
        "{:<12} {:>8} {:>22} {:>22} {:>22}",
        "model", "GPUs", "NCCL", "MSCCL", "ResCCL"
    );
    for size in ["6.7B", "13B", "45B"] {
        let model = ModelConfig::gpt3(size).expect("known preset");
        let par = if model.params < 13_000_000_000 {
            ParallelConfig::gpt3(2, 16)
        } else {
            ParallelConfig::gpt3(4, 32)
        };
        let cell = |ccl| {
            let r = train_throughput(&model, &par, ccl, &cfg).expect("train sim");
            format!("{:.2} samp/s ({:.0}ms it)", r.samples_per_s, r.iter_s * 1e3)
        };
        println!(
            "{:<12} {:>8} {:>22} {:>22} {:>22}",
            model.name,
            par.n_gpus(),
            cell(CclChoice::Nccl),
            cell(CclChoice::Msccl),
            cell(CclChoice::Resccl)
        );
    }

    println!("\n=== T5 (data parallel, 16 GPUs) ===");
    for size in ["220M", "770M", "3B"] {
        let model = ModelConfig::t5(size).expect("known preset");
        let par = ParallelConfig::t5(16, 16);
        let n = train_throughput(&model, &par, CclChoice::Nccl, &cfg).expect("train sim");
        let r = train_throughput(&model, &par, CclChoice::Resccl, &cfg).expect("train sim");
        println!(
            "{:<8} NCCL {:>7.2} samp/s -> ResCCL {:>7.2} samp/s ({:+.1}%); \
             breakdown: compute {:.0}ms, exposed DP comm {:.0}ms -> {:.0}ms",
            model.name,
            n.samples_per_s,
            r.samples_per_s,
            100.0 * (r.samples_per_s / n.samples_per_s - 1.0),
            r.compute_s * 1e3,
            n.dp_exposed_s * 1e3,
            r.dp_exposed_s * 1e3,
        );
    }
    println!("\n(collective times come from the simulated backends — Fig. 13's couplings)");
}
