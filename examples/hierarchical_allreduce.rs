//! The paper's motivating workload: the hierarchical-mesh (HM) AllReduce of
//! Appendix A on a multi-node cluster, with the scheduling internals laid
//! open — dependency DAG, HPDS sub-pipelines, TB merging, and the effect of
//! pipelining across micro-batches.
//!
//! ```sh
//! cargo run --release --example hierarchical_allreduce
//! ```

use rescc::algos::hm_allreduce;
use rescc::alloc::TbAllocation;
use rescc::backends::by_step_schedule;
use rescc::core::Compiler;
use rescc::topology::Topology;

fn main() {
    let (nodes, g) = (4u32, 8u32); // the paper's 32-GPU testbed
    let topo = Topology::a100(nodes, g);
    let algo = hm_allreduce(nodes, g);
    println!(
        "HM-AllReduce on {}: {} tasks across 4 phases (intra-RS, inter-RS, \
         inter-AG, intra-AG)",
        topo.name(),
        algo.transfers().len()
    );

    let plan = Compiler::new()
        .compile_spec(&algo, &topo)
        .expect("compiles");

    // How HPDS organizes the DAG into sub-pipelines.
    let sp = &plan.schedule.sub_pipelines;
    println!(
        "HPDS: {} sub-pipelines; first three sizes: {:?}",
        sp.len(),
        sp.iter().take(3).map(Vec::len).collect::<Vec<_>>()
    );
    let inter_tasks = plan.dag.tasks().iter().filter(|t| t.inter_node).count();
    println!(
        "tasks: {} intra-node (NVLink), {} inter-node (RoCE NICs)",
        plan.dag.len() - inter_tasks,
        inter_tasks
    );

    // State-based TB merging vs the rigid connection-based scheme.
    let rigid = TbAllocation::connection_based(&plan.dag, &by_step_schedule(&plan.dag), 4);
    println!(
        "TB allocation: connection-based (4 channels) = {} TBs, \
         state-based = {} TBs ({:.1}% saved)",
        rigid.total_tbs(),
        plan.total_tbs(),
        100.0 * (1.0 - plan.total_tbs() as f64 / rigid.total_tbs() as f64)
    );

    // Micro-batch pipelining in action: more micro-batches, higher algbw.
    println!("\nbuffer    micro-batches  completion    algbw");
    for shift in [3u32, 5, 7, 9] {
        let buffer = (32u64 << 20) << shift;
        let rep = plan.run(buffer, 1 << 20).expect("runs");
        assert_eq!(rep.data_valid, Some(true));
        println!(
            "{:>5} MB  {:>12}  {:>9.2} ms  {:>6.1} GB/s",
            buffer >> 20,
            rep.n_micro_batches,
            rep.completion_ns / 1e6,
            rep.algo_bandwidth_gbps(buffer)
        );
    }
    println!("\n(the pipeline-fill cost amortizes away as micro-batches grow — Eq. 5)");
}
