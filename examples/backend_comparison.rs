//! Head-to-head backend comparison: the same algorithm executed by the
//! NCCL-model (algorithm-level), MSCCL-model (stage-level + interpreter)
//! and ResCCL (task-level) backends — the essence of Figs. 6–9.
//!
//! ```sh
//! cargo run --release --example backend_comparison
//! ```

use rescc::algos::{hm_allgather, hm_allreduce, taccl_like_allreduce};
use rescc::backends::{Backend, MscclBackend, NcclBackend, RescclBackend};
use rescc::topology::Topology;

fn main() {
    let topo = Topology::a100(2, 8);
    let buffer = 512u64 << 20;
    let chunk = 1u64 << 20;

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(NcclBackend::default()),
        Box::new(MscclBackend::default()),
        Box::new(RescclBackend::default()),
    ];

    for (label, spec) in [
        ("expert HM-AllGather", hm_allgather(2, 8)),
        ("expert HM-AllReduce", hm_allreduce(2, 8)),
        (
            "synthesized TACCL-like AllReduce",
            taccl_like_allreduce(2, 8),
        ),
    ] {
        println!(
            "\n=== {label} on {} ({} MB buffer) ===",
            topo.name(),
            buffer >> 20
        );
        println!(
            "{:<8} {:>10} {:>8} {:>12} {:>10} {:>10}",
            "backend", "algbw", "TBs", "avg idle", "max idle", "link util"
        );
        for b in &backends {
            let rep = b
                .run_unchecked(&spec, &topo, buffer, chunk)
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name()));
            println!(
                "{:<8} {:>7.1} GB/s {:>7} {:>11.1}% {:>9.1}% {:>9.1}%",
                rep.backend,
                rep.algbw_gbps(),
                rep.total_tbs,
                100.0 * rep.sim.avg_idle_ratio(),
                100.0 * rep.sim.max_idle_ratio(),
                100.0 * rep.sim.global_link_utilization()
            );
        }
    }
    println!(
        "\nResCCL: higher bandwidth from pipelining + HPDS, fewer TBs from \
         state-based merging, no interpreter overhead."
    );
}
