//! Writing a collective algorithm in ResCCLang and inspecting the
//! generated lightweight kernels.
//!
//! ```sh
//! cargo run --release --example custom_dsl_algorithm
//! ```

use rescc::core::Compiler;
use rescc::topology::Topology;

/// A ring AllGather over 8 GPUs, written exactly like the paper's Fig. 5(a)
/// example program.
const RING_ALLGATHER: &str = r#"
# Ring AllGather: each rank forwards a chunk to its ring successor per step.
def ResCCLAlgo(nRanks=8, AlgoName="ring-from-dsl", OpType="Allgather"):
    N = nRanks
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
"#;

fn main() {
    let topo = Topology::a100(1, 8);
    let plan = Compiler::new()
        .compile_source(RING_ALLGATHER, &topo)
        .expect("DSL compiles");

    println!(
        "parsed + evaluated in {:?}; {} tasks over {} connections",
        plan.timings.parsing,
        plan.dag.len(),
        plan.dag
            .tasks()
            .iter()
            .map(|t| t.conn)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );

    // Show the generated pseudo-CUDA for rank 0 — the lightweight kernel
    // that replaces MSCCL's runtime interpreter.
    let kernels = plan.emit_kernels();
    let rank0: String = kernels
        .lines()
        .skip_while(|l| !l.contains("resccl_kernel_r0"))
        .take_while(|l| !l.contains("resccl_kernel_r1"))
        .collect::<Vec<_>>()
        .join("\n");
    println!("\n--- generated kernel, rank 0 ---\n{rank0}\n");

    let buffer = 128u64 << 20;
    let report = plan.run(buffer, 1 << 20).expect("runs");
    assert_eq!(report.data_valid, Some(true));
    println!(
        "ran {} micro-batches, {:.2} ms, algbw {:.1} GB/s (verified)",
        report.n_micro_batches,
        report.completion_ns / 1e6,
        report.algo_bandwidth_gbps(buffer)
    );
}
