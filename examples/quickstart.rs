//! Quickstart: compile and run one collective through the full ResCCL
//! pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rescc::algos::hm_allreduce;
use rescc::core::Compiler;
use rescc::topology::Topology;

fn main() {
    // Two servers with four A100s each — the Topo1 of the paper's Table 3.
    let topo = Topology::a100(2, 4);
    println!(
        "cluster: {} ({} GPUs, {} NICs)",
        topo.name(),
        topo.n_ranks(),
        topo.n_nics()
    );

    // The hierarchical-mesh AllReduce of Appendix A, as a validated spec.
    let algo = hm_allreduce(2, 4);
    println!(
        "algorithm: {} ({} transmission tasks)",
        algo.name(),
        algo.transfers().len()
    );

    // Compile: dependency analysis -> HPDS scheduling -> state-based TB
    // allocation -> lightweight kernel generation.
    let plan = Compiler::new()
        .compile_spec(&algo, &topo)
        .expect("compilation succeeds");
    println!(
        "compiled in {:?} (analysis {:?}, scheduling {:?}, lowering {:?})",
        plan.timings.total(),
        plan.timings.analysis,
        plan.timings.scheduling,
        plan.timings.lowering
    );
    println!(
        "plan: {} sub-pipelines, {} TBs total",
        plan.schedule.sub_pipelines.len(),
        plan.total_tbs()
    );

    // Run a 256 MB AllReduce with 1 MB transfer chunks; the simulator
    // verifies the collective's result buffer-by-buffer.
    let buffer = 256u64 << 20;
    let report = plan.run(buffer, 1 << 20).expect("simulation succeeds");
    assert_eq!(report.data_valid, Some(true));
    println!(
        "AllReduce of {} MB: {:.2} ms -> algbw {:.1} GB/s \
         (TB utilization {:.1}%, data verified)",
        buffer >> 20,
        report.completion_ns / 1e6,
        report.algo_bandwidth_gbps(buffer),
        100.0 * report.avg_comm_ratio()
    );
}
