//! Fault injection and bottleneck analysis: run the same collective on a
//! healthy cluster, a jittery one, and one with a degraded NIC, then use
//! the execution trace to see where the time went. Finally, kill an
//! NVLink channel mid-run and let the `Communicator` watchdog mask it,
//! recompile against the degraded topology, and finish correctly.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use rescc::algos::hm_allreduce;
use rescc::backends::Communicator;
use rescc::core::Compiler;
use rescc::sim::{render_gantt, BottleneckReport, FaultTimeline, SimConfig};
use rescc::topology::{Rank, ResourceKind, Topology};

fn main() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .expect("compiles");
    let buffer = 128u64 << 20;

    let describe = |topo: &Topology, res: u32| -> String {
        match topo
            .resource_kind(rescc::topology::ResourceId::new(res))
            .expect("resource id taken from this topology")
        {
            ResourceKind::GpuTx(r) => format!("NVLink egress of {r}"),
            ResourceKind::GpuRx(r) => format!("NVLink ingress of {r}"),
            ResourceKind::NicTx(n) => format!("NIC {n} transmit"),
            ResourceKind::NicRx(n) => format!("NIC {n} receive"),
            ResourceKind::PairChan(a, b) => format!("NVLink channel {a}->{b}"),
        }
    };

    let scenarios: Vec<(&str, SimConfig)> = vec![
        ("healthy", SimConfig::default().with_trace()),
        (
            "40% latency jitter (seed 7)",
            SimConfig::default().with_jitter(0.4, 7).with_trace(),
        ),
        (
            "NIC of ranks 0-1 degraded to 25%",
            SimConfig::default()
                .with_degraded(topo.nic_tx(topo.nic_of(Rank::new(0))), 0.25)
                .with_degraded(topo.nic_rx(topo.nic_of(Rank::new(0))), 0.25)
                .with_trace(),
        ),
    ];

    for (name, cfg) in scenarios {
        let rep = plan.run_with(buffer, 1 << 20, &cfg).expect("runs");
        assert_eq!(rep.data_valid, Some(true));
        println!("\n=== {name} ===");
        println!(
            "completion {:.2} ms  ({:.1} GB/s algbw), data verified",
            rep.completion_ns / 1e6,
            rep.algo_bandwidth_gbps(buffer)
        );
        let bn = BottleneckReport::from_report(&rep);
        for (res, ratio, bytes) in bn.hottest.iter().take(3) {
            println!(
                "  hot: {:<28} active {:>5.1}%  ({} MB through)",
                describe(&topo, *res),
                100.0 * ratio,
                bytes >> 20
            );
        }
        println!("{}", render_gantt(&rep.trace, topo.n_ranks(), 56));
    }
    println!("note how the degraded NIC becomes the bottleneck and stretches the tail.");

    // Permanent failure: kill the 0->1 NVLink channel 200 µs in. A bare
    // plan.run_with() would fail with a typed ResourceDown; the
    // Communicator's watchdog masks the channel, recompiles against the
    // degraded topology, and resumes.
    let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
    let mut comm = Communicator::new(topo.clone())
        .with_validation()
        .with_faults(FaultTimeline::new().kill(chan, 200_000.0));
    let rep = comm.all_reduce(buffer).expect("watchdog recovers");
    let rec = rep
        .recovery
        .clone()
        .expect("fault run engages the watchdog");
    println!("\n=== NVLink channel 0->1 killed at 200us (watchdog) ===");
    println!(
        "completion {:.2} ms (+{:.2} ms lost to the failed attempt), \
         {} recompile(s), data verified: {:?}",
        rep.total_completion_ns() / 1e6,
        rec.recovery_ns / 1e6,
        rec.recompiles,
        rep.sim.data_valid,
    );
    for res in &rec.dead_resources {
        println!("  masked: {}", describe(&topo, *res));
    }
}
