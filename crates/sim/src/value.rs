//! Data semantics: machine-checked collective correctness.
//!
//! Every `(micro-batch, rank, chunk)` buffer slot carries a [`ChunkValue`]:
//! a vector of per-source-rank contribution counts. A `recv` replaces the
//! destination value; a `recvReduceCopy` adds contribution counts. After a
//! run, [`expected_final`] states exactly what each slot must hold for the
//! collective to be correct — including detection of *double reduction*
//! (the same rank's data folded in twice), which a plain reached/not-reached
//! bitmask would miss.

use rescc_lang::OpType;
use serde::{Deserialize, Serialize};

/// Contribution counts per source rank: `counts[r]` is how many times rank
/// `r`'s original data has been folded into this buffer slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkValue {
    counts: Vec<u8>,
}

impl ChunkValue {
    /// The zero (uninitialized) value.
    pub fn zero(n_ranks: u32) -> Self {
        Self {
            counts: vec![0; n_ranks as usize],
        }
    }

    /// The unit value: rank `r`'s own original data, exactly once.
    pub fn unit(n_ranks: u32, r: u32) -> Self {
        let mut v = Self::zero(n_ranks);
        v.counts[r as usize] = 1;
        v
    }

    /// The fully-reduced value: every rank's data exactly once.
    pub fn ones(n_ranks: u32) -> Self {
        Self {
            counts: vec![1; n_ranks as usize],
        }
    }

    /// `recv` semantics: overwrite with the incoming value.
    pub fn copy_from(&mut self, incoming: &ChunkValue) {
        self.counts.copy_from_slice(&incoming.counts);
    }

    /// `recvReduceCopy` semantics: fold the incoming value in.
    /// Saturates at 255 (a run long past correct).
    pub fn reduce_from(&mut self, incoming: &ChunkValue) {
        for (a, b) in self.counts.iter_mut().zip(&incoming.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// Is this the zero value?
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u8] {
        &self.counts
    }
}

/// The value each `(rank, chunk)` slot must hold after a correct run of
/// `op`, or `None` when the operator leaves that slot unconstrained
/// (e.g. non-owned chunks after ReduceScatter).
pub fn expected_final(op: OpType, n_ranks: u32, rank: u32, chunk: u32) -> Option<ChunkValue> {
    match op {
        // AllGather: slot c holds rank c's original data, everywhere.
        OpType::AllGather => Some(ChunkValue::unit(n_ranks, chunk)),
        // AllReduce: every slot holds the full reduction.
        OpType::AllReduce => Some(ChunkValue::ones(n_ranks)),
        // ReduceScatter: rank r owns chunk r, fully reduced; other slots
        // are scratch.
        OpType::ReduceScatter => {
            if rank == chunk {
                Some(ChunkValue::ones(n_ranks))
            } else {
                None
            }
        }
    }
}

/// The value each `(rank, chunk)` slot holds before the collective starts.
pub fn initial_value(op: OpType, n_ranks: u32, rank: u32, chunk: u32) -> ChunkValue {
    match op {
        // AllGather input: each rank contributes one chunk (its own slot).
        OpType::AllGather => {
            if rank == chunk {
                ChunkValue::unit(n_ranks, rank)
            } else {
                ChunkValue::zero(n_ranks)
            }
        }
        // Reduction inputs: every slot starts with the local contribution.
        OpType::AllReduce | OpType::ReduceScatter => ChunkValue::unit(n_ranks, rank),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_replaces_reduce_accumulates() {
        let mut a = ChunkValue::unit(4, 0);
        let b = ChunkValue::unit(4, 2);
        a.reduce_from(&b);
        assert_eq!(a.counts(), &[1, 0, 1, 0]);
        a.copy_from(&b);
        assert_eq!(a.counts(), &[0, 0, 1, 0]);
    }

    #[test]
    fn double_reduction_is_detectable() {
        let mut a = ChunkValue::unit(2, 0);
        let b = ChunkValue::unit(2, 1);
        a.reduce_from(&b);
        a.reduce_from(&b); // fold rank 1 twice — wrong for sum
        assert_ne!(a, ChunkValue::ones(2));
        assert_eq!(a.counts(), &[1, 2]);
    }

    #[test]
    fn allgather_contract() {
        // rank 2, chunk 1: must end with rank 1's data exactly.
        assert_eq!(
            expected_final(OpType::AllGather, 4, 2, 1),
            Some(ChunkValue::unit(4, 1))
        );
        assert_eq!(
            initial_value(OpType::AllGather, 4, 2, 2),
            ChunkValue::unit(4, 2)
        );
        assert!(initial_value(OpType::AllGather, 4, 2, 1).is_zero());
    }

    #[test]
    fn reduce_scatter_contract() {
        assert_eq!(
            expected_final(OpType::ReduceScatter, 4, 3, 3),
            Some(ChunkValue::ones(4))
        );
        assert_eq!(expected_final(OpType::ReduceScatter, 4, 3, 1), None);
    }

    #[test]
    fn allreduce_contract() {
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(
                    expected_final(OpType::AllReduce, 4, r, c),
                    Some(ChunkValue::ones(4))
                );
            }
        }
    }
}
