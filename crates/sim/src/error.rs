//! Simulator error type.

use std::fmt;

/// Error produced during simulation (invalid program, deadlock, data
/// corruption, safety-cap violation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    msg: String,
}

impl SimError {
    /// Create an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.msg)
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type SimResult<T> = std::result::Result<T, SimError>;
