//! Simulator error type.
//!
//! [`SimError`] is an enum so callers (notably the Communicator's
//! watchdog/retry layer) can branch on *kind* — a transient fault is worth
//! retrying, a permanent one needs a recompile against a masked topology,
//! and an invalid program or config is fatal no matter how often it is
//! retried. The `Display` prefix (`"simulation error: "`) is stable across
//! every variant.

use crate::frontier::FaultFrontier;
use rescc_ir::IrError;
use std::fmt;

/// Error produced during simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The kernel program is malformed or inconsistent with its DAG (also
    /// wraps compile-pipeline failures surfaced through the sim result).
    InvalidProgram(String),
    /// The scheduler emitted a pipeline that failed validation — a compiler
    /// bug, never an input error. Carries the validator's finding.
    SchedulerBug(IrError),
    /// The TB allocator emitted an allocation that failed validation — a
    /// compiler bug. Carries the validator's finding.
    AllocationBug(IrError),
    /// Kernel generation emitted a program inconsistent with its DAG — a
    /// compiler bug. Carries the validator's finding.
    LoweringBug(IrError),
    /// Execution wedged: the event heap drained with invocations pending.
    Deadlock(String),
    /// The collective finished but produced wrong data.
    Validation(String),
    /// A transfer needed a resource a fault had taken down.
    ResourceDown {
        /// The dead resource's index.
        resource: u32,
        /// The task whose transfer hit the dead resource.
        task: u32,
        /// Sim time of the failure, ns (rounded to the nanosecond).
        at_ns: u64,
        /// `true` when the timeline never brings the resource back: the
        /// caller must mask it and recompile rather than retry.
        permanent: bool,
        /// The set of invocations that had completed when the run aborted
        /// — the partial progress a recovery layer can resume from instead
        /// of restarting. Boxed to keep the error small on the happy path.
        frontier: Option<Box<FaultFrontier>>,
    },
    /// The watchdog deadline elapsed before the collective completed.
    DeadlineExceeded {
        /// The configured deadline, ns.
        deadline_ns: u64,
        /// Invocations completed when the deadline fired.
        completed: u64,
        /// Invocations the run needed.
        total: u64,
    },
    /// The [`SimConfig`](crate::SimConfig) itself is invalid (jitter
    /// fraction outside `[0, 1]`, degradation factor outside `(0, 1]`,
    /// fault event out of range, …).
    InvalidConfig(String),
}

impl SimError {
    /// Create an [`SimError::InvalidProgram`] error with a message (the
    /// historical constructor; pipeline wrappers funnel through it).
    pub fn new(msg: impl Into<String>) -> Self {
        Self::InvalidProgram(msg.into())
    }

    /// Is this failure worth retrying as-is (exponential backoff), rather
    /// than recompiling or giving up? Transient faults are a resource that
    /// is down now but scheduled to come back, and an expired watchdog
    /// deadline.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::ResourceDown {
                permanent: false,
                ..
            } | Self::DeadlineExceeded { .. }
        )
    }

    /// The sim time (ns) at which the failure occurred, for every variant
    /// that carries one: the fault instant for [`SimError::ResourceDown`],
    /// the expired deadline for [`SimError::DeadlineExceeded`]. The
    /// watchdog charges this — not zero — to its elapsed-time accounting,
    /// so backoff and `recovery_ns` stay accurate for every retried error.
    pub fn at_ns(&self) -> Option<u64> {
        match self {
            Self::ResourceDown { at_ns, .. } => Some(*at_ns),
            Self::DeadlineExceeded { deadline_ns, .. } => Some(*deadline_ns),
            _ => None,
        }
    }

    /// The fault frontier captured at abort, when the variant carries one.
    pub fn frontier(&self) -> Option<&FaultFrontier> {
        match self {
            Self::ResourceDown {
                frontier: Some(f), ..
            } => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: ")?;
        match self {
            Self::InvalidProgram(msg) | Self::Deadlock(msg) | Self::Validation(msg) => {
                write!(f, "{msg}")
            }
            Self::SchedulerBug(e) => write!(f, "scheduler bug: {e}"),
            Self::AllocationBug(e) => write!(f, "allocation bug: {e}"),
            Self::LoweringBug(e) => write!(f, "lowering bug: {e}"),
            Self::ResourceDown {
                resource,
                task,
                at_ns,
                permanent,
                frontier,
            } => {
                write!(
                    f,
                    "resource {resource} went down at {at_ns}ns under task {task} ({})",
                    if *permanent { "permanent" } else { "transient" }
                )?;
                if let Some(fr) = frontier {
                    write!(
                        f,
                        "; {}/{} invocations complete",
                        fr.completed(),
                        fr.n_tasks as u64 * fr.n_mb as u64
                    )?;
                }
                Ok(())
            }
            Self::DeadlineExceeded {
                deadline_ns,
                completed,
                total,
            } => write!(
                f,
                "deadline of {deadline_ns}ns exceeded with {completed}/{total} \
                 invocations complete"
            ),
            Self::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::SchedulerBug(e) | Self::AllocationBug(e) | Self::LoweringBug(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type SimResult<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefix_is_stable_across_variants() {
        let errors = [
            SimError::new("bad program"),
            SimError::Deadlock("deadlock: 0/4".into()),
            SimError::Validation("collective produced wrong data".into()),
            SimError::ResourceDown {
                resource: 3,
                task: 7,
                at_ns: 1000,
                permanent: true,
                frontier: Some(Box::new(FaultFrontier::new(4, 2, 1000))),
            },
            SimError::DeadlineExceeded {
                deadline_ns: 500,
                completed: 1,
                total: 8,
            },
            SimError::InvalidConfig("jitter 2".into()),
            SimError::SchedulerBug(IrError::new("task 3 scheduled twice")),
            SimError::AllocationBug(IrError::new("slot missing")),
            SimError::LoweringBug(IrError::new("bad rendezvous")),
        ];
        for e in &errors {
            assert!(e.to_string().starts_with("simulation error: "), "{e}");
        }
    }

    #[test]
    fn compiler_bug_variants_carry_their_source() {
        use std::error::Error;
        let inner = IrError::new("task 3 scheduled twice");
        let e = SimError::SchedulerBug(inner.clone());
        assert!(e.to_string().contains("scheduler bug:"), "{e}");
        assert_eq!(
            e.source().expect("has source").to_string(),
            inner.to_string()
        );
        assert!(!e.is_transient());
        assert!(!SimError::AllocationBug(inner.clone()).is_transient());
        assert!(!SimError::LoweringBug(inner).is_transient());
    }

    #[test]
    fn transient_classification() {
        assert!(SimError::ResourceDown {
            resource: 0,
            task: 0,
            at_ns: 0,
            permanent: false,
            frontier: None
        }
        .is_transient());
        assert!(SimError::DeadlineExceeded {
            deadline_ns: 1,
            completed: 0,
            total: 1
        }
        .is_transient());
        assert!(!SimError::ResourceDown {
            resource: 0,
            task: 0,
            at_ns: 0,
            permanent: true,
            frontier: None
        }
        .is_transient());
        assert!(!SimError::new("nope").is_transient());
        assert!(!SimError::InvalidConfig("nope".into()).is_transient());
    }

    #[test]
    fn at_ns_and_frontier_accessors() {
        let mut f = FaultFrontier::new(2, 1, 77);
        f.mark(0, 0);
        let down = SimError::ResourceDown {
            resource: 1,
            task: 0,
            at_ns: 77,
            permanent: false,
            frontier: Some(Box::new(f.clone())),
        };
        assert_eq!(down.at_ns(), Some(77));
        assert_eq!(down.frontier(), Some(&f));
        let deadline = SimError::DeadlineExceeded {
            deadline_ns: 500,
            completed: 1,
            total: 8,
        };
        assert_eq!(deadline.at_ns(), Some(500));
        assert_eq!(deadline.frontier(), None);
        assert_eq!(SimError::new("x").at_ns(), None);
        assert_eq!(SimError::new("x").frontier(), None);
    }
}
