//! The discrete-event simulation engine.
//!
//! Executes a generated [`KernelProgram`] on a [`Topology`] with fluid
//! (processor-sharing) bandwidth arbitration implementing Eq. (1):
//!
//! * every transfer first spends its startup latency `α` (plus interpreter
//!   overhead and cross-rack hops) without occupying link capacity,
//! * it then *drains* its bytes at a dynamic rate — the minimum, over all
//!   capacity resources on its path, of that resource's effective bandwidth
//!   divided by the number of concurrent drains (`effective_bandwidth(z)`
//!   already folds in the `γ·L(z)` contention penalty),
//! * whenever a resource's load changes, the rates of every transfer
//!   sharing it are settled and re-projected.
//!
//! TBs are state machines walking their slot/micro-batch invocation
//! sequence; an invocation starts when the sender TB and the receiver TB
//! have both arrived **and** all data dependencies of that micro-batch are
//! complete (the `wait_deps` flags of the generated kernel). Blocked time
//! is accounted as sync; transfer time as busy. Source values are captured
//! at transfer start (the FIFO-slot semantics of real CCL buffers), and the
//! receiver applies copy/reduce at completion, so the final buffers can be
//! checked against the collective's contract.

use crate::config::SimConfig;
use crate::error::{SimError, SimResult};
use crate::fault::{Fault, FaultEvent};
use crate::frontier::FaultFrontier;
use crate::metrics::{ResourceStat, SimReport, TbStat};
use crate::obs::{
    add_interval, BubbleCause, BubbleInterval, LinkTimeline, SimObservability, TbTimeline,
};
use crate::trace::{FaultRecord, TraceEvent};
use crate::value::{expected_final, initial_value, ChunkValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescc_ir::{DepDag, MicroBatchPlan, TaskId};
use rescc_kernel::{KernelProgram, LoopOrder};
use rescc_lang::{CommType, OpType};
use rescc_topology::{LinkParams, ResourceId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Run one collective call end to end.
pub fn simulate(
    topo: &Topology,
    dag: &DepDag,
    program: &KernelProgram,
    plan: &MicroBatchPlan,
    op: OpType,
    config: &SimConfig,
) -> SimResult<SimReport> {
    Engine::new(topo, dag, program, plan, op, config)?.run()
}

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
enum EvKind {
    LatencyDone(u32),
    DrainDone(u32, u64),
    /// A scheduled fault transition (index into the sorted schedule).
    Fault(u32),
    /// The watchdog deadline.
    Deadline,
}

#[derive(Clone, Copy, Debug)]
struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: smaller time first; stable tie-break on sequence.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One issue group of a TB: `len` slots starting at `first_slot`, all
/// issued together for micro-batch `mb`. A fused `recv -> send` pair forms
/// a 2-slot group (cut-through: both transfers in flight concurrently);
/// unfused slots are singleton groups.
#[derive(Clone, Copy)]
struct IssueGroup {
    first_slot: u32,
    len: u32,
    mb: u32,
}

struct TbState {
    rank: u32,
    tb: u32,
    prog_rank: usize,
    prog_tb: usize,
    groups: Vec<IssueGroup>,
    group_idx: usize,
    group_remaining: u32,
    /// Fused forwards issued but not yet drained. They never gate
    /// `group_remaining` — the TB advances to its next micro-batch as soon
    /// as the gating slots retire — but the TB is not released until they
    /// finish.
    async_outstanding: u32,
    busy: f64,
    sync: f64,
    release: f64,
    n_inv: u64,
}

#[derive(Clone, Copy)]
struct InvState {
    deps_remaining: u32,
    send_tb: u32,
    send_arrival: f64,
    recv_tb: u32,
    recv_arrival: f64,
    started: bool,
    done: bool,
    /// Transfer index once started.
    transfer: u32,
}

struct Transfer {
    task: TaskId,
    mb: u32,
    bytes: u64,
    remaining: f64,
    rate: f64,
    last_update: f64,
    gen: u64,
    draining: bool,
    send_tb: u32,
    recv_tb: u32,
    start: f64,
    drain_start: f64,
    captured: Option<ChunkValue>,
    /// A fused forward that finished draining before its feeding receive
    /// completed: its completion effects run when the feeder finishes
    /// (cut-through causality).
    pending_complete: bool,
}

/// A classified idle interval keyed by engine TB id (resolved to
/// rank/tb when the report is built).
struct RawBubble {
    tb: u32,
    task: u32,
    mb: u32,
    cause: BubbleCause,
    start: f64,
    end: f64,
}

/// Bubble-attribution accumulator, allocated only when
/// [`SimConfig::attribute_bubbles`] is set so the hot path stays free of
/// observability work otherwise. Recording is strictly read-only with
/// respect to simulation state: enabling it cannot change any timing.
#[derive(Default)]
struct ObsAcc {
    bubbles: Vec<RawBubble>,
    /// Line-rate drain segments per TB: `(tb, drain_start, line_end)`.
    xfer_segments: Vec<(u32, f64, f64)>,
    /// Closed busy intervals per resource (openings mirror
    /// `ResState::active_since`).
    res_intervals: Vec<Vec<(f64, f64)>>,
}

struct ResState {
    params: LinkParams,
    load: u32,
    active_since: f64,
    active_ns: f64,
    bytes: u64,
    draining: Vec<u32>,
    /// Fault state: carrying traffic at all?
    up: bool,
    /// Fault state: brownout bandwidth multiplier (1.0 = nominal).
    factor: f64,
}

struct Engine<'a> {
    dag: &'a DepDag,
    program: &'a KernelProgram,
    plan: &'a MicroBatchPlan,
    op: OpType,
    config: &'a SimConfig,
    n_mb: u32,
    n_ranks: u32,
    now: f64,
    seq: u64,
    tbs: Vec<TbState>,
    invs: Vec<InvState>,
    transfers: Vec<Transfer>,
    resources: Vec<ResState>,
    heap: BinaryHeap<Ev>,
    /// Buffer values: `buffers[mb][rank * n_chunks + chunk]`.
    buffers: Vec<Vec<ChunkValue>>,
    rng: StdRng,
    inv_done: u64,
    inv_total: u64,
    completion: f64,
    /// Barrier bookkeeping: group of each task, tasks of each group, and
    /// remaining incomplete tasks per (group, micro-batch).
    barrier_group_of: Vec<u32>,
    barrier_members: Vec<Vec<TaskId>>,
    barrier_remaining: Vec<Vec<u32>>,
    trace: Vec<TraceEvent>,
    /// Tasks whose send slot is fused with the preceding receive
    /// (`recvCopySend` — startup latency elided).
    fused_task: Vec<bool>,
    /// For a fused forward B: the feeding receive task A (or NONE).
    fused_pred: Vec<u32>,
    /// For a receive A: the fused forwards gated on it.
    fused_next: Vec<Vec<TaskId>>,
    /// Fault schedule, stably sorted by timestamp.
    fault_sched: Vec<FaultEvent>,
    /// Transitions applied so far (reported for post-mortems).
    fault_log: Vec<FaultRecord>,
    /// Per-rank issue-latency multiplier (straggler state).
    straggle: Vec<f64>,
    /// A fault the run cannot survive; the event loop aborts on it.
    fatal: Option<SimError>,
    /// Bubble attribution (None unless `config.attribute_bubbles`).
    obs: Option<Box<ObsAcc>>,
}

impl<'a> Engine<'a> {
    fn new(
        topo: &Topology,
        dag: &'a DepDag,
        program: &'a KernelProgram,
        plan: &'a MicroBatchPlan,
        op: OpType,
        config: &'a SimConfig,
    ) -> SimResult<Self> {
        program
            .validate(dag)
            .map_err(|e| SimError::new(format!("invalid kernel program: {e}")))?;
        config.validate(topo.n_resources(), topo.n_ranks())?;
        let n_mb = plan.n_micro_batches;
        let n_ranks = topo.n_ranks();
        let n_tasks = dag.len();
        let inv_total = n_tasks as u64 * n_mb as u64;
        if inv_total > config.max_invocations {
            return Err(SimError::InvalidConfig(format!(
                "run would execute {inv_total} invocations, above the safety cap {}",
                config.max_invocations
            )));
        }

        // Resources with degradation applied.
        let mut resources: Vec<ResState> = (0..topo.n_resources())
            .map(|r| {
                Ok(ResState {
                    params: topo
                        .resource_params(ResourceId::new(r))
                        .map_err(|e| SimError::new(e.to_string()))?,
                    load: 0,
                    active_since: 0.0,
                    active_ns: 0.0,
                    bytes: 0,
                    draining: Vec::new(),
                    up: true,
                    factor: 1.0,
                })
            })
            .collect::<SimResult<_>>()?;
        for (res, factor) in &config.degraded {
            let p = &mut resources[res.index()].params;
            // Degrade capacity: stretch β and shrink the per-TB rate.
            p.beta_ns_per_byte /= factor;
            p.tb_bw_bytes_per_ns *= factor;
        }

        // TB states.
        let mut tbs = Vec::new();
        for (pr, rank_prog) in program.ranks.iter().enumerate() {
            for (pt, tb_prog) in rank_prog.tbs.iter().enumerate() {
                let stride = tb_prog.mb_stride.max(1);
                let offset = tb_prog.mb_offset;
                let window = if offset >= n_mb {
                    0
                } else {
                    (n_mb - offset - 1) / stride + 1
                };
                // Issue groups: fused slots glue to their predecessor and
                // are issued per micro-batch together; plain slot-major
                // iterates each segment over its micro-batch window;
                // micro-batch-major iterates all slots per micro-batch.
                let mut groups: Vec<IssueGroup> = Vec::new();
                match program.loop_order {
                    LoopOrder::SlotMajor => {
                        let mut segments: Vec<(u32, u32)> = Vec::new();
                        for (si, slot) in tb_prog.slots.iter().enumerate() {
                            match segments.last_mut() {
                                Some(last) if slot.fused_with_prev => last.1 += 1,
                                _ => segments.push((si as u32, 1)),
                            }
                        }
                        for (first_slot, len) in segments {
                            for k in 0..window {
                                groups.push(IssueGroup {
                                    first_slot,
                                    len,
                                    mb: offset + k * stride,
                                });
                            }
                        }
                    }
                    LoopOrder::MicroBatchMajor => {
                        // Each micro-batch walks the pipeline; fused pairs
                        // issue together as one recvCopySend.
                        let mut segments: Vec<(u32, u32)> = Vec::new();
                        for (si, slot) in tb_prog.slots.iter().enumerate() {
                            match segments.last_mut() {
                                Some(last) if slot.fused_with_prev => last.1 += 1,
                                _ => segments.push((si as u32, 1)),
                            }
                        }
                        for k in 0..window {
                            for &(first_slot, len) in &segments {
                                groups.push(IssueGroup {
                                    first_slot,
                                    len,
                                    mb: offset + k * stride,
                                });
                            }
                        }
                    }
                }
                tbs.push(TbState {
                    rank: rank_prog.rank.0,
                    tb: pt as u32,
                    prog_rank: pr,
                    prog_tb: pt,
                    groups,
                    group_idx: 0,
                    group_remaining: 0,
                    async_outstanding: 0,
                    busy: 0.0,
                    sync: 0.0,
                    release: 0.0,
                    n_inv: 0,
                });
            }
        }

        // Fusion marks (per task) and the feeder relation.
        let mut fused_task = vec![false; n_tasks];
        let mut fused_pred = vec![NONE; n_tasks];
        let mut fused_next: Vec<Vec<TaskId>> = vec![Vec::new(); n_tasks];
        for rp in &program.ranks {
            for tb in &rp.tbs {
                for (si, slot) in tb.slots.iter().enumerate() {
                    if slot.fused_with_prev {
                        fused_task[slot.task.index()] = true;
                        let feeder = tb.slots[si - 1].task;
                        fused_pred[slot.task.index()] = feeder.0;
                        fused_next[feeder.index()].push(slot.task);
                    }
                }
            }
        }

        // Invocation states.
        let mut invs = vec![
            InvState {
                deps_remaining: 0,
                send_tb: NONE,
                send_arrival: 0.0,
                recv_tb: NONE,
                recv_arrival: 0.0,
                started: false,
                done: false,
                transfer: NONE,
            };
            n_tasks * n_mb as usize
        ];
        for t in 0..n_tasks {
            let mut preds = dag.preds(TaskId::new(t as u32)).len() as u32;
            // A fused forward's dependency on its feeder is replaced by the
            // cut-through start gate.
            if fused_pred[t] != NONE
                && dag
                    .preds(TaskId::new(t as u32))
                    .contains(&TaskId::new(fused_pred[t]))
            {
                preds -= 1;
            }
            for mb in 0..n_mb {
                invs[t * n_mb as usize + mb as usize].deps_remaining = preds;
            }
        }

        // Barrier groups.
        let (barrier_group_of, barrier_members, mut barrier_remaining) =
            if let Some(groups) = &program.barrier_groups {
                if groups.len() != n_tasks {
                    return Err(SimError::new(format!(
                        "barrier groups cover {} tasks, DAG has {n_tasks}",
                        groups.len()
                    )));
                }
                let n_groups = groups.iter().copied().max().unwrap_or(0) as usize + 1;
                let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); n_groups];
                for (t, &g) in groups.iter().enumerate() {
                    members[g as usize].push(TaskId::new(t as u32));
                }
                let remaining: Vec<Vec<u32>> = members
                    .iter()
                    .map(|m| vec![m.len() as u32; n_mb as usize])
                    .collect();
                (groups.clone(), members, remaining)
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };

        // Buffers.
        let n_chunks = dag.n_chunks();
        let mut buffers: Vec<Vec<ChunkValue>> = if config.validate_data {
            (0..n_mb)
                .map(|_| {
                    (0..n_ranks)
                        .flat_map(|r| (0..n_chunks).map(move |c| initial_value(op, n_ranks, r, c)))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };

        // Partial-progress resume: replay the aborted attempt's completed
        // transfers into the value buffers, mark completed invocations
        // done, and pre-propagate their dependency / barrier effects so
        // the remaining work starts exactly where the abort left off —
        // without re-running any (non-idempotent) reduction.
        let mut inv_done_init = 0u64;
        if let Some(rs) = &config.resume {
            rs.validate(n_tasks as u32, n_mb, n_ranks, n_chunks)
                .map_err(SimError::InvalidConfig)?;
            if config.validate_data {
                for op_ in &rs.replay {
                    let src = (op_.src * n_chunks + op_.chunk) as usize;
                    let dst = (op_.dst * n_chunks + op_.chunk) as usize;
                    let v = buffers[op_.mb as usize][src].clone();
                    let slot = &mut buffers[op_.mb as usize][dst];
                    if op_.reduce {
                        slot.reduce_from(&v);
                    } else {
                        slot.copy_from(&v);
                    }
                }
            }
            for t in 0..n_tasks {
                for mb in 0..n_mb {
                    if !rs.is_done(t as u32, mb) {
                        continue;
                    }
                    let inv = &mut invs[t * n_mb as usize + mb as usize];
                    inv.started = true;
                    inv.done = true;
                    inv_done_init += 1;
                    for &s in dag.succs(TaskId::new(t as u32)) {
                        // The fused forward's dependency on its feeder was
                        // lifted at initialization, mirroring completion.
                        if fused_pred[s.index()] == t as u32 {
                            continue;
                        }
                        invs[s.index() * n_mb as usize + mb as usize].deps_remaining -= 1;
                    }
                    if !barrier_group_of.is_empty() {
                        let g = barrier_group_of[t] as usize;
                        barrier_remaining[g][mb as usize] -= 1;
                    }
                }
            }
        }

        Ok(Self {
            dag,
            program,
            plan,
            op,
            config,
            n_mb,
            n_ranks,
            now: 0.0,
            seq: 0,
            tbs,
            invs,
            transfers: Vec::new(),
            resources,
            heap: BinaryHeap::new(),
            buffers,
            rng: StdRng::seed_from_u64(config.seed),
            inv_done: inv_done_init,
            inv_total,
            completion: 0.0,
            barrier_group_of,
            barrier_members,
            barrier_remaining,
            trace: Vec::new(),
            fused_task,
            fused_pred,
            fused_next,
            fault_sched: Vec::new(),
            fault_log: Vec::new(),
            straggle: vec![1.0; n_ranks as usize],
            fatal: None,
            obs: config.attribute_bubbles.then(|| {
                Box::new(ObsAcc {
                    res_intervals: vec![Vec::new(); topo.n_resources() as usize],
                    ..ObsAcc::default()
                })
            }),
        })
    }

    /// Is task `task` allowed to start micro-batch `mb` under the
    /// program's barrier discipline?
    fn barrier_ok(&self, task: TaskId, mb: u32) -> bool {
        let stride = self.program.barrier_stride.max(1);
        if self.barrier_group_of.is_empty() || mb < stride {
            return true;
        }
        let g = self.barrier_group_of[task.index()] as usize;
        self.barrier_remaining[g][(mb - stride) as usize] == 0
    }

    fn run(mut self) -> SimResult<SimReport> {
        // Fault schedule: stable-sort by timestamp. Transitions at or
        // before t = 0 — already in the past, e.g. after a retry shifted
        // the timeline with [`FaultTimeline::advanced`] — apply before
        // launch; the rest enter the event heap. Fault events are pushed
        // before any transfer event, so at equal timestamps they fire
        // first (stable `seq` tie-break) — replay is deterministic.
        let mut sched = self.config.faults.events().to_vec();
        sched.sort_by(|a, b| a.at_ns.total_cmp(&b.at_ns));
        self.fault_sched = sched;
        for i in 0..self.fault_sched.len() as u32 {
            let at = self.fault_sched[i as usize].at_ns;
            if at <= 0.0 {
                self.apply_fault(i);
            } else {
                self.push_event(at, EvKind::Fault(i));
            }
        }
        if let Some(d) = self.config.deadline_ns {
            self.push_event(d, EvKind::Deadline);
        }

        // Kernel launch: every TB arrives at its first invocation at t = 0.
        for tb_id in 0..self.tbs.len() as u32 {
            self.tb_arrive(tb_id);
        }
        if let Some(err) = self.fatal.take() {
            return Err(err);
        }

        while let Some(ev) = self.heap.pop() {
            // Monotonicity tolerance must scale with the clock: at f64 ns
            // magnitudes a second-long run sits near 1e9, where rounding
            // noise dwarfs any fixed absolute epsilon. Allow one part in
            // 1e12 of the current time (≈1ms worth of ULPs at 1e9 ns),
            // with a small absolute floor for clocks near zero.
            debug_assert!(
                ev.t >= self.now - 1e-9f64.max(self.now.abs() * 1e-12),
                "time went backwards: event at {} ns behind clock {} ns",
                ev.t,
                self.now
            );
            self.now = ev.t.max(self.now);
            match ev.kind {
                EvKind::LatencyDone(x) => self.on_latency_done(x),
                EvKind::DrainDone(x, gen) => {
                    if self.transfers[x as usize].gen == gen {
                        self.on_drain_done(x);
                    }
                }
                EvKind::Fault(i) => self.apply_fault(i),
                EvKind::Deadline => {
                    if self.inv_done < self.inv_total {
                        self.fatal.get_or_insert(SimError::DeadlineExceeded {
                            deadline_ns: self.config.deadline_ns.unwrap_or(self.now).round() as u64,
                            completed: self.inv_done,
                            total: self.inv_total,
                        });
                    }
                }
            }
            if let Some(err) = self.fatal.take() {
                return Err(err);
            }
        }

        if self.inv_done != self.inv_total {
            return Err(self.deadlock_report());
        }

        let data_valid = if self.config.validate_data {
            Some(self.check_data()?)
        } else {
            None
        };

        let completion = self.completion;
        let tb_stats = self
            .tbs
            .iter()
            .map(|tb| TbStat {
                rank: tb.rank,
                tb: tb.tb,
                busy_ns: tb.busy,
                sync_ns: tb.sync,
                release_ns: tb.release,
                occupancy_ns: if self.config.early_release {
                    tb.release
                } else {
                    completion
                },
                n_invocations: tb.n_inv,
            })
            .collect();
        let resource_stats = self
            .resources
            .iter()
            .enumerate()
            .filter(|(_, r)| r.bytes > 0)
            .map(|(i, r)| ResourceStat {
                resource: i as u32,
                active_ns: r.active_ns,
                bytes: r.bytes,
                capacity: r.params.bandwidth(),
            })
            .collect();
        let total_bytes = self.transfers.iter().map(|t| t.bytes).sum();
        let obs = self.obs.take().map(|acc| self.build_obs(*acc, completion));

        Ok(SimReport {
            completion_ns: completion,
            total_bytes,
            tb_stats,
            resource_stats,
            data_valid,
            n_micro_batches: self.n_mb,
            n_invocations: self.inv_done,
            trace: self.trace,
            faults: self.fault_log,
            obs,
        })
    }

    /// Resolve the raw attribution accumulator into the public payload:
    /// map engine TB ids to (rank, tb), and bucketize the per-TB state
    /// decomposition and per-link active intervals over the run.
    fn build_obs(&self, acc: ObsAcc, completion: f64) -> SimObservability {
        let n_buckets = self.config.obs_buckets.max(1);
        let bucket_ns = if completion > 0.0 {
            completion / n_buckets as f64
        } else {
            0.0
        };
        let mut tb_timelines: Vec<TbTimeline> = self
            .tbs
            .iter()
            .map(|tb| TbTimeline {
                rank: tb.rank,
                tb: tb.tb,
                transfer: vec![0.0; n_buckets as usize],
                startup: vec![0.0; n_buckets as usize],
                contention: vec![0.0; n_buckets as usize],
                rendezvous: vec![0.0; n_buckets as usize],
                dep_wait: vec![0.0; n_buckets as usize],
            })
            .collect();
        for &(tb, s, e) in &acc.xfer_segments {
            add_interval(&mut tb_timelines[tb as usize].transfer, bucket_ns, s, e);
        }
        let bubbles: Vec<BubbleInterval> = acc
            .bubbles
            .iter()
            .map(|b| {
                let tl = &mut tb_timelines[b.tb as usize];
                let buf = match b.cause {
                    BubbleCause::RendezvousWait => &mut tl.rendezvous,
                    BubbleCause::DepWait => &mut tl.dep_wait,
                    BubbleCause::LinkContention => &mut tl.contention,
                    BubbleCause::Startup => &mut tl.startup,
                };
                add_interval(buf, bucket_ns, b.start, b.end);
                let tb = &self.tbs[b.tb as usize];
                BubbleInterval {
                    tb_index: b.tb,
                    rank: tb.rank,
                    tb: tb.tb,
                    task: b.task,
                    mb: b.mb,
                    cause: b.cause,
                    start_ns: b.start,
                    end_ns: b.end,
                }
            })
            .collect();
        // Link timelines mirror the `resource_stats` population (resources
        // that carried traffic, in index order).
        let link_timelines = self
            .resources
            .iter()
            .enumerate()
            .filter(|(_, r)| r.bytes > 0)
            .map(|(i, _)| {
                let mut active = vec![0.0; n_buckets as usize];
                for &(s, e) in &acc.res_intervals[i] {
                    add_interval(&mut active, bucket_ns, s, e);
                }
                LinkTimeline {
                    resource: i as u32,
                    active,
                }
            })
            .collect();
        SimObservability {
            n_buckets,
            bucket_ns,
            bubbles,
            tb_timelines,
            link_timelines,
        }
    }

    /// Classify the wait `[arrival, now)` of one gating side of a starting
    /// invocation. The portion before the peer's arrival is a rendezvous
    /// wait; whatever remains after both sides are present was spent on
    /// dependencies (DAG predecessors, barrier groups, or the cut-through
    /// gate). The two pieces tile `[arrival, now)` exactly, so per-TB hard
    /// bubbles reconcile with `sync_ns`.
    fn record_wait(&mut self, tb: u32, arrival: f64, peer_arrival: f64, task: TaskId, mb: u32) {
        let now = self.now;
        if now <= arrival {
            return;
        }
        let obs = self
            .obs
            .as_mut()
            .expect("record_wait only when attributing");
        let split = peer_arrival.clamp(arrival, now);
        if split > arrival {
            obs.bubbles.push(RawBubble {
                tb,
                task: task.0,
                mb,
                cause: BubbleCause::RendezvousWait,
                start: arrival,
                end: split,
            });
        }
        if now > split {
            obs.bubbles.push(RawBubble {
                tb,
                task: task.0,
                mb,
                cause: BubbleCause::DepWait,
                start: split,
                end: now,
            });
        }
    }

    /// Apply one scheduled fault transition to the live resource/rank
    /// state. A link death with transfers draining on the resource is
    /// fatal: the typed error names the first victim so the watchdog can
    /// decide between retry and recompile.
    fn apply_fault(&mut self, i: u32) {
        let FaultEvent { at_ns, fault } = self.fault_sched[i as usize];
        self.fault_log.push(FaultRecord { at_ns, fault });
        match fault {
            Fault::LinkDown(r) => {
                self.resources[r.index()].up = false;
                if let Some(&x) = self.resources[r.index()].draining.first() {
                    let task = self.transfers[x as usize].task;
                    self.fail_on_dead(task, r);
                }
            }
            Fault::LinkUp(r) => self.resources[r.index()].up = true,
            Fault::Brownout(r, f) => {
                self.resources[r.index()].factor = f;
                self.reproject_resource(r);
            }
            Fault::BrownoutEnd(r) => {
                self.resources[r.index()].factor = 1.0;
                self.reproject_resource(r);
            }
            Fault::Straggler(rank, m) => self.straggle[rank as usize] = m,
        }
    }

    /// Re-project every transfer draining on `r` after its capacity
    /// changed (brownout start/end).
    fn reproject_resource(&mut self, r: ResourceId) {
        let draining = self.resources[r.index()].draining.clone();
        for x in draining {
            self.reproject(x);
        }
    }

    /// The first dead resource on a task's path, if any.
    fn dead_on_path(&self, task: TaskId) -> Option<ResourceId> {
        self.dag
            .task(task)
            .path
            .iter()
            .find(|r| !self.resources[r.index()].up)
    }

    /// Record a typed [`SimError::ResourceDown`] for `task` hitting dead
    /// resource `r`, carrying the fault frontier — the completed
    /// invocation set a recovery layer can resume from; the event loop
    /// aborts at the next check.
    fn fail_on_dead(&mut self, task: TaskId, r: ResourceId) {
        if self.fatal.is_some() {
            return;
        }
        let frontier = self.capture_frontier();
        self.fatal = Some(SimError::ResourceDown {
            resource: r.0,
            task: task.0,
            at_ns: self.now.max(0.0).round() as u64,
            permanent: self.config.faults.is_permanent_down(r),
            frontier: Some(Box::new(frontier)),
        });
    }

    /// Snapshot the set of completed invocations at the current instant —
    /// the same `done` flags data validation tracks, so the frontier is
    /// deterministic for a deterministic run. `try_start` refuses to issue
    /// new transfers once `fatal` is set, so the set is stable at capture.
    fn capture_frontier(&self) -> FaultFrontier {
        let mut f = FaultFrontier::new(
            self.dag.len() as u32,
            self.n_mb,
            self.now.max(0.0).round() as u64,
        );
        for (i, inv) in self.invs.iter().enumerate() {
            if inv.done {
                f.mark(
                    (i / self.n_mb as usize) as u32,
                    (i % self.n_mb as usize) as u32,
                );
            }
        }
        f
    }

    /// The TB (re-)arrives at its current issue group: every invocation of
    /// the group registers its side and may start. Invocations a
    /// partial-progress resume already completed retire instantly — a
    /// group whose gating slots are all complete is skipped outright (the
    /// loop), so a resumed TB fast-forwards to its first remaining work.
    fn tb_arrive(&mut self, tb_id: u32) {
        loop {
            let now = self.now;
            let tb = &mut self.tbs[tb_id as usize];
            if tb.group_idx >= tb.groups.len() {
                // Released only once every asynchronous fused forward it
                // issued has drained (otherwise the last completion sets
                // release).
                if tb.async_outstanding == 0 {
                    tb.release = now;
                }
                return;
            }
            let group = tb.groups[tb.group_idx];
            let (prog_rank, prog_tb) = (tb.prog_rank, tb.prog_tb);
            // Fused forwards are issued asynchronously: they register their
            // sender side now but do not gate the group, so the TB moves on
            // to the next micro-batch as soon as its gating slots retire —
            // the cut-through pipelining real fused kernels get from
            // sub-chunk FIFO slices. Segments always start with an unfused
            // slot, so every group keeps at least one gating member.
            let mut gating = 0;
            let mut live_gating = 0;
            let mut live_fused = 0;
            for si in group.first_slot..group.first_slot + group.len {
                let slot = self.program.ranks[prog_rank].tbs[prog_tb].slots[si as usize];
                let done =
                    self.invs[slot.task.index() * self.n_mb as usize + group.mb as usize].done;
                if slot.fused_with_prev {
                    if !done {
                        live_fused += 1;
                    }
                } else {
                    gating += 1;
                    if !done {
                        live_gating += 1;
                    }
                }
            }
            debug_assert!(gating > 0, "issue group with no gating slot");
            let tb = &mut self.tbs[tb_id as usize];
            tb.group_remaining = live_gating;
            tb.async_outstanding += live_fused;
            for si in group.first_slot..group.first_slot + group.len {
                let slot = self.program.ranks[prog_rank].tbs[prog_tb].slots[si as usize];
                let idx = slot.task.index() * self.n_mb as usize + group.mb as usize;
                let inv = &mut self.invs[idx];
                if inv.done {
                    continue; // already complete before this attempt
                }
                if slot.is_send() {
                    debug_assert_eq!(inv.send_tb, NONE, "two senders for one invocation");
                    inv.send_tb = tb_id;
                    inv.send_arrival = now;
                } else {
                    debug_assert_eq!(inv.recv_tb, NONE, "two receivers for one invocation");
                    inv.recv_tb = tb_id;
                    inv.recv_arrival = now;
                }
                self.try_start(slot.task, group.mb);
            }
            if live_gating > 0 {
                return;
            }
            // Every gating slot had completed before this attempt: the
            // group is already retired — advance and look at the next.
            self.tbs[tb_id as usize].group_idx += 1;
        }
    }

    fn try_start(&mut self, task: TaskId, mb: u32) {
        if self.fatal.is_some() {
            return; // aborting — don't issue new transfers
        }
        let idx = task.index() * self.n_mb as usize + mb as usize;
        let inv = self.invs[idx];
        if inv.started
            || inv.send_tb == NONE
            || inv.recv_tb == NONE
            || inv.deps_remaining > 0
            || !self.barrier_ok(task, mb)
        {
            return;
        }
        // Cut-through gate: a fused forward starts once its feeding receive
        // is in flight (the feeder's completion dependency was lifted).
        let fp = self.fused_pred[task.index()];
        if fp != NONE {
            let fidx = fp as usize * self.n_mb as usize + mb as usize;
            if !self.invs[fidx].started {
                return;
            }
        }
        // A transfer cannot cross a dead resource: surface the typed
        // failure so the Communicator's watchdog can retry or recompile.
        if let Some(r) = self.dead_on_path(task) {
            self.fail_on_dead(task, r);
            return;
        }
        self.invs[idx].started = true;
        let now = self.now;

        // Sync (blocked) time for both sides. A fused forward's sender side
        // is asynchronous — its TB was never actually blocked on it.
        if fp == NONE {
            self.tbs[inv.send_tb as usize].sync += now - inv.send_arrival;
        }
        self.tbs[inv.recv_tb as usize].sync += now - inv.recv_arrival;
        if self.obs.is_some() {
            // Attribute exactly the intervals the sync accounting above
            // charged, split by which gate resolved last.
            if fp == NONE {
                self.record_wait(inv.send_tb, inv.send_arrival, inv.recv_arrival, task, mb);
            }
            self.record_wait(inv.recv_tb, inv.recv_arrival, inv.send_arrival, task, mb);
        }

        let t = self.dag.task(task);
        let bytes = self.plan.invocation_bytes(mb);
        // Fused forwards capture at completion instead (their payload is
        // the feeder's freshly-delivered value, applied by then).
        let captured = if self.config.validate_data && fp == NONE {
            Some(self.buffers[mb as usize][self.buffer_idx(t.src.0, t.chunk.0)].clone())
        } else {
            None
        };

        // Startup latency: α of the slowest conflict resource + extra path
        // latency + interpreter overhead + optional jitter.
        let alpha = if self.fused_task[task.index()] {
            // Fused recvCopySend: the forward starts inside the previous
            // primitive's epilogue — no fresh startup latency.
            0.0
        } else {
            t.conflict
                .iter()
                .map(|r| self.resources[r.index()].params.alpha_ns)
                .fold(0.0, f64::max)
        };
        let mut latency = (alpha + self.program.exec.overhead_ns()) * self.straggle[t.src.index()];
        if self.config.jitter_frac > 0.0 {
            latency *= 1.0 + self.config.jitter_frac * self.rng.gen::<f64>();
        }

        let x = self.transfers.len() as u32;
        self.transfers.push(Transfer {
            task,
            mb,
            bytes,
            remaining: bytes as f64,
            rate: 0.0,
            last_update: now,
            gen: 0,
            draining: false,
            send_tb: inv.send_tb,
            recv_tb: inv.recv_tb,
            start: now,
            drain_start: now,
            captured,
            pending_complete: false,
        });
        self.invs[idx].transfer = x;
        self.push_event(now + latency, EvKind::LatencyDone(x));

        // Wake fused followers gated on this start.
        let followers = self.fused_next[task.index()].clone();
        for b in followers {
            self.try_start(b, mb);
        }
    }

    fn buffer_idx(&self, rank: u32, chunk: u32) -> usize {
        (rank * self.dag.n_chunks() + chunk) as usize
    }

    fn on_latency_done(&mut self, x: u32) {
        let now = self.now;
        let task = self.transfers[x as usize].task;
        // The resource may have died during the startup latency: fail the
        // transfer before it registers on the path.
        if let Some(r) = self.dead_on_path(task) {
            self.fail_on_dead(task, r);
            return;
        }
        let path = self.dag.task(task).path;
        self.transfers[x as usize].draining = true;
        self.transfers[x as usize].last_update = now;
        self.transfers[x as usize].drain_start = now;
        let mut affected: Vec<u32> = Vec::new();
        for r in path.iter() {
            let rs = &mut self.resources[r.index()];
            if rs.load == 0 {
                rs.active_since = now;
            }
            rs.load += 1;
            for &other in &rs.draining {
                if !affected.contains(&other) {
                    affected.push(other);
                }
            }
            rs.draining.push(x);
        }
        self.reproject(x);
        for other in affected {
            self.reproject(other);
        }
    }

    /// Settle a draining transfer's progress and re-project its finish.
    fn reproject(&mut self, x: u32) {
        let now = self.now;
        let t = &mut self.transfers[x as usize];
        debug_assert!(t.draining);
        t.remaining -= t.rate * (now - t.last_update);
        t.remaining = t.remaining.max(0.0);
        t.last_update = now;
        let path = self.dag.task(t.task).path;
        let mut rate = f64::INFINITY;
        for r in path.iter() {
            let rs = &self.resources[r.index()];
            // Brownout factor scales the momentary capacity.
            let share = rs.params.effective_bandwidth(rs.load) * rs.factor / rs.load as f64;
            rate = rate.min(share);
        }
        debug_assert!(rate.is_finite() && rate > 0.0);
        let t = &mut self.transfers[x as usize];
        t.rate = rate;
        t.gen += 1;
        let gen = t.gen;
        let finish = now + t.remaining / rate;
        self.push_event(finish, EvKind::DrainDone(x, gen));
    }

    fn on_drain_done(&mut self, x: u32) {
        let now = self.now;
        let (task, mb, bytes) = {
            let t = &self.transfers[x as usize];
            (t.task, t.mb, t.bytes)
        };

        // Free resources and settle peers.
        let path = self.dag.task(task).path;
        let mut affected: Vec<u32> = Vec::new();
        let observing = self.obs.is_some();
        // Busy intervals closed on this event ((resource, open time));
        // stays unallocated unless attribution is on.
        let mut closed: Vec<(usize, f64)> = Vec::new();
        for r in path.iter() {
            let rs = &mut self.resources[r.index()];
            rs.load -= 1;
            rs.bytes += bytes;
            if rs.load == 0 {
                rs.active_ns += now - rs.active_since;
                if observing {
                    closed.push((r.index(), rs.active_since));
                }
            }
            match rs.draining.iter().position(|&o| o == x) {
                Some(posn) => {
                    rs.draining.swap_remove(posn);
                }
                // A transfer missing from its own path's drain list means
                // the engine's bookkeeping is inconsistent; surface a
                // typed fatal error instead of poisoning the run with a
                // panic (the event loop aborts on `fatal`).
                None => {
                    self.fatal.get_or_insert(SimError::new(format!(
                        "engine bug: transfer of task {task} (mb {mb}) not \
                         registered on resource {r} it drains"
                    )));
                    return;
                }
            }
            for &other in &rs.draining {
                if !affected.contains(&other) {
                    affected.push(other);
                }
            }
        }
        self.transfers[x as usize].draining = false;
        if let Some(obs) = self.obs.as_mut() {
            for (ri, since) in closed {
                obs.res_intervals[ri].push((since, now));
            }
        }
        for other in affected {
            self.reproject(other);
        }

        // Cut-through causality: a fused forward cannot complete before the
        // receive that feeds it.
        let fp = self.fused_pred[task.index()];
        if fp != NONE {
            let fidx = fp as usize * self.n_mb as usize + mb as usize;
            if !self.invs[fidx].done {
                self.transfers[x as usize].pending_complete = true;
                return;
            }
        }
        self.complete_invocation(x);
    }

    /// Completion effects of a drained transfer: data application, trace,
    /// accounting, dependency propagation, barrier release, TB advance —
    /// possibly deferred for fused forwards.
    fn complete_invocation(&mut self, x: u32) {
        let now = self.now;
        let (task, mb, bytes, start, send_tb, recv_tb) = {
            let t = &self.transfers[x as usize];
            (t.task, t.mb, t.bytes, t.start, t.send_tb, t.recv_tb)
        };

        // Apply data semantics. Fused forwards (no capture at start) read
        // the source slot now — the feeding receive has already applied.
        if self.config.validate_data {
            let captured = match self.transfers[x as usize].captured.take() {
                Some(v) => v,
                None => {
                    let t = self.dag.task(task);
                    self.buffers[mb as usize][self.buffer_idx(t.src.0, t.chunk.0)].clone()
                }
            };
            let t = self.dag.task(task);
            let di = self.buffer_idx(t.dst.0, t.chunk.0);
            let dst = &mut self.buffers[mb as usize][di];
            match t.comm {
                CommType::Recv => dst.copy_from(&captured),
                CommType::Rrc => dst.reduce_from(&captured),
            }
        }

        if self.config.record_trace {
            let t = self.dag.task(task);
            let ev = TraceEvent {
                task: task.0,
                mb,
                src: t.src.0,
                dst: t.dst.0,
                start_ns: start,
                drain_start_ns: self.transfers[x as usize].drain_start,
                end_ns: now,
                bytes,
            };
            debug_assert!(
                ev.start_ns <= ev.drain_start_ns && ev.drain_start_ns <= ev.end_ns,
                "trace event phases out of order: task {task} mb {mb} \
                 start {} drain {} end {}",
                ev.start_ns,
                ev.drain_start_ns,
                ev.end_ns
            );
            self.trace.push(ev);
        }

        if self.obs.is_some() {
            self.record_soft_bubbles(x, task, mb, bytes, start, send_tb, recv_tb);
        }

        // Account busy time on both TBs.
        let dur = now - start;
        self.tbs[send_tb as usize].busy += dur;
        self.tbs[recv_tb as usize].busy += dur;
        self.tbs[send_tb as usize].n_inv += 1;
        self.tbs[recv_tb as usize].n_inv += 1;

        // Mark done, propagate dependencies.
        let idx = task.index() * self.n_mb as usize + mb as usize;
        self.invs[idx].done = true;
        self.inv_done += 1;
        self.completion = self.completion.max(now);
        let succs: Vec<TaskId> = self.dag.succs(task).to_vec();
        for s in succs {
            // The fused forward's dependency on this feeder was lifted at
            // initialization; everything else decrements normally.
            if self.fused_pred[s.index()] == task.0 {
                continue;
            }
            let sidx = s.index() * self.n_mb as usize + mb as usize;
            self.invs[sidx].deps_remaining -= 1;
            self.try_start(s, mb);
        }

        // Barrier release: when the whole group finishes this micro-batch,
        // its tasks may start the next one.
        if !self.barrier_group_of.is_empty() {
            let g = self.barrier_group_of[task.index()] as usize;
            self.barrier_remaining[g][mb as usize] -= 1;
            let stride = self.program.barrier_stride.max(1);
            if self.barrier_remaining[g][mb as usize] == 0 && mb + stride < self.n_mb {
                let members = self.barrier_members[g].clone();
                for m in members {
                    self.try_start(m, mb + stride);
                }
            }
        }

        // Release fused forwards that drained before this feeder finished.
        let followers = self.fused_next[task.index()].clone();
        for b in followers {
            let bidx = b.index() * self.n_mb as usize + mb as usize;
            let bx = self.invs[bidx].transfer;
            if bx != NONE && self.transfers[bx as usize].pending_complete {
                self.transfers[bx as usize].pending_complete = false;
                self.complete_invocation(bx);
            }
        }

        // Advance the participating TBs. The sender side of a fused forward
        // is asynchronous — it never gated its issue group, so its
        // completion only settles the outstanding count (and the release
        // time, once the TB has walked off its groups). A gating side
        // retires one invocation of its current group; when the group
        // drains, the next one is entered.
        let send_is_fused = self.fused_task[task.index()];
        for (tb_id, is_async) in [(send_tb, send_is_fused), (recv_tb, false)] {
            let tb = &mut self.tbs[tb_id as usize];
            if is_async {
                debug_assert!(tb.async_outstanding > 0, "async retire without issue");
                tb.async_outstanding -= 1;
                if tb.async_outstanding == 0 && tb.group_idx >= tb.groups.len() {
                    tb.release = now;
                }
            } else {
                debug_assert!(tb.group_remaining > 0, "TB retired with no open group");
                tb.group_remaining -= 1;
                if tb.group_remaining == 0 {
                    tb.group_idx += 1;
                    self.tb_arrive(tb_id);
                }
            }
        }
    }

    /// Attribute the soft (in-busy) bubbles of a completed invocation:
    /// the startup-latency phase, plus any drain time beyond the lone-TB
    /// ideal (`bytes / min over path of effective_bandwidth(1)`) — the
    /// slowdown fair-sharing and the γ·L(z) over-saturation penalty of
    /// Eq. 1 imposed. Both participating TBs experience the interval, so
    /// both timelines carry it (mirroring the busy accounting).
    #[allow(clippy::too_many_arguments)]
    fn record_soft_bubbles(
        &mut self,
        x: u32,
        task: TaskId,
        mb: u32,
        bytes: u64,
        start: f64,
        send_tb: u32,
        recv_tb: u32,
    ) {
        let now = self.now;
        let drain_start = self.transfers[x as usize].drain_start;
        let rate0 = self
            .dag
            .task(task)
            .path
            .iter()
            .map(|r| self.resources[r.index()].params.effective_bandwidth(1))
            .fold(f64::INFINITY, f64::min);
        debug_assert!(rate0.is_finite() && rate0 > 0.0);
        let line_end = (drain_start + bytes as f64 / rate0).min(now);
        let obs = self.obs.as_mut().expect("checked by caller");
        // A fused forward's sender side never blocked, but it does spend
        // the transfer window busy — both sides get the same soft bubbles.
        for tb in [send_tb, recv_tb] {
            if drain_start > start {
                obs.bubbles.push(RawBubble {
                    tb,
                    task: task.0,
                    mb,
                    cause: BubbleCause::Startup,
                    start,
                    end: drain_start,
                });
            }
            if now > line_end {
                obs.bubbles.push(RawBubble {
                    tb,
                    task: task.0,
                    mb,
                    cause: BubbleCause::LinkContention,
                    start: line_end,
                    end: now,
                });
            }
            obs.xfer_segments.push((tb, drain_start, line_end));
        }
    }

    fn push_event(&mut self, t: f64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Ev {
            t,
            seq: self.seq,
            kind,
        });
    }

    fn check_data(&self) -> SimResult<bool> {
        let n_chunks = self.dag.n_chunks();
        for mb in 0..self.n_mb {
            for rank in 0..self.n_ranks {
                for chunk in 0..n_chunks {
                    if let Some(expect) = expected_final(self.op, self.n_ranks, rank, chunk) {
                        let got = &self.buffers[mb as usize][self.buffer_idx(rank, chunk)];
                        if *got != expect {
                            return Err(SimError::Validation(format!(
                                "collective produced wrong data: micro-batch {mb}, rank r{rank}, \
                                 chunk c{chunk}: counts {:?}, expected {:?}",
                                got.counts(),
                                expect.counts()
                            )));
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    fn deadlock_report(&self) -> SimError {
        // Find a representative blocked invocation for the diagnosis.
        let mut detail = String::new();
        for (i, inv) in self.invs.iter().enumerate() {
            if !inv.done && inv.started {
                continue; // in flight — impossible here (heap empty)
            }
            if !inv.done {
                let task = TaskId::new((i / self.n_mb as usize) as u32);
                let mb = i % self.n_mb as usize;
                detail = format!(
                    "first blocked invocation: task {task} micro-batch {mb} \
                     (deps remaining {}, sender {}, receiver {})",
                    inv.deps_remaining,
                    if inv.send_tb == NONE {
                        "absent"
                    } else {
                        "arrived"
                    },
                    if inv.recv_tb == NONE {
                        "absent"
                    } else {
                        "arrived"
                    },
                );
                break;
            }
        }
        // Dump each unfinished TB's head group for cycle diagnosis.
        let mut heads = String::new();
        for (i, tb) in self.tbs.iter().enumerate() {
            if tb.group_idx >= tb.groups.len() {
                continue;
            }
            let g = tb.groups[tb.group_idx];
            let prog = &self.program.ranks[tb.prog_rank].tbs[tb.prog_tb];
            let slots: Vec<String> = (g.first_slot..g.first_slot + g.len)
                .map(|si| {
                    let slot = &prog.slots[si as usize];
                    let idx = slot.task.index() * self.n_mb as usize + g.mb as usize;
                    let inv = &self.invs[idx];
                    format!(
                        "{}({:?},started={},done={},deps={})",
                        slot.task, slot.primitive, inv.started, inv.done, inv.deps_remaining
                    )
                })
                .collect();
            heads.push_str(&format!(
                "\n  tb#{i} r{} idx{} group{} mb{} rem{}: {}",
                tb.rank,
                tb.tb,
                tb.group_idx,
                g.mb,
                tb.group_remaining,
                slots.join(", ")
            ));
        }
        SimError::Deadlock(format!(
            "deadlock: {}/{} invocations completed; {detail}{heads}",
            self.inv_done, self.inv_total
        ))
    }
}
