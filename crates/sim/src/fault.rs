//! Fault injection: a seeded, deterministic timeline of scheduled fabric
//! events the engine applies **mid-run**.
//!
//! [`SimConfig::with_degraded`](crate::SimConfig::with_degraded) models a
//! link that was already slow when the kernel launched; a [`FaultTimeline`]
//! models the cluster *changing underneath a running collective* — the
//! regime NCCL's watchdog and channel fallback exist for:
//!
//! * **permanent death** ([`FaultTimeline::kill`]) — a link or NIC
//!   direction goes down at time *t* and never returns; any transfer
//!   caught draining (or arriving) on it fails the run with
//!   [`SimError::ResourceDown`](crate::SimError::ResourceDown),
//! * **flapping** ([`FaultTimeline::flap`]) — down/up cycles,
//! * **brownout** ([`FaultTimeline::brownout`]) — bandwidth drops to a
//!   fraction of nominal for a window, transfers just slow down,
//! * **stragglers** ([`FaultTimeline::straggler`]) — a rank's issue
//!   latency is multiplied for a window (a busy or thermally-throttled
//!   GPU), without affecting link capacity.
//!
//! Everything is resolved to primitive [`Fault`] transitions ordered by
//! timestamp, so a timeline replays byte-identically: the same timeline on
//! the same program always produces the same [`SimReport`](crate::SimReport)
//! or the same typed error. [`FaultTimeline::advanced`] shifts the whole
//! timeline into the past, which is how the Communicator's retry layer
//! replays the remainder of a timeline after `elapsed` sim-nanoseconds were
//! already burned by a failed attempt.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescc_topology::ResourceId;
use serde::{Deserialize, Serialize};

/// A primitive fault transition at one instant of sim time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The resource stops carrying traffic. In-flight transfers on it fail.
    LinkDown(ResourceId),
    /// The resource returns to service.
    LinkUp(ResourceId),
    /// The resource's bandwidth drops to `factor` (in `(0, 1]`) of nominal.
    Brownout(ResourceId, f64),
    /// The brownout window ends; bandwidth returns to nominal.
    BrownoutEnd(ResourceId),
    /// Transfers issued by `rank` take `multiplier` times their startup
    /// latency from this instant on (1.0 restores nominal issue latency).
    Straggler(u32, f64),
}

impl Fault {
    /// The resource this transition targets, when it targets one.
    pub fn resource(&self) -> Option<ResourceId> {
        match self {
            Fault::LinkDown(r)
            | Fault::LinkUp(r)
            | Fault::Brownout(r, _)
            | Fault::BrownoutEnd(r) => Some(*r),
            Fault::Straggler(_, _) => None,
        }
    }
}

/// One scheduled transition: `fault` fires at `at_ns` of sim time.
///
/// Negative times are legal — they mean "already happened before this
/// attempt started" (produced by [`FaultTimeline::advanced`]) and are
/// applied during engine initialization, in timeline order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Sim time of the transition, ns.
    pub at_ns: f64,
    /// The transition itself.
    pub fault: Fault,
}

/// A deterministic schedule of fault transitions.
///
/// Builder methods append compound events (a flap becomes `cycles` pairs of
/// down/up transitions); the engine sorts stably by timestamp, so two
/// transitions at the same instant apply in insertion order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty timeline (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// No transitions scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled transitions, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Append a raw transition.
    pub fn push(&mut self, at_ns: f64, fault: Fault) -> &mut Self {
        self.events.push(FaultEvent { at_ns, fault });
        self
    }

    /// Kill `res` permanently at `at_ns`.
    pub fn kill(mut self, res: ResourceId, at_ns: f64) -> Self {
        self.push(at_ns, Fault::LinkDown(res));
        self
    }

    /// Restore `res` to service at `at_ns`. Appended after a
    /// [`kill`](Self::kill), this turns the death into a survivable
    /// outage: [`is_permanent_down`](Self::is_permanent_down) becomes
    /// `false`, and a healing recovery layer may fail back to the healthy
    /// plan once the restore is in the past.
    pub fn restore(mut self, res: ResourceId, at_ns: f64) -> Self {
        self.push(at_ns, Fault::LinkUp(res));
        self
    }

    /// Flap `res`: starting at `at_ns`, `cycles` windows of `down_ns` down
    /// followed by `up_ns` up.
    pub fn flap(
        mut self,
        res: ResourceId,
        at_ns: f64,
        down_ns: f64,
        up_ns: f64,
        cycles: u32,
    ) -> Self {
        let period = down_ns + up_ns;
        for c in 0..cycles {
            let start = at_ns + c as f64 * period;
            self.push(start, Fault::LinkDown(res));
            self.push(start + down_ns, Fault::LinkUp(res));
        }
        self
    }

    /// Brown out `res` to `factor` of nominal bandwidth for `duration_ns`
    /// starting at `at_ns`.
    pub fn brownout(mut self, res: ResourceId, at_ns: f64, factor: f64, duration_ns: f64) -> Self {
        self.push(at_ns, Fault::Brownout(res, factor));
        self.push(at_ns + duration_ns, Fault::BrownoutEnd(res));
        self
    }

    /// Make `rank` a straggler: its issue latency is multiplied by
    /// `multiplier` for `duration_ns` starting at `at_ns`.
    pub fn straggler(mut self, rank: u32, at_ns: f64, multiplier: f64, duration_ns: f64) -> Self {
        self.push(at_ns, Fault::Straggler(rank, multiplier));
        self.push(at_ns + duration_ns, Fault::Straggler(rank, 1.0));
        self
    }

    /// The timeline with every timestamp shifted `elapsed_ns` into the
    /// past. Used to replay the *remainder* of a schedule on a retry
    /// attempt: transitions that already fired land at non-positive times
    /// and are applied before the new attempt's first transfer.
    pub fn advanced(&self, elapsed_ns: f64) -> Self {
        Self {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    at_ns: e.at_ns - elapsed_ns,
                    fault: e.fault,
                })
                .collect(),
        }
    }

    /// Is `res` down for good from the perspective of the whole timeline —
    /// i.e. its last down transition is never followed by an up?
    pub fn is_permanent_down(&self, res: ResourceId) -> bool {
        let mut last: Option<(f64, usize, bool)> = None;
        for (i, e) in self.events.iter().enumerate() {
            let down = match e.fault {
                Fault::LinkDown(r) if r == res => true,
                Fault::LinkUp(r) if r == res => false,
                _ => continue,
            };
            if last.is_none_or(|(t, j, _)| (e.at_ns, i) >= (t, j)) {
                last = Some((e.at_ns, i, down));
            }
        }
        last.is_some_and(|(_, _, down)| down)
    }

    /// Every resource the timeline kills for good — the set a recovery
    /// layer will end up masking if it replays the whole schedule. Sorted
    /// ascending, deduplicated.
    pub fn permanent_dead(&self) -> Vec<ResourceId> {
        let mut dead: Vec<ResourceId> = self
            .events
            .iter()
            .filter_map(|e| e.fault.resource())
            .filter(|&r| self.is_permanent_down(r))
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Check every transition against the cluster dimensions; the engine
    /// calls this before running.
    pub fn validate(&self, n_resources: u32, n_ranks: u32) -> Result<(), String> {
        for e in &self.events {
            if !e.at_ns.is_finite() {
                return Err(format!("fault timestamp {} is not finite", e.at_ns));
            }
            match e.fault {
                Fault::LinkDown(r) | Fault::LinkUp(r) | Fault::BrownoutEnd(r) => {
                    if r.0 >= n_resources {
                        return Err(format!(
                            "fault targets resource {r}, topology has {n_resources}"
                        ));
                    }
                }
                Fault::Brownout(r, f) => {
                    if r.0 >= n_resources {
                        return Err(format!(
                            "fault targets resource {r}, topology has {n_resources}"
                        ));
                    }
                    if !(f.is_finite() && f > 0.0 && f <= 1.0) {
                        return Err(format!("brownout factor {f} outside (0, 1]"));
                    }
                }
                Fault::Straggler(rank, m) => {
                    if rank >= n_ranks {
                        return Err(format!("straggler rank r{rank}, topology has {n_ranks}"));
                    }
                    if !(m.is_finite() && m >= 1.0) {
                        return Err(format!("straggler multiplier {m} below 1"));
                    }
                }
            }
        }
        Ok(())
    }

    /// A seeded random timeline whose resources **all recover**: flaps with
    /// short down windows, brownouts, and bounded straggler windows — never
    /// a permanent kill. The same seed always yields the same timeline;
    /// with a retrying dispatcher on top, any such timeline must end in a
    /// correct collective (the recovery property the test suite asserts).
    pub fn seeded_recovering(seed: u64, n_resources: u32, n_ranks: u32, horizon_ns: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tl = Self::new();
        let n_events = 1 + rng.gen_range(0..3);
        for _ in 0..n_events {
            let at = 0.05 * horizon_ns + 0.5 * horizon_ns * rng.gen::<f64>();
            match rng.gen_range(0..3) {
                0 => {
                    let res = ResourceId::new(rng.gen_range(0..n_resources as u64) as u32);
                    let down = 50_000.0 + 100_000.0 * rng.gen::<f64>(); // 50–150 µs
                    let up = 200_000.0 + 200_000.0 * rng.gen::<f64>();
                    let cycles = 1 + rng.gen_range(0..2) as u32;
                    tl = tl.flap(res, at, down, up, cycles);
                }
                1 => {
                    let res = ResourceId::new(rng.gen_range(0..n_resources as u64) as u32);
                    let factor = 0.2 + 0.6 * rng.gen::<f64>();
                    tl = tl.brownout(res, at, factor, 0.3 * horizon_ns);
                }
                _ => {
                    let rank = rng.gen_range(0..n_ranks as u64) as u32;
                    let mult = 1.5 + 2.0 * rng.gen::<f64>();
                    tl = tl.straggler(rank, at, mult, 0.2 * horizon_ns);
                }
            }
        }
        tl
    }

    /// A seeded random *chaos* timeline: like
    /// [`seeded_recovering`](Self::seeded_recovering) but with permanent
    /// kills and killed-then-restored outages in the mix — the full fault
    /// vocabulary a recovery stack must survive (retry, frontier resume,
    /// mask + recompile, heal). Deterministic per seed. Kills target
    /// resources below `n_resources`; a chaos campaign composes this with
    /// a masking/recompiling dispatcher and asserts the collective still
    /// delivers correct data within bounded retries.
    pub fn seeded_chaos(seed: u64, n_resources: u32, n_ranks: u32, horizon_ns: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tl = Self::new();
        let n_events = 2 + rng.gen_range(0..3);
        for _ in 0..n_events {
            let at = 0.05 * horizon_ns + 0.6 * horizon_ns * rng.gen::<f64>();
            let res = ResourceId::new(rng.gen_range(0..n_resources as u64) as u32);
            match rng.gen_range(0..5) {
                0 => tl = tl.kill(res, at),
                1 => {
                    // A kill that heals: down for a window, then restored.
                    let outage = 0.1 * horizon_ns + 0.2 * horizon_ns * rng.gen::<f64>();
                    tl = tl.kill(res, at).restore(res, at + outage);
                }
                2 => {
                    let down = 50_000.0 + 100_000.0 * rng.gen::<f64>();
                    let up = 200_000.0 + 200_000.0 * rng.gen::<f64>();
                    tl = tl.flap(res, at, down, up, 1 + rng.gen_range(0..2) as u32);
                }
                3 => {
                    let factor = 0.2 + 0.6 * rng.gen::<f64>();
                    tl = tl.brownout(res, at, factor, 0.3 * horizon_ns);
                }
                _ => {
                    let rank = rng.gen_range(0..n_ranks as u64) as u32;
                    let mult = 1.5 + 2.0 * rng.gen::<f64>();
                    tl = tl.straggler(rank, at, mult, 0.2 * horizon_ns);
                }
            }
        }
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_expand_to_primitive_transitions() {
        let r = ResourceId::new(3);
        let tl = FaultTimeline::new()
            .flap(r, 100.0, 10.0, 20.0, 2)
            .brownout(r, 500.0, 0.5, 50.0)
            .straggler(1, 0.0, 3.0, 40.0);
        assert_eq!(tl.events().len(), 4 + 2 + 2);
        assert_eq!(
            tl.events()[0],
            FaultEvent {
                at_ns: 100.0,
                fault: Fault::LinkDown(r)
            }
        );
        assert_eq!(tl.events()[3].at_ns, 140.0);
        assert!(!tl.is_permanent_down(r));
        assert!(FaultTimeline::new().kill(r, 7.0).is_permanent_down(r));
        // A kill followed by a later recovery is not permanent.
        assert!(!FaultTimeline::new()
            .kill(r, 7.0)
            .flap(r, 9.0, 1.0, 1.0, 1)
            .is_permanent_down(r));
    }

    #[test]
    fn permanent_dead_collects_unrecovered_resources() {
        let a = ResourceId::new(2);
        let b = ResourceId::new(5);
        let c = ResourceId::new(9);
        let tl = FaultTimeline::new()
            .kill(b, 50.0)
            .kill(a, 10.0)
            .flap(c, 0.0, 5.0, 5.0, 2) // recovers
            .brownout(a, 60.0, 0.5, 10.0); // brownout does not revive
        assert_eq!(tl.permanent_dead(), vec![a, b]);
        assert!(FaultTimeline::new().permanent_dead().is_empty());
    }

    #[test]
    fn advanced_shifts_into_the_past() {
        let r = ResourceId::new(0);
        let tl = FaultTimeline::new().kill(r, 1000.0).advanced(1500.0);
        assert_eq!(tl.events()[0].at_ns, -500.0);
        assert!(tl.is_permanent_down(r));
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let tl = FaultTimeline::new().kill(ResourceId::new(99), 1.0);
        assert!(tl.validate(10, 4).is_err());
        assert!(tl.validate(100, 4).is_ok());
        let bad = FaultTimeline::new().brownout(ResourceId::new(0), 1.0, 1.5, 10.0);
        assert!(bad.validate(10, 4).is_err());
        let lazy = FaultTimeline::new().straggler(9, 1.0, 2.0, 10.0);
        assert!(lazy.validate(10, 4).is_err());
        assert!(lazy.validate(10, 16).is_ok());
    }

    #[test]
    fn restore_after_kill_is_not_permanent() {
        let r = ResourceId::new(4);
        let killed = FaultTimeline::new().kill(r, 100.0);
        assert!(killed.is_permanent_down(r));
        let healed = killed.restore(r, 500.0);
        assert!(!healed.is_permanent_down(r));
        assert!(healed.permanent_dead().is_empty());
        // Shifted past the restore, the timeline replays as already-up.
        assert!(!healed.advanced(1000.0).is_permanent_down(r));
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_validates() {
        let a = FaultTimeline::seeded_chaos(3, 40, 8, 1e6);
        let b = FaultTimeline::seeded_chaos(3, 40, 8, 1e6);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(40, 8).is_ok());
        assert_ne!(a, FaultTimeline::seeded_chaos(4, 40, 8, 1e6));
        // Some seed in a small range must produce a permanent kill —
        // chaos without deaths would never exercise the recompile path.
        assert!((0..32).any(|s| {
            !FaultTimeline::seeded_chaos(s, 40, 8, 1e6)
                .permanent_dead()
                .is_empty()
        }));
    }

    #[test]
    fn seeded_timeline_is_deterministic_and_recovering() {
        let a = FaultTimeline::seeded_recovering(7, 40, 8, 1e6);
        let b = FaultTimeline::seeded_recovering(7, 40, 8, 1e6);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(40, 8).is_ok());
        for e in a.events() {
            if let Some(r) = e.fault.resource() {
                assert!(!a.is_permanent_down(r), "resource {r} never recovers");
            }
        }
        let c = FaultTimeline::seeded_recovering(8, 40, 8, 1e6);
        assert_ne!(a, c);
    }
}
