//! Partial-progress recovery: the fault frontier and resume state.
//!
//! When a fault aborts a run, the engine knows exactly which invocations
//! had completed — the same `done` flags data validation relies on. A
//! [`FaultFrontier`] snapshots that set (a bitset over
//! `task × micro-batch`) and rides inside the typed
//! [`SimError::ResourceDown`](crate::SimError::ResourceDown), so a recovery
//! layer can prune finished work instead of restarting from byte zero.
//!
//! A [`ResumeState`] is the execution-side complement, built by the plan
//! compiler against a *residual* plan: which residual invocations are
//! already complete, plus the ordered [`ReplayOp`]s that reconstruct the
//! buffer state those completions produced. The engine applies the replay
//! at initialization and retires completed invocations instantly, so a
//! resumed run charges only the remaining work's sim time.

use serde::{Deserialize, Serialize};

/// The deterministic set of completed `(task, micro-batch)` invocations at
/// the instant a fault aborted a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultFrontier {
    /// Number of tasks in the DAG the frontier indexes.
    pub n_tasks: u32,
    /// Number of micro-batches of the aborted run.
    pub n_mb: u32,
    /// Sim time of the abort, ns (rounded to the nanosecond).
    pub at_ns: u64,
    /// Completion bitset, bit `task * n_mb + mb`.
    done: Vec<u64>,
}

impl FaultFrontier {
    /// An empty frontier (nothing completed) for the given dimensions.
    pub fn new(n_tasks: u32, n_mb: u32, at_ns: u64) -> Self {
        let bits = n_tasks as usize * n_mb as usize;
        Self {
            n_tasks,
            n_mb,
            at_ns,
            done: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn bit(&self, task: u32, mb: u32) -> usize {
        debug_assert!(task < self.n_tasks && mb < self.n_mb);
        task as usize * self.n_mb as usize + mb as usize
    }

    /// Mark `(task, mb)` complete.
    pub fn mark(&mut self, task: u32, mb: u32) {
        let b = self.bit(task, mb);
        self.done[b / 64] |= 1u64 << (b % 64);
    }

    /// Had `(task, mb)` completed when the run aborted?
    pub fn is_done(&self, task: u32, mb: u32) -> bool {
        let b = self.bit(task, mb);
        self.done[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Every micro-batch of `task` complete?
    pub fn task_fully_done(&self, task: u32) -> bool {
        (0..self.n_mb).all(|mb| self.is_done(task, mb))
    }

    /// Number of completed invocations.
    pub fn completed(&self) -> u64 {
        self.done.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Nothing completed?
    pub fn is_empty(&self) -> bool {
        self.done.iter().all(|&w| w == 0)
    }

    /// Fraction of all invocations complete, in `[0, 1]`.
    pub fn fraction_complete(&self) -> f64 {
        let total = self.n_tasks as u64 * self.n_mb as u64;
        if total == 0 {
            return 0.0;
        }
        self.completed() as f64 / total as f64
    }

    /// Fold another frontier over the same run into this one (set union),
    /// keeping the later abort time. Returns `false` (and changes nothing)
    /// on a dimension mismatch.
    pub fn union(&mut self, other: &FaultFrontier) -> bool {
        if self.n_tasks != other.n_tasks || self.n_mb != other.n_mb {
            return false;
        }
        for (a, b) in self.done.iter_mut().zip(&other.done) {
            *a |= b;
        }
        self.at_ns = self.at_ns.max(other.at_ns);
        true
    }
}

/// One completed transfer to replay into the value buffers before a
/// resumed run starts: the source slot's current value is applied to the
/// destination slot with copy (`recv`) or reduce (`recvReduceCopy`)
/// semantics. Replay order must respect each chunk's dependency order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayOp {
    /// Source rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Chunk both slots belong to.
    pub chunk: u32,
    /// Micro-batch the invocation ran under.
    pub mb: u32,
    /// `true` for reduce (`recvReduceCopy`), `false` for copy (`recv`).
    pub reduce: bool,
}

/// Everything the engine needs to resume a run from a [`FaultFrontier`]:
/// which invocations of the (residual) plan are already complete, and the
/// ordered replay that reconstructs the buffer state they produced.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResumeState {
    /// Number of tasks in the DAG this state indexes (the residual DAG
    /// when the recovery layer pruned fully-complete tasks).
    pub n_tasks: u32,
    /// Number of micro-batches of the run being resumed.
    pub n_mb: u32,
    /// Completion bitset over the indexed DAG, bit `task * n_mb + mb`.
    done: Vec<u64>,
    /// Completed transfers of the *original* run in per-chunk dependency
    /// order (fully-pruned tasks included), applied to the buffers at
    /// engine initialization when data validation is on.
    pub replay: Vec<ReplayOp>,
}

impl ResumeState {
    /// An empty resume state (nothing completed) for the given dimensions.
    pub fn new(n_tasks: u32, n_mb: u32) -> Self {
        let bits = n_tasks as usize * n_mb as usize;
        Self {
            n_tasks,
            n_mb,
            done: vec![0; bits.div_ceil(64)],
            replay: Vec::new(),
        }
    }

    #[inline]
    fn bit(&self, task: u32, mb: u32) -> usize {
        debug_assert!(task < self.n_tasks && mb < self.n_mb);
        task as usize * self.n_mb as usize + mb as usize
    }

    /// Mark invocation `(task, mb)` as already complete.
    pub fn mark_done(&mut self, task: u32, mb: u32) {
        let b = self.bit(task, mb);
        self.done[b / 64] |= 1u64 << (b % 64);
    }

    /// Is invocation `(task, mb)` already complete?
    pub fn is_done(&self, task: u32, mb: u32) -> bool {
        let b = self.bit(task, mb);
        self.done[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Number of already-complete invocations.
    pub fn completed(&self) -> u64 {
        self.done.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Check the state against the run's dimensions; the engine calls this
    /// before any event is processed.
    pub fn validate(
        &self,
        n_tasks: u32,
        n_mb: u32,
        n_ranks: u32,
        n_chunks: u32,
    ) -> Result<(), String> {
        if self.n_tasks != n_tasks || self.n_mb != n_mb {
            return Err(format!(
                "resume state covers {} tasks x {} micro-batches, run has {n_tasks} x {n_mb}",
                self.n_tasks, self.n_mb
            ));
        }
        for op in &self.replay {
            if op.src >= n_ranks || op.dst >= n_ranks {
                return Err(format!(
                    "replay op {} -> {} out of range ({n_ranks} ranks)",
                    op.src, op.dst
                ));
            }
            if op.chunk >= n_chunks {
                return Err(format!(
                    "replay op chunk c{} out of range ({n_chunks} chunks)",
                    op.chunk
                ));
            }
            if op.mb >= n_mb {
                return Err(format!(
                    "replay op micro-batch {} out of range ({n_mb})",
                    op.mb
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_marks_counts_and_unions() {
        let mut a = FaultFrontier::new(3, 2, 100);
        assert!(a.is_empty());
        a.mark(0, 0);
        a.mark(0, 1);
        a.mark(2, 1);
        assert_eq!(a.completed(), 3);
        assert!(a.task_fully_done(0));
        assert!(!a.task_fully_done(2));
        assert!(a.is_done(2, 1) && !a.is_done(2, 0));
        assert!((a.fraction_complete() - 0.5).abs() < 1e-12);

        let mut b = FaultFrontier::new(3, 2, 250);
        b.mark(1, 0);
        assert!(a.union(&b));
        assert_eq!(a.completed(), 4);
        assert_eq!(a.at_ns, 250);
        let c = FaultFrontier::new(4, 2, 0);
        assert!(!a.union(&c), "dimension mismatch must be rejected");
    }

    #[test]
    fn resume_state_validates_dimensions_and_ops() {
        let mut rs = ResumeState::new(4, 2);
        rs.mark_done(3, 1);
        assert!(rs.is_done(3, 1) && !rs.is_done(3, 0));
        assert_eq!(rs.completed(), 1);
        rs.replay.push(ReplayOp {
            src: 0,
            dst: 1,
            chunk: 0,
            mb: 0,
            reduce: false,
        });
        assert!(rs.validate(4, 2, 2, 1).is_ok());
        assert!(rs.validate(5, 2, 2, 1).is_err(), "task count mismatch");
        assert!(rs.validate(4, 3, 2, 1).is_err(), "mb count mismatch");
        assert!(rs.validate(4, 2, 1, 1).is_err(), "rank out of range");
        rs.replay[0].chunk = 9;
        assert!(rs.validate(4, 2, 2, 1).is_err(), "chunk out of range");
    }
}
