//! Simulator configuration, including fault injection.

use rescc_topology::ResourceId;
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Track buffer values and verify the collective's result
    /// (machine-checked correctness). Costs memory proportional to
    /// `micro_batches × ranks × chunks`.
    pub validate_data: bool,
    /// Flexible TB release (ResCCL): a TB stops occupying its SM when its
    /// last invocation completes. When false (rigid NCCL/MSCCL model), all
    /// TBs occupy SMs until the whole kernel finishes.
    pub early_release: bool,
    /// Fault injection: multiply each transfer's startup latency by
    /// `1 + jitter_frac · U[0,1)`. Zero disables jitter.
    pub jitter_frac: f64,
    /// RNG seed for jitter (runs are deterministic for a given seed).
    pub seed: u64,
    /// Fault injection: per-resource capacity multipliers in `(0, 1]`
    /// (e.g. a flapping NIC at 0.5 of nominal bandwidth).
    pub degraded: Vec<(ResourceId, f64)>,
    /// Safety cap on executed invocations (guards against runaway
    /// programs; generously above any legitimate run).
    pub max_invocations: u64,
    /// Record a per-transfer [`TraceEvent`](crate::TraceEvent) timeline in
    /// the report (costs memory proportional to invocations).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            validate_data: true,
            early_release: true,
            jitter_frac: 0.0,
            seed: 0,
            degraded: Vec::new(),
            max_invocations: 200_000_000,
            record_trace: false,
        }
    }
}

impl SimConfig {
    /// The rigid-baseline configuration (NCCL/MSCCL-style): no early
    /// release.
    pub fn rigid() -> Self {
        Self {
            early_release: false,
            ..Self::default()
        }
    }

    /// Disable data validation (for large-scale bandwidth sweeps where the
    /// value tracking memory would dominate).
    pub fn without_validation(mut self) -> Self {
        self.validate_data = false;
        self
    }

    /// Add latency jitter.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.jitter_frac = frac;
        self.seed = seed;
        self
    }

    /// Degrade a resource's capacity.
    pub fn with_degraded(mut self, res: ResourceId, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        self.degraded.push((res, factor));
        self
    }

    /// Record the execution timeline.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}
