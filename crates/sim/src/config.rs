//! Simulator configuration, including fault injection.

use crate::error::{SimError, SimResult};
use crate::fault::FaultTimeline;
use crate::frontier::ResumeState;
use rescc_topology::ResourceId;
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Track buffer values and verify the collective's result
    /// (machine-checked correctness). Costs memory proportional to
    /// `micro_batches × ranks × chunks`.
    pub validate_data: bool,
    /// Flexible TB release (ResCCL): a TB stops occupying its SM when its
    /// last invocation completes. When false (rigid NCCL/MSCCL model), all
    /// TBs occupy SMs until the whole kernel finishes.
    pub early_release: bool,
    /// Fault injection: multiply each transfer's startup latency by
    /// `1 + jitter_frac · U[0,1)`. Zero disables jitter. Must lie in
    /// `[0, 1]` (checked at run time).
    pub jitter_frac: f64,
    /// RNG seed for jitter (runs are deterministic for a given seed).
    pub seed: u64,
    /// Fault injection: per-resource capacity multipliers in `(0, 1]`
    /// (e.g. a flapping NIC at 0.5 of nominal bandwidth), applied for the
    /// whole run. Checked at run time.
    pub degraded: Vec<(ResourceId, f64)>,
    /// Fault injection: scheduled mid-run transitions (death, flapping,
    /// brownouts, stragglers). Empty by default.
    pub faults: FaultTimeline,
    /// Watchdog: abort with
    /// [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded)
    /// if the collective has not completed by this sim time (ns).
    pub deadline_ns: Option<f64>,
    /// Safety cap on executed invocations (guards against runaway
    /// programs; generously above any legitimate run).
    pub max_invocations: u64,
    /// Record a per-transfer [`TraceEvent`](crate::TraceEvent) timeline in
    /// the report (costs memory proportional to invocations).
    pub record_trace: bool,
    /// Classify every TB idle interval by cause and attach a
    /// [`SimObservability`](crate::SimObservability) payload to the
    /// report. Attribution is read-only instrumentation: all other report
    /// fields are bit-identical to a run without it.
    pub attribute_bubbles: bool,
    /// Number of buckets for the per-TB / per-link timelines recorded
    /// under [`attribute_bubbles`](Self::attribute_bubbles).
    pub obs_buckets: u32,
    /// Partial-progress resume: invocations already completed by an
    /// aborted attempt (plus the buffer replay reconstructing their
    /// effects). `None` — the default — runs from scratch and is
    /// byte-identical to configurations predating this field.
    #[serde(default)]
    pub resume: Option<ResumeState>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            validate_data: true,
            early_release: true,
            jitter_frac: 0.0,
            seed: 0,
            degraded: Vec::new(),
            faults: FaultTimeline::new(),
            deadline_ns: None,
            max_invocations: 200_000_000,
            record_trace: false,
            attribute_bubbles: false,
            obs_buckets: 64,
            resume: None,
        }
    }
}

impl SimConfig {
    /// The rigid-baseline configuration (NCCL/MSCCL-style): no early
    /// release.
    pub fn rigid() -> Self {
        Self {
            early_release: false,
            ..Self::default()
        }
    }

    /// Disable data validation (for large-scale bandwidth sweeps where the
    /// value tracking memory would dominate).
    pub fn without_validation(mut self) -> Self {
        self.validate_data = false;
        self
    }

    /// Add latency jitter.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.jitter_frac = frac;
        self.seed = seed;
        self
    }

    /// Degrade a resource's capacity for the whole run. The factor must
    /// lie in `(0, 1]`; violations surface as
    /// [`SimError::InvalidConfig`](crate::SimError::InvalidConfig) when
    /// the run starts.
    pub fn with_degraded(mut self, res: ResourceId, factor: f64) -> Self {
        self.degraded.push((res, factor));
        self
    }

    /// Install a mid-run fault schedule.
    pub fn with_faults(mut self, faults: FaultTimeline) -> Self {
        self.faults = faults;
        self
    }

    /// Set the watchdog deadline (sim time, ns).
    pub fn with_deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Record the execution timeline.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable bubble attribution (classified idle intervals plus bucketed
    /// per-TB / per-link timelines in the report).
    pub fn with_observability(mut self) -> Self {
        self.attribute_bubbles = true;
        self
    }

    /// Override the timeline bucket count used under
    /// [`with_observability`](Self::with_observability).
    pub fn with_obs_buckets(mut self, buckets: u32) -> Self {
        self.obs_buckets = buckets;
        self
    }

    /// Resume from an aborted attempt's partial progress instead of
    /// starting from scratch. The state's dimensions are checked against
    /// the plan when the run starts.
    pub fn with_resume(mut self, resume: ResumeState) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Check the configuration against the cluster dimensions. Called by
    /// the engine before any event is processed, so invalid inputs surface
    /// as a typed error at `run_with` time instead of silently producing
    /// nonsense timings.
    pub fn validate(&self, n_resources: u32, n_ranks: u32) -> SimResult<()> {
        if !(self.jitter_frac.is_finite() && (0.0..=1.0).contains(&self.jitter_frac)) {
            return Err(SimError::InvalidConfig(format!(
                "jitter fraction {} outside [0, 1]",
                self.jitter_frac
            )));
        }
        for (res, factor) in &self.degraded {
            if res.0 >= n_resources {
                return Err(SimError::InvalidConfig(format!(
                    "degraded resource {res} out of range (topology has {n_resources})"
                )));
            }
            if !(factor.is_finite() && *factor > 0.0 && *factor <= 1.0) {
                return Err(SimError::InvalidConfig(format!(
                    "degradation factor {factor} for {res} outside (0, 1]"
                )));
            }
        }
        if let Some(d) = self.deadline_ns {
            if !(d.is_finite() && d > 0.0) {
                return Err(SimError::InvalidConfig(format!(
                    "deadline {d}ns is not a positive time"
                )));
            }
        }
        if self.attribute_bubbles && self.obs_buckets == 0 {
            return Err(SimError::InvalidConfig(
                "bubble attribution needs at least one timeline bucket".into(),
            ));
        }
        self.faults
            .validate(n_resources, n_ranks)
            .map_err(SimError::InvalidConfig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(SimConfig::default().validate(8, 4).is_ok());
    }

    #[test]
    fn jitter_outside_unit_interval_is_rejected() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = SimConfig::default()
                .with_jitter(bad, 0)
                .validate(8, 4)
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{bad}: {err}");
        }
        assert!(SimConfig::default()
            .with_jitter(1.0, 0)
            .validate(8, 4)
            .is_ok());
    }

    #[test]
    fn degraded_factor_outside_unit_interval_is_rejected() {
        for bad in [0.0, -1.0, 1.01, f64::NAN] {
            let err = SimConfig::default()
                .with_degraded(ResourceId::new(0), bad)
                .validate(8, 4)
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{bad}: {err}");
        }
        let oor = SimConfig::default()
            .with_degraded(ResourceId::new(9), 0.5)
            .validate(8, 4)
            .unwrap_err();
        assert!(matches!(oor, SimError::InvalidConfig(_)));
    }

    #[test]
    fn observability_needs_buckets() {
        let cfg = SimConfig::default()
            .with_observability()
            .with_obs_buckets(0);
        assert!(cfg.validate(8, 4).is_err());
        // Zero buckets is only a problem when attribution is on.
        assert!(SimConfig::default()
            .with_obs_buckets(0)
            .validate(8, 4)
            .is_ok());
        assert!(SimConfig::default()
            .with_observability()
            .validate(8, 4)
            .is_ok());
    }

    #[test]
    fn deadline_must_be_positive() {
        assert!(SimConfig::default()
            .with_deadline_ns(-5.0)
            .validate(8, 4)
            .is_err());
        assert!(SimConfig::default()
            .with_deadline_ns(1e9)
            .validate(8, 4)
            .is_ok());
    }
}
