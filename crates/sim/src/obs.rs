//! Bubble attribution: classified idle intervals and time-bucketed
//! per-TB / per-link timelines.
//!
//! The paper's headline numbers are observability claims — Table 1's link
//! utilization is "the complement of accumulated bubbles", Fig. 2/12 split
//! TB time into busy vs. sync — but aggregate ratios cannot say *where* a
//! bubble sits on the timeline or *why* a TB idled. When
//! [`SimConfig::attribute_bubbles`](crate::SimConfig) is set, the engine
//! classifies every idle interval by cause and the report carries a
//! [`SimObservability`] payload:
//!
//! * **hard bubbles** — time a TB was blocked while occupying its SM
//!   ([`BubbleCause::RendezvousWait`], [`BubbleCause::DepWait`]). Their
//!   per-TB sum reconciles with [`TbStat::sync_ns`](crate::TbStat) exactly
//!   (within floating-point association error).
//! * **soft bubbles** — time inside an invocation during which no useful
//!   bytes moved at line rate ([`BubbleCause::Startup`] for the α-latency
//!   phase, [`BubbleCause::LinkContention`] for drain time beyond the
//!   lone-TB ideal under fair-sharing and the γ·L(z) over-saturation term
//!   of Eq. 1). Soft bubbles are carved out of `busy_ns`, not added to it.
//!
//! Attribution is purely read-only instrumentation: with the flag on, the
//! non-observability fields of [`SimReport`](crate::SimReport) are
//! bit-identical to a run with it off.

use serde::{Deserialize, Serialize};

/// Why a TB interval carried no useful line-rate traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BubbleCause {
    /// Blocked on the peer TB of the transfer, which had not arrived at
    /// the invocation yet (the rendezvous half of `sync_ns`).
    RendezvousWait,
    /// Peer present, but an upstream DAG dependency, barrier group, or
    /// cut-through gate had not resolved (the dependency half of
    /// `sync_ns`).
    DepWait,
    /// Transfer admitted but draining below the lone-TB line rate —
    /// fair-sharing plus the γ·L(z) over-saturation penalty of Eq. 1.
    LinkContention,
    /// The transfer's startup-latency (α plus interpreter overhead) phase:
    /// the TB is executing but no bytes are on the wire yet.
    Startup,
}

impl BubbleCause {
    /// Stable lowercase name (used by trace exporters and JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            BubbleCause::RendezvousWait => "rendezvous_wait",
            BubbleCause::DepWait => "dep_wait",
            BubbleCause::LinkContention => "link_contention",
            BubbleCause::Startup => "startup",
        }
    }

    /// Hard bubbles are blocked-while-occupying time (accounted in
    /// `sync_ns`); soft bubbles live inside `busy_ns`.
    pub fn is_hard(&self) -> bool {
        matches!(self, BubbleCause::RendezvousWait | BubbleCause::DepWait)
    }

    /// All causes, in a stable reporting order.
    pub const ALL: [BubbleCause; 4] = [
        BubbleCause::RendezvousWait,
        BubbleCause::DepWait,
        BubbleCause::LinkContention,
        BubbleCause::Startup,
    ];
}

/// One classified idle interval of one TB. Every interval carries exactly
/// one cause; intervals of one TB never overlap within a cause class.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BubbleInterval {
    /// Index into [`SimReport::tb_stats`](crate::SimReport) (engine TB id).
    pub tb_index: u32,
    /// Rank the TB runs on.
    pub rank: u32,
    /// TB index within its rank.
    pub tb: u32,
    /// The task whose invocation this interval is attributed to.
    pub task: u32,
    /// Micro-batch of that invocation.
    pub mb: u32,
    /// Why the TB was not moving bytes at line rate.
    pub cause: BubbleCause,
    /// Interval start (sim ns).
    pub start_ns: f64,
    /// Interval end (sim ns), `>= start_ns`.
    pub end_ns: f64,
}

impl BubbleInterval {
    /// Interval length in ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// Time-bucketed activity decomposition of one TB. Each vector has
/// [`SimObservability::n_buckets`] entries; entry `i` is the time (ns)
/// the TB spent in that state during bucket `i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TbTimeline {
    /// Rank the TB runs on.
    pub rank: u32,
    /// TB index within its rank.
    pub tb: u32,
    /// Draining at (or up to) the lone-TB line rate.
    pub transfer: Vec<f64>,
    /// Startup-latency phases ([`BubbleCause::Startup`]).
    pub startup: Vec<f64>,
    /// Drain time beyond the lone-TB ideal ([`BubbleCause::LinkContention`]).
    pub contention: Vec<f64>,
    /// Blocked on peer arrival ([`BubbleCause::RendezvousWait`]).
    pub rendezvous: Vec<f64>,
    /// Blocked on dependencies/barriers ([`BubbleCause::DepWait`]).
    pub dep_wait: Vec<f64>,
}

/// Time-bucketed activity of one link/resource. `active[i]` is the time
/// (ns) during bucket `i` that at least one transfer was draining on the
/// resource; the bucket sum equals
/// [`ResourceStat::active_ns`](crate::ResourceStat).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkTimeline {
    /// Resource index (matches `ResourceStat::resource`).
    pub resource: u32,
    /// Per-bucket active time, ns.
    pub active: Vec<f64>,
}

/// The observability payload of a run: every classified bubble plus the
/// bucketed per-TB and per-link timelines. Attached to
/// [`SimReport::obs`](crate::SimReport) when
/// [`SimConfig::attribute_bubbles`](crate::SimConfig) is set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimObservability {
    /// Number of timeline buckets (the configured `obs_buckets`).
    pub n_buckets: u32,
    /// Width of one bucket in ns (`completion / n_buckets`).
    pub bucket_ns: f64,
    /// Every classified idle interval, in completion order.
    pub bubbles: Vec<BubbleInterval>,
    /// One timeline per TB, in `tb_stats` order.
    pub tb_timelines: Vec<TbTimeline>,
    /// One timeline per resource that carried traffic, in
    /// `resource_stats` order.
    pub link_timelines: Vec<LinkTimeline>,
}

impl SimObservability {
    /// Sum of *hard* bubble time (rendezvous + dependency waits) for one
    /// TB — reconciles with that TB's `sync_ns`.
    pub fn hard_bubble_ns(&self, tb_index: u32) -> f64 {
        self.bubbles
            .iter()
            .filter(|b| b.tb_index == tb_index && b.cause.is_hard())
            .map(BubbleInterval::duration_ns)
            .sum()
    }

    /// Total bubble time per cause, in [`BubbleCause::ALL`] order,
    /// summed over all TBs (a transfer's soft bubbles are counted once
    /// per participating TB, like `busy_ns`).
    pub fn cause_totals_ns(&self) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        for b in &self.bubbles {
            let k = BubbleCause::ALL
                .iter()
                .position(|c| *c == b.cause)
                .expect("cause in ALL");
            out[k] += b.duration_ns();
        }
        out
    }
}

/// Distribute the interval `[start, end)` over the buckets of `buf`.
/// Bucket `i` spans `[i·bucket_ns, (i+1)·bucket_ns)`; the last bucket
/// absorbs any overhang from floating-point completion rounding.
pub(crate) fn add_interval(buf: &mut [f64], bucket_ns: f64, start: f64, end: f64) {
    if end <= start || bucket_ns <= 0.0 || buf.is_empty() {
        return;
    }
    let n = buf.len();
    let first = ((start / bucket_ns) as usize).min(n - 1);
    let last = ((end / bucket_ns) as usize).min(n - 1);
    if first == last {
        buf[first] += end - start;
        return;
    }
    for (c, slot) in buf.iter_mut().enumerate().take(last + 1).skip(first) {
        let cs = c as f64 * bucket_ns;
        // The final bucket's right edge is +∞ so the whole interval is
        // conserved even when `end` rounds past `n · bucket_ns`.
        let ce = if c == n - 1 {
            f64::INFINITY
        } else {
            cs + bucket_ns
        };
        *slot += (end.min(ce) - start.max(cs)).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_are_stable() {
        assert_eq!(BubbleCause::RendezvousWait.as_str(), "rendezvous_wait");
        assert_eq!(BubbleCause::LinkContention.as_str(), "link_contention");
        assert!(BubbleCause::RendezvousWait.is_hard());
        assert!(BubbleCause::DepWait.is_hard());
        assert!(!BubbleCause::Startup.is_hard());
        assert!(!BubbleCause::LinkContention.is_hard());
    }

    #[test]
    fn bucketing_conserves_interval_length() {
        let mut buf = vec![0.0; 8];
        add_interval(&mut buf, 10.0, 3.0, 77.0);
        assert!((buf.iter().sum::<f64>() - 74.0).abs() < 1e-9);
        assert!((buf[0] - 7.0).abs() < 1e-9);
        assert!((buf[7] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn bucketing_absorbs_overhang_in_last_bucket() {
        // Interval end past the nominal bucket range must not be lost.
        let mut buf = vec![0.0; 4];
        add_interval(&mut buf, 10.0, 35.0, 47.5);
        assert!((buf.iter().sum::<f64>() - 12.5).abs() < 1e-9);
        assert!((buf[3] - 12.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate_intervals_are_ignored() {
        let mut buf = vec![0.0; 4];
        add_interval(&mut buf, 10.0, 5.0, 5.0);
        add_interval(&mut buf, 10.0, 9.0, 3.0);
        add_interval(&mut buf, 0.0, 0.0, 10.0);
        assert!(buf.iter().all(|&b| b == 0.0));
    }
}
