//! Execution tracing: an optional per-transfer timeline the engine records
//! when [`SimConfig::record_trace`](crate::SimConfig) is set, plus
//! rendering and analysis helpers.
//!
//! The trace is the simulator's equivalent of an NSight timeline: one
//! [`TraceEvent`] per transfer invocation with its rendezvous, latency and
//! drain phases. [`render_gantt`] draws a coarse text Gantt chart per rank
//! (useful in examples and when debugging schedules); [`BottleneckReport`]
//! identifies the resources that bound the run.

use crate::fault::Fault;
use crate::metrics::SimReport;
use serde::{Deserialize, Serialize};

/// A fault transition the engine applied during the run, kept in the
/// report so post-mortems can line failures up against the transfer
/// timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Sim time at which the transition was applied, ns. Negative for
    /// transitions that predate a retried run's start (the timeline was
    /// shifted by [`FaultTimeline::advanced`](crate::FaultTimeline)).
    pub at_ns: f64,
    /// The transition.
    pub fault: Fault,
}

/// One transfer invocation's lifecycle on the timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Task index (into the DAG).
    pub task: u32,
    /// Micro-batch.
    pub mb: u32,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// When the transfer's rendezvous completed and it started (ns).
    pub start_ns: f64,
    /// When the startup-latency phase ended and draining began (ns).
    pub drain_start_ns: f64,
    /// Completion time (ns).
    pub end_ns: f64,
    /// Bytes moved.
    pub bytes: u64,
}

impl TraceEvent {
    /// Mean drain rate in GB/s (bytes per ns).
    pub fn mean_rate_gbps(&self) -> f64 {
        let drain = self.end_ns - self.drain_start_ns;
        if drain <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / drain
        }
    }
}

/// Which endpoint's activity a Gantt chart credits to a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GanttDirection {
    /// Sender activity only (`src` rank busy while its transfer runs).
    Send,
    /// Receiver activity only (`dst` rank busy while draining inbound).
    Recv,
    /// Both endpoints (a transfer occupies a TB on each side).
    Both,
}

/// Render a coarse text Gantt chart of per-rank transfer activity.
///
/// Each row is a rank; each column is a `width`-th of the run. A cell
/// shows `#` when the rank was engaged in transfers for more than half
/// the column's span, `+` when engaged at all, and `.` when idle. By
/// default both endpoints are credited — a transfer occupies a TB on the
/// sender *and* the receiver, so receiver ranks no longer render idle
/// while draining inbound traffic. Use [`render_gantt_directed`] for a
/// single-direction view.
pub fn render_gantt(events: &[TraceEvent], n_ranks: u32, width: usize) -> String {
    render_gantt_directed(events, n_ranks, width, GanttDirection::Both)
}

/// [`render_gantt`] with an explicit direction mode.
pub fn render_gantt_directed(
    events: &[TraceEvent],
    n_ranks: u32,
    width: usize,
    dir: GanttDirection,
) -> String {
    assert!(width >= 1);
    let end = events.iter().map(|e| e.end_ns).fold(0.0, f64::max);
    if end <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let col = end / width as f64;
    let mut busy = vec![vec![0.0f64; width]; n_ranks as usize];
    for e in events {
        let first = ((e.start_ns / col) as usize).min(width - 1);
        let last = ((e.end_ns / col) as usize).min(width - 1);
        #[allow(clippy::needless_range_loop)] // `c` drives the overlap math too
        for c in first..=last {
            let cs = c as f64 * col;
            let ce = cs + col;
            let overlap = (e.end_ns.min(ce) - e.start_ns.max(cs)).max(0.0);
            for rank in [e.src, e.dst] {
                let credit = match dir {
                    GanttDirection::Send => rank == e.src,
                    GanttDirection::Recv => rank == e.dst,
                    GanttDirection::Both => true,
                };
                // Ignore endpoints outside the requested row range rather
                // than panicking on partial traces.
                if credit && rank < n_ranks {
                    busy[rank as usize][c] += overlap;
                }
                if e.src == e.dst {
                    break; // self-loop: credit once
                }
            }
        }
    }
    let mut out = String::new();
    for (r, row) in busy.iter().enumerate() {
        out.push_str(&format!("r{r:<3} |"));
        for &b in row {
            out.push(if b > 0.5 * col {
                '#'
            } else if b > 0.0 {
                '+'
            } else {
                '.'
            });
        }
        out.push_str("|\n");
    }
    // Time axis: '0' sits under the first cell (column 6); the end label
    // is right-aligned so its last character sits under each row's
    // closing '|' (column 6 + width). When the label cannot fit inside
    // the axis, fall back to a single separating space instead of
    // overflowing the alignment math.
    let label = format!("{:.2} ms", end / 1e6);
    let pad = width.saturating_sub(label.len()).max(1);
    out.push_str(&format!("      0{}{label}\n", " ".repeat(pad)));
    out
}

/// Which resources bound the run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Resources sorted by active-time ratio, busiest first:
    /// `(resource index, active ratio, bytes)`.
    pub hottest: Vec<(u32, f64, u64)>,
}

impl BottleneckReport {
    /// Analyze a finished run.
    pub fn from_report(report: &SimReport) -> Self {
        let mut hottest: Vec<(u32, f64, u64)> = report
            .resource_stats
            .iter()
            .map(|r| {
                (
                    r.resource,
                    r.active_ratio_over(report.completion_ns),
                    r.bytes,
                )
            })
            .collect();
        hottest.sort_by(|a, b| b.1.total_cmp(&a.1));
        Self { hottest }
    }

    /// The single busiest resource, if any traffic flowed.
    pub fn bottleneck(&self) -> Option<(u32, f64)> {
        self.hottest.first().map(|(r, a, _)| (*r, *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task: 0,
            mb: 0,
            src,
            dst: (src + 1) % 4,
            start_ns: start,
            drain_start_ns: start + 1.0,
            end_ns: end,
            bytes: 1000,
        }
    }

    fn row(chart: &str, r: usize) -> String {
        chart
            .lines()
            .nth(r)
            .unwrap()
            .split('|')
            .nth(1)
            .unwrap()
            .to_string()
    }

    #[test]
    fn gantt_marks_busy_columns() {
        let events = vec![ev(0, 0.0, 50.0), ev(1, 50.0, 100.0)];
        let g = render_gantt(&events, 2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("r0"));
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('.'));
        // Rank 0 sends in the first half; rank 1 receives that transfer,
        // then sends in the second half — its whole row is busy.
        assert_eq!(&row(&g, 0)[..4], "####");
        assert_eq!(&row(&g, 1)[6..10], "####");
        assert_eq!(&row(&g, 1)[..4], "####");
    }

    #[test]
    fn gantt_credits_receivers() {
        // Regression: a pure receiver used to render fully idle while
        // draining inbound transfers.
        let events = vec![ev(0, 0.0, 100.0)]; // 0 -> 1
        let g = render_gantt(&events, 2, 10);
        assert_eq!(row(&g, 1), "##########");
        // Direction modes separate the two views.
        let send = render_gantt_directed(&events, 2, 10, GanttDirection::Send);
        assert_eq!(row(&send, 0), "##########");
        assert_eq!(row(&send, 1), "..........");
        let recv = render_gantt_directed(&events, 2, 10, GanttDirection::Recv);
        assert_eq!(row(&recv, 0), "..........");
        assert_eq!(row(&recv, 1), "##########");
    }

    #[test]
    fn gantt_axis_label_aligns_with_row_edge() {
        // Regression: the time-axis label used `w = width - 1` right
        // alignment, overflowing the chart for small widths. The label's
        // last character must sit under the closing '|' (column
        // 6 + width) whenever it fits, and keep one separating space
        // otherwise.
        let events = vec![ev(0, 0.0, 100.0)];
        for width in [8usize, 10, 24, 40] {
            let g = render_gantt(&events, 2, width);
            let axis = g.lines().last().unwrap();
            assert_eq!(axis.as_bytes()[6], b'0', "width {width}: {axis:?}");
            assert_eq!(axis.len(), 6 + width + 1, "width {width}: {axis:?}");
        }
        // Too narrow for the label: no overflow past a single space.
        let g = render_gantt(&events, 2, 3);
        let axis = g.lines().last().unwrap();
        assert!(axis.starts_with("      0 0."), "{axis:?}");
    }

    #[test]
    fn gantt_ignores_out_of_range_endpoints() {
        // ev() wraps dst with % 4; rendering only 2 ranks must not panic.
        let events = vec![ev(1, 0.0, 80.0)]; // 1 -> 2, but n_ranks = 2
        let g = render_gantt(&events, 2, 8);
        assert_eq!(row(&g, 0), "........");
        assert_eq!(row(&g, 1), "########");
    }

    #[test]
    fn empty_trace_renders() {
        assert!(render_gantt(&[], 4, 8).contains("empty"));
    }

    #[test]
    fn mean_rate() {
        let e = TraceEvent {
            drain_start_ns: 10.0,
            end_ns: 110.0,
            bytes: 500,
            ..ev(0, 0.0, 110.0)
        };
        assert!((e.mean_rate_gbps() - 5.0).abs() < 1e-12);
    }
}
