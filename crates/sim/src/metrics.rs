//! Metrics collected by the simulator: per-TB occupancy, per-resource
//! activity, and whole-run summaries.
//!
//! These feed every resource-oriented result of the paper: Table 1 (link
//! utilization), Fig. 2 / Fig. 12 (per-TB time breakdown), Table 3 (TB
//! counts, communication time, average/max idle), and the bandwidth numbers
//! of Figs. 6–9 and 11.

use serde::{Deserialize, Serialize};

/// Per-thread-block accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TbStat {
    /// Rank the TB runs on.
    pub rank: u32,
    /// TB index within its rank.
    pub tb: u32,
    /// Time spent executing transfers (latency + drain phases), ns.
    pub busy_ns: f64,
    /// Time spent blocked — waiting for the peer TB or for data
    /// dependencies — while occupying SM resources, ns.
    pub sync_ns: f64,
    /// When the TB finished its last invocation (early-release point), ns.
    pub release_ns: f64,
    /// The window during which the TB occupied an SM, ns. Equals
    /// `release_ns` under flexible (early) release, or the whole kernel
    /// duration under rigid allocation.
    pub occupancy_ns: f64,
    /// Number of primitive invocations executed.
    pub n_invocations: u64,
}

impl TbStat {
    /// Fraction of occupancy spent busy-waiting.
    pub fn idle_ratio(&self) -> f64 {
        if self.occupancy_ns <= 0.0 {
            // A TB that never did anything but occupied an SM for a
            // zero-length window: call it fully idle if it had no work.
            return if self.n_invocations == 0 { 1.0 } else { 0.0 };
        }
        (1.0 - self.busy_ns / self.occupancy_ns).clamp(0.0, 1.0)
    }

    /// Fraction of occupancy spent communicating.
    pub fn comm_ratio(&self) -> f64 {
        1.0 - self.idle_ratio()
    }
}

/// Per-resource accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceStat {
    /// Resource index.
    pub resource: u32,
    /// Total time the resource had at least one draining transfer, ns.
    pub active_ns: f64,
    /// Total bytes moved through the resource.
    pub bytes: u64,
    /// Resource capacity in bytes/ns (GB/s).
    pub capacity: f64,
}

impl ResourceStat {
    /// Bandwidth utilization relative to capacity over `span_ns`:
    /// `bytes / (capacity · span)`.
    pub fn utilization_over(&self, span_ns: f64) -> f64 {
        if span_ns <= 0.0 || self.capacity <= 0.0 {
            return 0.0;
        }
        (self.bytes as f64 / (self.capacity * span_ns)).clamp(0.0, 1.0)
    }

    /// Fraction of `span_ns` during which the resource was active.
    pub fn active_ratio_over(&self, span_ns: f64) -> f64 {
        if span_ns <= 0.0 {
            return 0.0;
        }
        (self.active_ns / span_ns).clamp(0.0, 1.0)
    }
}

/// The complete result of one simulated collective call.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock completion time of the collective, ns.
    pub completion_ns: f64,
    /// Total bytes moved over all connections (each transfer counted once).
    pub total_bytes: u64,
    /// Per-TB statistics, in (rank, tb) order.
    pub tb_stats: Vec<TbStat>,
    /// Per-resource statistics for resources that carried traffic.
    pub resource_stats: Vec<ResourceStat>,
    /// Whether the data-correctness check ran and passed.
    /// `None` when validation was disabled.
    pub data_valid: Option<bool>,
    /// Number of micro-batches executed.
    pub n_micro_batches: u32,
    /// Number of transfer invocations executed.
    pub n_invocations: u64,
    /// Per-transfer timeline (populated when
    /// [`SimConfig::record_trace`](crate::SimConfig) is set).
    pub trace: Vec<crate::TraceEvent>,
    /// Fault transitions applied during the run, in application order.
    pub faults: Vec<crate::FaultRecord>,
    /// Bubble attribution payload (populated when
    /// [`SimConfig::attribute_bubbles`](crate::SimConfig) is set).
    pub obs: Option<crate::SimObservability>,
}

impl SimReport {
    /// Algorithm bandwidth in GB/s for a collective that synchronized
    /// `buffer_bytes` per rank: `buffer / time` (the paper's algbw).
    pub fn algo_bandwidth_gbps(&self, buffer_bytes: u64) -> f64 {
        if self.completion_ns <= 0.0 {
            return 0.0;
        }
        buffer_bytes as f64 / self.completion_ns
    }

    /// Number of TBs that executed at least one invocation.
    pub fn active_tbs(&self) -> usize {
        self.tb_stats.iter().filter(|t| t.n_invocations > 0).count()
    }

    /// Whether this run finished faster than a certified makespan lower
    /// bound (the α–β–γ cost certificate the sanitize phase attaches to
    /// every compiled plan). A fresh fault-free run undercutting its
    /// certificate means the cost model and the engine disagree — one of
    /// them is wrong. The relative epsilon absorbs the f64 accumulation
    /// slack between the certificate's closed form and the engine's
    /// event-by-event arithmetic.
    pub fn undercuts_floor(&self, floor_ns: f64) -> bool {
        floor_ns.is_finite() && self.completion_ns < floor_ns * (1.0 - 1e-9)
    }

    /// TBs that actually occupied an SM for a non-zero window. Under
    /// flexible (early) release a TB slot the plan never launches has
    /// `occupancy_ns == 0` and `n_invocations == 0` — it held no SM and
    /// must not count toward occupancy-weighted aggregates; under rigid
    /// allocation every TB occupies its SM for the whole kernel and all
    /// of them count.
    fn occupied_tbs(&self) -> impl Iterator<Item = &TbStat> {
        self.tb_stats.iter().filter(|t| t.occupancy_ns > 0.0)
    }

    /// Mean idle ratio across TBs that occupied SMs. Never-launched TB
    /// slots (`idle_ratio() == 1.0` with zero occupancy) are excluded so
    /// they cannot inflate the Table-3 "avg idle" metric.
    pub fn avg_idle_ratio(&self) -> f64 {
        let (sum, n) = self
            .occupied_tbs()
            .fold((0.0f64, 0usize), |(s, n), t| (s + t.idle_ratio(), n + 1));
        if n == 0 {
            return 0.0;
        }
        sum / n as f64
    }

    /// Worst idle ratio across TBs that occupied SMs (same population as
    /// [`avg_idle_ratio`](Self::avg_idle_ratio)).
    pub fn max_idle_ratio(&self) -> f64 {
        self.occupied_tbs()
            .map(TbStat::idle_ratio)
            .fold(0.0, f64::max)
    }

    /// Mean communication (busy) ratio across TBs.
    pub fn avg_comm_ratio(&self) -> f64 {
        1.0 - self.avg_idle_ratio()
    }

    /// Global link utilization (Table 1): mean *active time* ratio over
    /// the links that carried traffic — the complement of the paper's
    /// "accumulated bubbles" (idle link time) over the collective's
    /// completion time. Unweighted across links, so an algorithm that
    /// funnels all traffic through a few hot links (and leaves the rest
    /// idle) scores low even if the hot links are saturated.
    pub fn global_link_utilization(&self) -> f64 {
        let carrying: Vec<&ResourceStat> =
            self.resource_stats.iter().filter(|r| r.bytes > 0).collect();
        if carrying.is_empty() {
            return 0.0;
        }
        carrying
            .iter()
            .map(|r| r.active_ratio_over(self.completion_ns))
            .sum::<f64>()
            / carrying.len() as f64
    }

    /// Traffic-weighted mean *bandwidth* utilization (bytes over
    /// capacity × completion) of the links that carried traffic — a
    /// stricter metric than [`Self::global_link_utilization`] that also
    /// penalizes links draining below line rate.
    pub fn global_bandwidth_utilization(&self) -> f64 {
        let carrying: Vec<&ResourceStat> =
            self.resource_stats.iter().filter(|r| r.bytes > 0).collect();
        if carrying.is_empty() {
            return 0.0;
        }
        let total: u64 = carrying.iter().map(|r| r.bytes).sum();
        carrying
            .iter()
            .map(|r| r.utilization_over(self.completion_ns) * r.bytes as f64 / total as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_ratio_basics() {
        let t = TbStat {
            busy_ns: 30.0,
            sync_ns: 70.0,
            occupancy_ns: 100.0,
            n_invocations: 3,
            ..Default::default()
        };
        assert!((t.idle_ratio() - 0.7).abs() < 1e-12);
        assert!((t.comm_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_tb_is_fully_idle() {
        let t = TbStat::default();
        assert_eq!(t.idle_ratio(), 1.0);
    }

    #[test]
    fn utilization_is_bytes_over_capacity_time() {
        let r = ResourceStat {
            resource: 0,
            active_ns: 50.0,
            bytes: 500,
            capacity: 10.0,
        };
        assert!((r.utilization_over(100.0) - 0.5).abs() < 1e-12);
        assert!((r.active_ratio_over(100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let rep = SimReport {
            completion_ns: 1000.0,
            total_bytes: 4000,
            tb_stats: vec![
                TbStat {
                    busy_ns: 900.0,
                    occupancy_ns: 1000.0,
                    n_invocations: 1,
                    ..Default::default()
                },
                TbStat {
                    busy_ns: 100.0,
                    occupancy_ns: 1000.0,
                    n_invocations: 1,
                    ..Default::default()
                },
            ],
            resource_stats: vec![],
            data_valid: Some(true),
            n_micro_batches: 1,
            n_invocations: 2,
            trace: Vec::new(),
            faults: Vec::new(),
            obs: None,
        };
        assert!((rep.avg_idle_ratio() - 0.5).abs() < 1e-12);
        assert!((rep.max_idle_ratio() - 0.9).abs() < 1e-12);
        assert!((rep.algo_bandwidth_gbps(2000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn never_launched_tbs_do_not_inflate_idle_aggregates() {
        // Regression: a TB slot the plan never launches (zero occupancy,
        // zero invocations) scores idle_ratio() == 1.0 and used to dilute
        // the average over *all* tb_stats. It holds no SM, so both
        // aggregates must ignore it.
        let working = TbStat {
            busy_ns: 75.0,
            sync_ns: 25.0,
            occupancy_ns: 100.0,
            release_ns: 100.0,
            n_invocations: 4,
            ..Default::default()
        };
        let never_launched = TbStat::default();
        assert_eq!(never_launched.idle_ratio(), 1.0);
        let rep = SimReport {
            completion_ns: 100.0,
            total_bytes: 100,
            tb_stats: vec![working.clone(), never_launched],
            resource_stats: vec![],
            data_valid: None,
            n_micro_batches: 1,
            n_invocations: 4,
            trace: Vec::new(),
            faults: Vec::new(),
            obs: None,
        };
        assert!((rep.avg_idle_ratio() - 0.25).abs() < 1e-12);
        assert!((rep.max_idle_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(rep.active_tbs(), 1);
    }
}
