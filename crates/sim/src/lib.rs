//! # rescc-sim
//!
//! Deterministic discrete-event simulator for collective communication on a
//! GPU cluster. This crate substitutes for the paper's physical testbed
//! (A100/V100 servers, NVSwitch, RoCE Clos): it executes generated
//! [`KernelProgram`](rescc_kernel::KernelProgram)s primitive-by-primitive,
//! arbitrates link bandwidth with the α–β–γ cost model of Eq. (1), and
//! accounts exactly the quantities the paper measures — per-TB busy / sync /
//! release times, per-link activity, completion time, and machine-checked
//! collective correctness.
//!
//! ```
//! use rescc_alloc::TbAllocation;
//! use rescc_ir::{DepDag, MicroBatchPlan};
//! use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
//! use rescc_lang::{AlgoBuilder, OpType};
//! use rescc_sched::hpds;
//! use rescc_sim::{simulate, SimConfig};
//! use rescc_topology::Topology;
//!
//! // Ring AllGather over one 4-GPU server.
//! let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 4);
//! for r in 0..4u32 {
//!     for step in 0..3u32 {
//!         b.recv(r, (r + 1) % 4, step, (r + 4 - step) % 4);
//!     }
//! }
//! let topo = Topology::a100(1, 4);
//! let dag = DepDag::build(&b.build().unwrap(), &topo).unwrap();
//! let sched = hpds(&dag);
//! let alloc = TbAllocation::state_based(&dag, &sched);
//! let prog = KernelProgram::generate("Ring", &dag, &alloc,
//!     LoopOrder::SlotMajor, ExecMode::DirectKernel);
//! let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
//! let report = simulate(&topo, &dag, &prog, &plan, OpType::AllGather,
//!     &SimConfig::default()).unwrap();
//! assert_eq!(report.data_valid, Some(true));
//! assert!(report.completion_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod fault;
mod frontier;
mod metrics;
mod obs;
mod trace;
mod value;

pub use config::SimConfig;
pub use engine::simulate;
pub use error::{SimError, SimResult};
pub use fault::{Fault, FaultEvent, FaultTimeline};
pub use frontier::{FaultFrontier, ReplayOp, ResumeState};
pub use metrics::{ResourceStat, SimReport, TbStat};
pub use obs::{BubbleCause, BubbleInterval, LinkTimeline, SimObservability, TbTimeline};
pub use trace::{
    render_gantt, render_gantt_directed, BottleneckReport, FaultRecord, GanttDirection, TraceEvent,
};
pub use value::{expected_final, initial_value, ChunkValue};

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_alloc::TbAllocation;
    use rescc_ir::{DepDag, MicroBatchPlan};
    use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_sched::hpds;
    use rescc_topology::{Rank, Topology};

    fn ring_ag(n: u32) -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    fn build_all(
        spec: &rescc_lang::AlgoSpec,
        topo: &Topology,
        order: LoopOrder,
        exec: ExecMode,
    ) -> (DepDag, KernelProgram) {
        let dag = DepDag::build(spec, topo).unwrap();
        let sched = hpds(&dag);
        let alloc = TbAllocation::state_based(&dag, &sched);
        let prog = KernelProgram::generate(spec.name(), &dag, &alloc, order, exec);
        (dag, prog)
    }

    #[test]
    fn single_transfer_takes_alpha_plus_c_beta() {
        // One task, one micro-batch: completion must equal the serial cost.
        let mut b = AlgoBuilder::new("p2p", OpType::AllGather, 2);
        b.recv(0, 1, 0, 0);
        // For a 2-rank AllGather the reverse direction is also needed for
        // correctness — disable validation and check pure timing.
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 2);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(2 << 20, 2, 1 << 20); // 1 MiB chunks, 1 mb
        let cfg = SimConfig::default().without_validation();
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        // A single TB drives the pair channel at its TB-limited rate
        // (`bandwidth / saturation_tbs` — one 16-warp TB cannot saturate
        // the 300 GB/s NVSwitch pair on its own).
        let conn = topo.connection(Rank::new(0), Rank::new(1));
        let expect = conn.params.shared_cost_ns(1 << 20, 1);
        assert!(
            (rep.completion_ns - expect).abs() < 1e-6,
            "got {}, expected {}",
            rep.completion_ns,
            expect
        );
    }

    #[test]
    fn ring_allgather_is_correct_and_timed() {
        let topo = Topology::a100(1, 8);
        let spec = ring_ag(8);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(256 << 20, 8, 1 << 20); // 32 micro-batches
        let rep = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.data_valid, Some(true));
        assert_eq!(rep.n_invocations, 56 * 32);
        // Sanity: bandwidth positive and below NVLink line rate.
        let bw = rep.algo_bandwidth_gbps(256 << 20);
        assert!(bw > 1.0 && bw < 300.0, "bandwidth {bw} out of range");
    }

    #[test]
    fn ring_allgather_multi_node_correct() {
        let topo = Topology::a100(2, 4);
        let spec = ring_ag(8);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 8, 1 << 20);
        let rep = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn reduce_scatter_ring_is_correct() {
        // Ring ReduceScatter: rank r sends chunk (r - step) around; rrc.
        let n = 4u32;
        let mut b = AlgoBuilder::new("RingRS", OpType::ReduceScatter, n);
        for r in 0..n {
            for step in 0..n - 1 {
                // Standard ring RS: chunk c starts its journey at rank c+1
                // and accumulates around the ring, ending at rank c. Rank r
                // at step s forwards chunk (r - s - 1) mod n.
                b.rrc(r, (r + 1) % n, step, (r + n - step - 1) % n);
            }
        }
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(16 << 20, 4, 1 << 20);
        let rep = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::ReduceScatter,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn wrong_algorithm_fails_validation() {
        // An "AllGather" that only moves one chunk cannot validate.
        let mut b = AlgoBuilder::new("broken", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0).recv(1, 2, 1, 0).recv(2, 3, 2, 0);
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(4 << 20, 4, 1 << 20);
        let err = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("wrong data"), "{err}");
    }

    #[test]
    fn interpreter_is_slower_than_direct_kernel() {
        let topo = Topology::a100(1, 8);
        let spec = ring_ag(8);
        let plan = MicroBatchPlan::plan(256 << 20, 8, 1 << 20);
        let cfg = SimConfig::default().without_validation();
        let (dag, direct) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let (_, interp) = build_all(
            &spec,
            &topo,
            LoopOrder::SlotMajor,
            ExecMode::default_interpreter(),
        );
        let td = simulate(&topo, &dag, &direct, &plan, OpType::AllGather, &cfg)
            .unwrap()
            .completion_ns;
        let ti = simulate(&topo, &dag, &interp, &plan, OpType::AllGather, &cfg)
            .unwrap()
            .completion_ns;
        assert!(ti > td * 1.05, "interpreter {ti} vs direct {td}");
    }

    /// Hierarchical-mesh AllGather for a 2-node × 2-GPU cluster: intra
    /// full-mesh broadcast + inter ring, then intra rebroadcast of the
    /// remote chunks (the HM-AllGather of Appendix A at its smallest size).
    fn hm_ag_2x2() -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("HM-AG", OpType::AllGather, 4);
        // Stage 1: local mesh + cross-node exchange of the own chunk.
        b.recv(0, 1, 0, 0)
            .recv(1, 0, 0, 1)
            .recv(2, 3, 0, 2)
            .recv(3, 2, 0, 3)
            .recv(0, 2, 0, 0)
            .recv(2, 0, 0, 2)
            .recv(1, 3, 0, 1)
            .recv(3, 1, 0, 3);
        // Stage 2: rebroadcast the chunk received from the remote peer.
        b.recv(2, 3, 1, 0)
            .recv(3, 2, 1, 1)
            .recv(0, 1, 1, 2)
            .recv(1, 0, 1, 3);
        b.build().unwrap()
    }

    #[test]
    fn hm_allgather_2x2_is_correct() {
        let topo = Topology::a100(2, 2);
        let spec = hm_ag_2x2();
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(32 << 20, 4, 1 << 20);
        let rep = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn slot_major_pipelines_better_than_mb_major_across_nodes() {
        // Task-level execution masks the bubbles a hierarchical algorithm
        // suffers under lazy execution: the fast NVLink rebroadcast phase
        // must wait for the slow NIC exchange every micro-batch, while
        // task-level execution overlaps phase 2 of micro-batch m with
        // phase 1 of micro-batch m+1.
        let topo = Topology::a100(2, 2);
        let spec = hm_ag_2x2();
        let plan = MicroBatchPlan::plan(512 << 20, 4, 1 << 20); // 128 mbs
        let cfg = SimConfig::default().without_validation();
        let (dag, slot) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let (_, mbm) = build_all(
            &spec,
            &topo,
            LoopOrder::MicroBatchMajor,
            ExecMode::DirectKernel,
        );
        // Lazy algorithm-level execution: a barrier between micro-batches.
        let mbm = mbm.with_global_barrier(dag.len());
        let ts = simulate(&topo, &dag, &slot, &plan, OpType::AllGather, &cfg)
            .unwrap()
            .completion_ns;
        let tm = simulate(&topo, &dag, &mbm, &plan, OpType::AllGather, &cfg)
            .unwrap()
            .completion_ns;
        assert!(
            ts < tm,
            "task-level {ts} must beat algorithm-level {tm} on multi-node rings"
        );
    }

    #[test]
    fn determinism() {
        let topo = Topology::a100(2, 4);
        let spec = ring_ag(8);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 8, 1 << 20);
        let cfg = SimConfig::default();
        let a = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        let b = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_changes_times_but_not_correctness() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(16 << 20, 4, 1 << 20);
        let base = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        let jit = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default().with_jitter(0.5, 42),
        )
        .unwrap();
        assert_eq!(jit.data_valid, Some(true));
        assert!(jit.completion_ns > base.completion_ns);
    }

    #[test]
    fn degraded_link_slows_the_run() {
        let topo = Topology::a100(2, 4);
        let spec = ring_ag(8);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(128 << 20, 8, 1 << 20);
        let cfg = SimConfig::default().without_validation();
        let base = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        // Degrade the NIC the ring crosses (rank 3 -> rank 4).
        let nic = topo.nic_tx(topo.nic_of(Rank::new(3)));
        let slow_cfg = cfg.clone().with_degraded(nic, 0.25);
        let slow = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &slow_cfg).unwrap();
        assert!(slow.completion_ns > base.completion_ns * 1.5);
    }

    #[test]
    fn early_release_shrinks_occupancy() {
        let topo = Topology::a100(1, 8);
        let spec = ring_ag(8);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 8, 1 << 20);
        let flex = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        let rigid = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::rigid(),
        )
        .unwrap();
        let occ_flex: f64 = flex.tb_stats.iter().map(|t| t.occupancy_ns).sum();
        let occ_rigid: f64 = rigid.tb_stats.iter().map(|t| t.occupancy_ns).sum();
        assert!(occ_flex <= occ_rigid);
        assert_eq!(flex.completion_ns, rigid.completion_ns);
    }

    #[test]
    fn channel_barrier_stride_keeps_streams_independent() {
        // Intra-node ring with 4 channels: the pair channels saturate at
        // exactly 4 concurrent TBs, so channel streams add parallelism
        // without contention — stride = 4 (independent streams) must beat
        // stride = 1 (micro-batch lockstep), and a barrier-free run must
        // not lose to the strided one.
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let sched = hpds(&dag);
        let plan = MicroBatchPlan::plan(256 << 20, 4, 1 << 20); // 64 mbs
        let cfg = SimConfig::rigid().without_validation();
        let run = |stride: Option<u32>| {
            let alloc = rescc_alloc::TbAllocation::connection_based(&dag, &sched, 4);
            let mut prog = KernelProgram::generate(
                "ring4",
                &dag,
                &alloc,
                LoopOrder::MicroBatchMajor,
                ExecMode::DirectKernel,
            );
            if let Some(k) = stride {
                prog = prog.with_global_barrier(dag.len()).with_barrier_stride(k);
            }
            simulate(&topo, &dag, &prog, &plan, spec.op(), &cfg)
                .unwrap()
                .completion_ns
        };
        let free = run(None);
        let strided = run(Some(4));
        let serial = run(Some(1));
        assert!(free <= strided * 1.001, "free {free} vs strided {strided}");
        assert!(
            strided < serial,
            "4 channel streams {strided} must beat lockstep {serial}"
        );
    }

    #[test]
    fn trace_records_every_invocation() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(16 << 20, 4, 1 << 20);
        let cfg = SimConfig::default().with_trace();
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        assert_eq!(rep.trace.len() as u64, rep.n_invocations);
        for e in &rep.trace {
            assert!(e.start_ns <= e.drain_start_ns && e.drain_start_ns <= e.end_ns);
            assert!(e.bytes > 0);
        }
    }

    #[test]
    fn link_death_mid_run_fails_with_typed_error() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let base = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let at = base.completion_ns * 0.4;
        let cfg = SimConfig::default().with_faults(FaultTimeline::new().kill(chan, at));
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        match err {
            SimError::ResourceDown {
                resource,
                at_ns,
                permanent,
                ..
            } => {
                assert_eq!(resource, chan.0);
                assert!(permanent, "kill() with no recovery is permanent");
                assert!(
                    (at_ns as f64 - at).abs() <= at * 0.5 + 1.0,
                    "failed at {at_ns}"
                );
            }
            other => panic!("expected ResourceDown, got {other}"),
        }
        assert!(!err.is_transient());
    }

    /// A no-prune resume state built straight from a frontier: every
    /// completed invocation marked done, with its buffer effect replayed
    /// in per-chunk dependency order.
    fn resume_from(dag: &DepDag, n_mb: u32, frontier: &FaultFrontier) -> ResumeState {
        use rescc_topology::ChunkId;
        let mut rs = ResumeState::new(dag.len() as u32, n_mb);
        for c in 0..dag.n_chunks() {
            for &t in dag.chunk_tasks(ChunkId::new(c)) {
                for mb in 0..n_mb {
                    if frontier.is_done(t.0, mb) {
                        rs.mark_done(t.0, mb);
                        let task = dag.task(t);
                        rs.replay.push(ReplayOp {
                            src: task.src.0,
                            dst: task.dst.0,
                            chunk: c,
                            mb,
                            reduce: task.comm == rescc_lang::CommType::Rrc,
                        });
                    }
                }
            }
        }
        rs
    }

    #[test]
    fn resume_from_frontier_finishes_with_valid_data_in_residual_time() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let base = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        // Kill a channel at 60% of the healthy run.
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let cfg = SimConfig::default()
            .with_faults(FaultTimeline::new().kill(chan, base.completion_ns * 0.6));
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        let frontier = err.frontier().expect("abort carries a frontier").clone();
        assert!(frontier.completed() > 0, "60% kill must leave progress");
        assert!(
            frontier.completed() < base.n_invocations,
            "aborted run cannot have finished"
        );
        // Resume on a healthy fabric (the link was restored): only the
        // residual work runs, data still validates, and the residual run
        // is strictly cheaper than restarting from byte zero.
        let resume = resume_from(&dag, plan.n_micro_batches, &frontier);
        let rcfg = SimConfig::default().with_resume(resume);
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &rcfg).unwrap();
        assert_eq!(rep.data_valid, Some(true));
        assert_eq!(rep.n_invocations, base.n_invocations);
        assert!(
            rep.completion_ns < base.completion_ns,
            "residual {} must be cheaper than a full run {}",
            rep.completion_ns,
            base.completion_ns
        );
    }

    #[test]
    fn resume_with_mismatched_dimensions_is_rejected() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(16 << 20, 4, 1 << 20);
        let cfg = SimConfig::default().with_resume(ResumeState::new(3, 99));
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn flapping_link_is_transient() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        // Down for a window in the middle of the run, then back up.
        let cfg = SimConfig::default()
            .with_faults(FaultTimeline::new().flap(chan, 50_000.0, 100_000.0, 100_000.0, 1));
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // A retry after the flap window (timeline shifted into the past)
        // sees the recovered link and completes correctly.
        let retry_cfg = SimConfig::default().with_faults(
            FaultTimeline::new()
                .flap(chan, 50_000.0, 100_000.0, 100_000.0, 1)
                .advanced(300_000.0),
        );
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &retry_cfg).unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn brownout_slows_but_completes() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let cfg = SimConfig::default();
        let base = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let brown = cfg.clone().with_faults(FaultTimeline::new().brownout(
            chan,
            0.0,
            0.1,
            base.completion_ns * 2.0,
        ));
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &brown).unwrap();
        assert_eq!(rep.data_valid, Some(true));
        assert!(
            rep.completion_ns > base.completion_ns * 1.2,
            "brownout {} vs healthy {}",
            rep.completion_ns,
            base.completion_ns
        );
        assert!(!rep.faults.is_empty(), "transitions must be reported");
    }

    #[test]
    fn straggler_rank_slows_issue() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        // Many small micro-batches so issue latency matters.
        let plan = MicroBatchPlan::plan(4 << 20, 4, 64 << 10);
        let cfg = SimConfig::default();
        let base = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        let slow = cfg.clone().with_faults(FaultTimeline::new().straggler(
            2,
            0.0,
            20.0,
            base.completion_ns * 2.0,
        ));
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &slow).unwrap();
        assert_eq!(rep.data_valid, Some(true));
        assert!(rep.completion_ns > base.completion_ns);
    }

    #[test]
    fn deadline_fires_when_too_tight() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let base = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default(),
        )
        .unwrap();
        let tight = SimConfig::default().with_deadline_ns(base.completion_ns * 0.5);
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &tight).unwrap_err();
        assert!(
            matches!(err, SimError::DeadlineExceeded { completed, total, .. }
                if completed < total),
            "{err}"
        );
        // A generous deadline never fires.
        let loose = SimConfig::default().with_deadline_ns(base.completion_ns * 2.0);
        let rep = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &loose).unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn invalid_config_rejected_at_run_time() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(4 << 20, 4, 1 << 20);
        let cfg = SimConfig::default().with_jitter(3.0, 0);
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        let cfg = SimConfig::default().with_degraded(rescc_topology::ResourceId::new(0), 2.0);
        let err = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fault_runs_replay_deterministically() {
        let topo = Topology::a100(1, 4);
        let spec = ring_ag(4);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(64 << 20, 4, 1 << 20);
        let chan = topo.pair_chan(Rank::new(1), Rank::new(2));
        let cfg = SimConfig::default()
            .with_jitter(0.2, 7)
            .with_faults(FaultTimeline::new().brownout(chan, 10_000.0, 0.5, 500_000.0));
        let a = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        let b = simulate(&topo, &dag, &prog, &plan, OpType::AllGather, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn link_utilization_bounded() {
        let topo = Topology::a100(2, 8);
        let spec = ring_ag(16);
        let (dag, prog) = build_all(&spec, &topo, LoopOrder::SlotMajor, ExecMode::DirectKernel);
        let plan = MicroBatchPlan::plan(256 << 20, 16, 1 << 20);
        let rep = simulate(
            &topo,
            &dag,
            &prog,
            &plan,
            OpType::AllGather,
            &SimConfig::default().without_validation(),
        )
        .unwrap();
        let u = rep.global_link_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }
}
