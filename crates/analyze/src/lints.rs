//! The lint passes RA001–RA008.
//!
//! Order-sensitive passes (RA001, RA002, RA006) share one happens-before
//! oracle ([`HbOracle`]) built over the combined order; cost-side passes
//! (RA007) work on the data DAG and the schedule alone so the incremental
//! paths can re-run them without rebuilding the combined order.

use crate::diag::{CostCertificate, Diagnostic, LintCode, Severity, Site};
use crate::graph::CombinedOrder;
use crate::oracle::HbOracle;
use crate::{AnalysisConfig, AnalysisInput, ResidualContext};
use rescc_lang::{CommType, OpType};
use rescc_topology::{ChunkId, LinkParams};
use std::collections::HashMap;

/// RA001 — deadlock: a cycle in the combined order (DAG edges ∪ per-TB
/// serialization ∪ fusion cut-through gates). Every invocation needs both
/// its TBs at the rendezvous *and* its DAG predecessors complete; a cycle
/// therefore wedges the engine with the event heap drained.
///
/// `stuck` is the cycle-stuck set the oracle build reported (the `Err`
/// value of [`HbOracle::build`]); the pass walks inside it to print one
/// concrete cycle and records it as the diagnostic's counterexample path.
pub fn ra001_deadlock(
    input: &AnalysisInput,
    order: &CombinedOrder,
    stuck: &[u32],
    out: &mut Vec<Diagnostic>,
) {
    if stuck.is_empty() {
        return;
    }
    // Walk inside the stuck set to print one concrete cycle.
    let cycle = find_cycle(order, stuck);
    let path = cycle
        .iter()
        .map(|t| format!("t{t}"))
        .collect::<Vec<_>>()
        .join(" -> ");
    let first = cycle.first().copied().unwrap_or(stuck[0]);
    let (rank, tb) = order.send_tb[first as usize]
        .or(order.recv_tb[first as usize])
        .map(|(r, tb)| (Some(r), Some(tb)))
        .unwrap_or((None, None));
    out.push(Diagnostic {
        code: LintCode::RA001,
        severity: Severity::Error,
        message: format!(
            "deadlock: {} task(s) wait on each other across DAG dependencies and \
             TB slot order; cycle {path} -> t{first}",
            stuck.len()
        ),
        site: Site {
            task: Some(first),
            rank,
            tb,
            step: Some(input.dag.task(rescc_ir::TaskId::new(first)).step.0),
            ..Site::default()
        },
        path: cycle,
    });
}

/// Find one cycle within `stuck` (every member has a successor in the
/// set, so a walk must revisit a node).
fn find_cycle(order: &CombinedOrder, stuck: &[u32]) -> Vec<u32> {
    let in_stuck: Vec<bool> = {
        let mut v = vec![false; order.len()];
        for &t in stuck {
            v[t as usize] = true;
        }
        v
    };
    let mut pos: HashMap<u32, usize> = HashMap::new();
    let mut path: Vec<u32> = Vec::new();
    let mut cur = stuck[0];
    loop {
        if let Some(&at) = pos.get(&cur) {
            return path[at..].to_vec();
        }
        pos.insert(cur, path.len());
        path.push(cur);
        let next = order
            .succs(cur)
            .iter()
            .copied()
            .find(|&s| in_stuck[s as usize]);
        match next {
            Some(n) => cur = n,
            // Unreachable for a true cycle set; bail deterministically.
            None => return path,
        }
    }
}

/// RA002 — buffer race: two deliveries into one `(rank, chunk)` slot with
/// no happens-before path between them in the combined order, where at
/// least one is a plain copy (`recv`). Two unordered reductions commute;
/// an unordered copy does not — the slot's final value depends on arrival
/// order. The front-end verifier only rejects same-*step* copy pairs; TB
/// allocation and fusion can leave *cross-step* writes unordered too, and
/// those are invisible at spec level.
///
/// Reachability queries go through the shared [`HbOracle`]. Reachability
/// is transitive, so the group of same-slot writers is ordered by topo
/// position and *consecutive* pairs are queried once; any wider pair is
/// ordered iff no unordered gap lies between them (`gaps` prefix count).
/// Racing pairs additionally record their divergence point (the latest
/// common ancestor) as the counterexample path `[divergence, a, b]`.
pub fn ra002_buffer_race(
    input: &AnalysisInput,
    order: &CombinedOrder,
    oracle: &mut HbOracle,
    out: &mut Vec<Diagnostic>,
) {
    // Writers per (dst rank, chunk) slot.
    let mut writers: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for t in input.dag.tasks() {
        writers
            .entry((t.dst.0, t.chunk.0))
            .or_default()
            .push(t.id.0);
    }
    let mut keys: Vec<(u32, u32)> = writers.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let group = &writers[&key];
        if group.len() < 2 {
            continue;
        }
        let mut sorted: Vec<u32> = group.clone();
        sorted.sort_unstable_by_key(|&t| oracle.pos(t));
        let mut gaps: Vec<u32> = vec![0; sorted.len()];
        for i in 1..sorted.len() {
            let linked = oracle.reaches(order, sorted[i - 1], sorted[i]);
            gaps[i] = gaps[i - 1] + u32::from(!linked);
        }
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let ca = input.dag.task(rescc_ir::TaskId::new(a)).comm;
                let cb = input.dag.task(rescc_ir::TaskId::new(b)).comm;
                if ca != CommType::Recv && cb != CommType::Recv {
                    continue; // rrc + rrc commutes
                }
                let (first, second) = if oracle.pos(a) < oracle.pos(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                let ia = sorted.iter().position(|&t| t == first).unwrap();
                let ib = sorted.iter().position(|&t| t == second).unwrap();
                let ordered = gaps[ia] == gaps[ib] || oracle.reaches(order, first, second);
                if !ordered {
                    let (rank, chunk) = key;
                    let tb = input.dag.task(rescc_ir::TaskId::new(b));
                    let mut path = Vec::new();
                    if let Some(d) = oracle.divergence(order, a, b) {
                        path.push(d);
                    }
                    path.push(a);
                    path.push(b);
                    out.push(Diagnostic {
                        code: LintCode::RA002,
                        severity: Severity::Error,
                        message: format!(
                            "buffer race: tasks t{a} and t{b} both write rank r{rank} \
                             chunk c{chunk} with no ordering between them (at least \
                             one is a plain copy — the final value depends on arrival \
                             order)"
                        ),
                        site: Site {
                            task: Some(b),
                            rank: Some(rank),
                            chunk: Some(chunk),
                            step: Some(tb.step.0),
                            ..Site::default()
                        },
                        path,
                    });
                }
            }
        }
    }
}

/// RA003 — over-subscription: (a) a conflict resource carries more
/// concurrent tasks inside one sub-pipeline than its saturation limit
/// (the Eq. 1 contention constraint the scheduler must respect), and
/// (b) a rank launches more TBs than the configured per-rank budget
/// (the Eq. 7 resource frame). (a) is an error — the sim will serialize
/// the excess into pipeline bubbles; (b) is a warning — correct, but the
/// kernel competes with compute kernels for SMs.
pub fn ra003_oversubscription(
    input: &AnalysisInput,
    config: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    let all: Vec<u32> = (0..input.schedule.sub_pipelines.len() as u32).collect();
    ra003_sub_pipeline_loads(input, &all, out);

    for (rank, plan) in input.alloc.per_rank.iter().enumerate() {
        let n_tbs = plan.tbs.len() as u32;
        if n_tbs > config.tb_budget_per_rank {
            out.push(Diagnostic {
                code: LintCode::RA003,
                severity: Severity::Warn,
                message: format!(
                    "TB budget: rank r{rank} launches {n_tbs} TBs, above the \
                     per-rank budget of {} (Eq. 7) — communication TBs crowd out \
                     compute kernels",
                    config.tb_budget_per_rank
                ),
                site: Site {
                    rank: Some(rank as u32),
                    ..Site::default()
                },
                path: Vec::new(),
            });
        }
    }
}

/// RA003 part (a) — the per-sub-pipeline contention-load check — restricted
/// to the listed sub-pipelines. The incremental re-analysis path uses this
/// to re-lint only the sub-pipelines whose conflict sets a reroute touched.
pub fn ra003_sub_pipeline_loads(
    input: &AnalysisInput,
    sub_pipelines: &[u32],
    out: &mut Vec<Diagnostic>,
) {
    for &sp_idx in sub_pipelines {
        let sp = &input.schedule.sub_pipelines[sp_idx as usize];
        let mut load: HashMap<u32, (u32, u32)> = HashMap::new(); // res -> (load, first offender)
        for &t in sp {
            for r in input.dag.task(t).conflict.iter() {
                let e = load.entry(r.0).or_insert((0, t.0));
                e.0 += 1;
                e.1 = t.0; // remember the latest task to push it over
            }
        }
        let mut entries: Vec<(u32, (u32, u32))> = load.into_iter().collect();
        entries.sort_unstable();
        for (res, (load, task)) in entries {
            let limit = input
                .dag
                .conflict_limit(rescc_topology::ResourceId::new(res));
            if load > limit {
                out.push(Diagnostic {
                    code: LintCode::RA003,
                    severity: Severity::Error,
                    message: format!(
                        "over-subscription: sub-pipeline {sp_idx} drives resource \
                         res{res} with {load} concurrent tasks, above its saturation \
                         limit {limit} — the excess serializes into pipeline bubbles"
                    ),
                    site: Site {
                        task: Some(task),
                        resource: Some(res),
                        sub_pipeline: Some(sp_idx),
                        ..Site::default()
                    },
                    path: Vec::new(),
                });
            }
        }
    }
}

/// RA004 — dead transfer: replay each chunk's transfers with provenance
/// tracking (which tasks flowed into each slot's current value, with the
/// verifier's step semantics: reads observe the pre-step state, writes
/// commit per step). A task whose contribution reaches no slot the
/// operator's postcondition reads — e.g. it was overwritten before anyone
/// forwarded it — moves bytes for nothing.
pub fn ra004_dead_transfer(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    let n_ranks = input.spec.n_ranks() as usize;
    let n_tasks = input.dag.len();
    // Provenance bits are indexed *within* the chunk: every task writes
    // exactly one chunk's slots, so bitsets sized to the chunk (not the
    // whole DAG) carry the same information at a fraction of the footprint.
    let mut local: Vec<u32> = vec![u32::MAX; n_tasks];

    for chunk in 0..input.dag.n_chunks() {
        let chunk_tasks = input.dag.chunk_tasks(ChunkId::new(chunk));
        if chunk_tasks.is_empty() {
            continue;
        }
        for (li, &t) in chunk_tasks.iter().enumerate() {
            local[t.index()] = li as u32;
        }
        let words = chunk_tasks.len().div_ceil(64);
        // prov[rank] = bitset of chunk tasks contributing to the slot's
        // value, flattened to one allocation.
        let mut prov: Vec<u64> = vec![0u64; n_ranks * words];

        let mut i = 0;
        while i < chunk_tasks.len() {
            let step = input.dag.task(chunk_tasks[i]).step;
            let mut j = i;
            while j < chunk_tasks.len() && input.dag.task(chunk_tasks[j]).step == step {
                j += 1;
            }
            let group = &chunk_tasks[i..j];
            // Reads observe the pre-step state.
            let reads: Vec<Vec<u64>> = group
                .iter()
                .map(|&t| {
                    let r = input.dag.task(t).src.index();
                    prov[r * words..(r + 1) * words].to_vec()
                })
                .collect();
            for (&t, read) in group.iter().zip(&reads) {
                let task = input.dag.task(t);
                let d = task.dst.index();
                let slot = &mut prov[d * words..(d + 1) * words];
                match task.comm {
                    CommType::Recv => slot.copy_from_slice(read),
                    CommType::Rrc => {
                        for (a, b) in slot.iter_mut().zip(read) {
                            *a |= b;
                        }
                    }
                }
                let li = local[t.index()] as usize;
                slot[li / 64] |= 1u64 << (li % 64);
            }
            i = j;
        }

        // Union the provenance of every slot the postcondition reads.
        let mut useful = vec![0u64; words];
        for r in 0..n_ranks {
            let required = match input.spec.op() {
                OpType::AllGather | OpType::AllReduce => true,
                OpType::ReduceScatter => r as u32 == chunk,
            };
            if required {
                for (u, s) in useful.iter_mut().zip(&prov[r * words..(r + 1) * words]) {
                    *u |= s;
                }
            }
        }

        for &t in chunk_tasks {
            let li = local[t.index()] as usize;
            if useful[li / 64] & (1u64 << (li % 64)) == 0 {
                let task = input.dag.task(t);
                out.push(Diagnostic {
                    code: LintCode::RA004,
                    severity: Severity::Warn,
                    message: format!(
                        "dead transfer: task t{} ({} -> {} chunk c{chunk}) never \
                         contributes to the operator's postcondition — its delivery \
                         is overwritten before any required slot reads it",
                        t.0, task.src, task.dst
                    ),
                    site: Site {
                        task: Some(t.0),
                        rank: Some(task.dst.0),
                        step: Some(task.step.0),
                        chunk: Some(chunk),
                        ..Site::default()
                    },
                    path: Vec::new(),
                });
            }
        }

        for &t in chunk_tasks {
            local[t.index()] = u32::MAX;
        }
    }
}

/// RA005 — degraded-plan soundness: no task may traverse a resource the
/// topology's health overlay masks dead. The router relays around dead
/// NVLink channels and fails over dead NIC directions, but falls back to
/// the dead resource when no healthy alternative exists — a plan carrying
/// such a task fails at runtime on its first transfer.
pub fn ra005_degraded_soundness(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    let health = input.topo.health();
    if health.is_empty() {
        return;
    }
    for t in input.dag.tasks() {
        // `path` is a superset of `conflict`; check both defensively.
        let hit = t
            .path
            .iter()
            .chain(t.conflict.iter())
            .find(|&r| health.is_dead(r));
        if let Some(res) = hit {
            out.push(Diagnostic {
                code: LintCode::RA005,
                severity: Severity::Error,
                message: format!(
                    "degraded-plan soundness: task t{} ({} -> {}) is routed over \
                     resource res{} which the health overlay masks dead — the \
                     first transfer on it fails",
                    t.id.0, t.src, t.dst, res.0
                ),
                site: Site {
                    task: Some(t.id.0),
                    rank: Some(t.src.0),
                    step: Some(t.step.0),
                    resource: Some(res.0),
                    ..Site::default()
                },
                path: Vec::new(),
            });
        }
    }
}

/// RA006 — cross-micro-batch buffer-lifetime overlap.
///
/// A `(rank, chunk)` slot's value lives from the write that produced it
/// until its last reader. The slot-major engine reuses the same device
/// slot for every micro-batch, so when a *later* write into the slot is
/// not ordered after every reader of the *previous* write, micro-batch
/// pipelining can land the overwrite while a reader is still forwarding
/// the old value. RA002 cannot see this class: the two writes themselves
/// may be perfectly ordered (WAW edge) — it is the write→read→write
/// triangle that is broken.
///
/// For each slot the writers are ordered by topo position; for each
/// consecutive writer pair `(w1, w2)` every reader `r` of the slot with
/// `w1 ⊑ r` must satisfy `r ⊑ w2` or `w2 ⊑ r`. Violations are errors
/// with counterexample path `[w1, r, w2]`.
///
/// Same-chunk positive queries are resolved against a per-chunk
/// transitive closure over the chunk-local DAG edges (chunk data flow is
/// intra-chunk, so this is the hot path); everything else falls back to
/// the shared oracle.
pub fn ra006_lifetime_overlap(
    input: &AnalysisInput,
    order: &CombinedOrder,
    oracle: &mut HbOracle,
    out: &mut Vec<Diagnostic>,
) {
    let n_tasks = input.dag.len();
    let mut local: Vec<u32> = vec![u32::MAX; n_tasks];
    for chunk in 0..input.dag.n_chunks() {
        let chunk_tasks = input.dag.chunk_tasks(ChunkId::new(chunk));
        if chunk_tasks.len() < 2 {
            continue;
        }
        for (li, &t) in chunk_tasks.iter().enumerate() {
            local[t.index()] = li as u32;
        }
        let n = chunk_tasks.len();
        let words = n.div_ceil(64);
        // Chunk-local transitive closure over DAG edges, positive-only:
        // rows are filled in reverse list order so a row unions its
        // successors' completed rows. Edges that point backward in list
        // order (impossible for chunk-internal data edges, which follow
        // ascending steps) are skipped, keeping every set bit a true
        // "reaches" fact.
        let mut closure: Vec<u64> = vec![0u64; n * words];
        for (li, &t) in chunk_tasks.iter().enumerate().rev() {
            for &s in input.dag.succs(t) {
                let ls = local[s.index()];
                if ls == u32::MAX {
                    continue; // cross-chunk successor
                }
                let ls = ls as usize;
                if ls <= li {
                    continue;
                }
                let (head, tail) = closure.split_at_mut(ls * words);
                let row = &mut head[li * words..(li + 1) * words];
                for (a, b) in row.iter_mut().zip(&tail[..words]) {
                    *a |= b;
                }
                row[ls / 64] |= 1u64 << (ls % 64);
            }
        }
        let chunk_reaches = |closure: &[u64], a: u32, b: u32| -> bool {
            let la = local[a as usize] as usize;
            let lb = local[b as usize] as usize;
            closure[la * words + lb / 64] >> (lb % 64) & 1 == 1
        };

        // Writers (by dst) and readers (by src) per rank, within the chunk.
        let mut writers: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut readers: HashMap<u32, Vec<u32>> = HashMap::new();
        for &t in chunk_tasks {
            let task = input.dag.task(t);
            writers.entry(task.dst.0).or_default().push(t.0);
            readers.entry(task.src.0).or_default().push(t.0);
        }
        let mut ranks: Vec<u32> = writers.keys().copied().collect();
        ranks.sort_unstable();
        for rank in ranks {
            let ws = &writers[&rank];
            if ws.len() < 2 {
                continue;
            }
            let rs = match readers.get(&rank) {
                Some(rs) => rs,
                None => continue,
            };
            let mut sorted = ws.clone();
            sorted.sort_unstable_by_key(|&t| oracle.pos(t));
            for win in sorted.windows(2) {
                let (w1, w2) = (win[0], win[1]);
                for &r in rs {
                    if r == w1 || r == w2 {
                        continue;
                    }
                    // Reader of w1's lifetime?
                    if !(chunk_reaches(&closure, w1, r) || oracle.reaches(order, w1, r)) {
                        continue;
                    }
                    // Safe iff the reuse is ordered with the reader
                    // (either direction: after the read, or the reader
                    // observes the new value deterministically).
                    if chunk_reaches(&closure, r, w2)
                        || chunk_reaches(&closure, w2, r)
                        || oracle.reaches(order, r, w2)
                        || oracle.reaches(order, w2, r)
                    {
                        continue;
                    }
                    let task = input.dag.task(rescc_ir::TaskId::new(w2));
                    out.push(Diagnostic {
                        code: LintCode::RA006,
                        severity: Severity::Error,
                        message: format!(
                            "buffer lifetime overlap: task t{w2} reuses rank r{rank} \
                             chunk c{chunk} while t{r}, a reader of the previous \
                             write t{w1}, is unordered with the reuse — micro-batch \
                             pipelining can overwrite the slot mid-read"
                        ),
                        site: Site {
                            task: Some(w2),
                            rank: Some(rank),
                            chunk: Some(chunk),
                            step: Some(task.step.0),
                            ..Site::default()
                        },
                        path: vec![w1, r, w2],
                    });
                }
            }
        }

        for &t in chunk_tasks {
            local[t.index()] = u32::MAX;
        }
    }
}

/// RA007 — static bandwidth/latency feasibility under the α–β–γ model,
/// plus the makespan lower-bound certificate.
///
/// The certificate is `max(critical-path α-chain, per-link bytes·β)`:
///
/// * **α-chain** — longest-path DP over the data DAG where each task
///   costs its startup α (the maximum α over its conflict resources, the
///   same rule the engine applies) and fused cut-through forwards cost
///   zero (they start when their feeder starts and pay no α). Every
///   completion-gated edge forces `start(succ) ≥ start(pred) + α(pred)`,
///   so no run finishes before the heaviest chain.
/// * **per-link drain** — every task moves its chunk's bytes through
///   every resource on its route, and a link moves at most `1/β` bytes
///   per ns regardless of concurrency, so
///   `n_tasks(link) · chunk_bytes · β` lower-bounds the makespan. The
///   certificate records the bottleneck link (the argmax).
///
/// The feasibility *error* fires when a sub-pipeline window demands bytes
/// through a resource whose deliverable bandwidth is **zero** under the
/// configured α–β–γ parameters: the windowed demand then exceeds the
/// link's capacity over every window duration, so the window can never
/// drain and the makespan floor is infinite. *Finite* over-demand is
/// deliberately not an error in this model — the engine fair-shares a
/// capacity port's line rate and prices conflict-link oversubscription
/// with the γ·L(z) penalty, and seed algorithms lean on exactly that
/// (the hierarchical one-shot intra phase drives every peer TB through
/// the GPU port at once). Conflict-resource saturation is RA003's
/// domain and the boolean dead-resource mask is RA005's; RA007 catches
/// the parameter-level collapse (a brownout overlay or misconfigured
/// fabric that zeroes a link's rate) that neither sees.
pub fn ra007_cost_feasibility(input: &AnalysisInput, out: &mut Vec<Diagnostic>) -> CostCertificate {
    let n = input.dag.len();

    // Fused marks + feeder edges from the lowered program (the engine
    // derives its cut-through gates from the same slots).
    let mut fused = vec![false; n];
    let mut feeder: Vec<u32> = vec![u32::MAX; n];
    for rp in &input.program.ranks {
        for tb in &rp.tbs {
            let mut prev: Option<rescc_ir::TaskId> = None;
            for slot in &tb.slots {
                if slot.fused_with_prev {
                    fused[slot.task.index()] = true;
                    if let Some(p) = prev {
                        if p != slot.task {
                            feeder[slot.task.index()] = p.0;
                        }
                    }
                }
                prev = Some(slot.task);
            }
        }
    }

    // Per-task startup α: the engine charges the max α over the task's
    // conflict resources, and zero for fused forwards.
    let alpha_of = |t: u32| -> f64 {
        if fused[t as usize] {
            return 0.0;
        }
        let mut a = 0.0f64;
        for &d in input
            .dag
            .conflict_dense(rescc_ir::TaskId::new(t))
            .as_slice()
        {
            a = a.max(input.dag.resource_params_at(d).alpha_ns);
        }
        a
    };

    // Longest α-chain over the data DAG (acyclic by construction; fall
    // back to zero defensively if not).
    let mut alpha_chain_ns = 0.0f64;
    if let Ok(topo_order) = input.dag.topo_order() {
        let mut es = vec![0.0f64; n];
        for &tid in &topo_order {
            let t = tid.0;
            let a_t = alpha_of(t);
            for &p in input.dag.preds(tid) {
                let w = if feeder[t as usize] == p.0 {
                    0.0 // fused follower starts when its feeder starts
                } else {
                    alpha_of(p.0)
                };
                es[t as usize] = es[t as usize].max(es[p.index()] + w);
            }
            alpha_chain_ns = alpha_chain_ns.max(es[t as usize] + a_t);
        }
    }

    // Route-resource occupancy (raw ids; `path` includes capacity
    // resources the dense conflict index never sees).
    let n_res = input.topo.n_resources() as usize;
    let mut params_cache: Vec<Option<LinkParams>> = vec![None; n_res];
    let mut params_of = |r: u32, input: &AnalysisInput| -> LinkParams {
        if let Some(p) = params_cache[r as usize] {
            return p;
        }
        let p = input
            .topo
            .resource_params(rescc_topology::ResourceId::new(r))
            .expect("task routed over a resource of this topology");
        params_cache[r as usize] = Some(p);
        p
    };
    let mut route_tasks: Vec<u32> = vec![0; n_res];
    for t in input.dag.tasks() {
        for r in t.path.iter() {
            route_tasks[r.index()] += 1;
        }
    }
    // Zero-rate resources (infinite β) are excluded: the certificate
    // stays finite and reports the tightest *deliverable* link floor,
    // while the infeasibility itself is RA007's error below.
    let mut bottleneck = (0u32, 0u32, 0.0f64); // (resource, tasks, beta)
    let mut best_floor = -1.0f64;
    for (r, &count) in route_tasks.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let p = params_of(r as u32, input);
        let floor = count as f64 * p.beta_ns_per_byte;
        if floor.is_finite() && floor > best_floor {
            best_floor = floor;
            bottleneck = (r as u32, count, p.beta_ns_per_byte);
        }
    }

    // Windowed demand vs deliverable capacity, per sub-pipeline window.
    // A resource delivers min(tb_bw, 1/β) to its first TB; when that is
    // zero the window's demand exceeds the link's capacity for every
    // window length — the bytes can never drain.
    let mut window: HashMap<u32, (u32, u32)> = HashMap::new(); // res -> (tasks, first offender)
    for (sp_idx, sp) in input.schedule.sub_pipelines.iter().enumerate() {
        window.clear();
        for &tid in sp {
            let task = input.dag.task(tid);
            for r in task.path.iter() {
                let p = params_of(r.0, input);
                if p.tb_bw_bytes_per_ns <= 0.0 || p.bandwidth() <= 0.0 {
                    window.entry(r.0).or_insert((0, tid.0)).0 += 1;
                }
            }
        }
        let mut entries: Vec<(u32, (u32, u32))> = window.drain().collect();
        entries.sort_unstable();
        for (r, (n_tasks, task)) in entries {
            out.push(Diagnostic {
                code: LintCode::RA007,
                severity: Severity::Error,
                message: format!(
                    "cost infeasibility: sub-pipeline {sp_idx} demands \
                     {n_tasks} transfer(s) through resource res{r} whose \
                     deliverable bandwidth is zero under the \u{3b1}\u{2013}\
                     \u{3b2}\u{2013}\u{3b3} parameters — windowed demand \
                     exceeds link capacity at every window length, the bytes \
                     never drain (Eq. 1)"
                ),
                site: Site {
                    task: Some(task),
                    resource: Some(r),
                    sub_pipeline: Some(sp_idx as u32),
                    ..Site::default()
                },
                path: Vec::new(),
            });
        }
    }

    CostCertificate {
        alpha_chain_ns,
        bottleneck_resource: bottleneck.0,
        bottleneck_tasks: bottleneck.1,
        bottleneck_beta_ns_per_byte: bottleneck.2,
    }
}

/// RA008 — frontier-aware residual provenance.
///
/// RA004's replay assumes every chunk's history starts from the spec's
/// precondition, which is false for a residual plan: the completed prefix
/// already moved data. Replaying the *original* pattern — completed tasks
/// first, in per-chunk step order (exactly the resume-state replay the
/// residual compiler performs), then the surviving tasks under RA004's
/// step-group semantics — recovers full dead-transfer coverage: a
/// surviving task whose contribution reaches no required slot moves bytes
/// for nothing in the resumed run.
pub fn ra008_residual_dead_transfer(
    input: &AnalysisInput,
    ctx: &ResidualContext,
    out: &mut Vec<Diagnostic>,
) {
    let n_ranks = input.spec.n_ranks() as usize;
    let orig = ctx.orig_dag;
    debug_assert_eq!(ctx.completed.len(), orig.len());
    // Map original → residual id to anchor diagnostics on the plan under
    // analysis.
    let mut residual_of: Vec<u32> = vec![u32::MAX; orig.len()];
    for (ri, &oid) in ctx.orig_ids.iter().enumerate() {
        residual_of[oid.index()] = ri as u32;
    }

    let mut local: Vec<u32> = vec![u32::MAX; orig.len()];
    for chunk in 0..orig.n_chunks() {
        let chunk_tasks = orig.chunk_tasks(ChunkId::new(chunk));
        if chunk_tasks.is_empty() {
            continue;
        }
        for (li, &t) in chunk_tasks.iter().enumerate() {
            local[t.index()] = li as u32;
        }
        let words = chunk_tasks.len().div_ceil(64);
        let mut prov: Vec<u64> = vec![0u64; n_ranks * words];

        // Phase 1 — the fault frontier: completed tasks applied
        // sequentially in per-chunk order, mirroring the resume-state
        // replay (`ReplayOp`) the residual compiler hands the engine.
        for &t in chunk_tasks {
            if !ctx.completed[t.index()] {
                continue;
            }
            let task = orig.task(t);
            let read = prov[task.src.index() * words..(task.src.index() + 1) * words].to_vec();
            let d = task.dst.index();
            let slot = &mut prov[d * words..(d + 1) * words];
            match task.comm {
                CommType::Recv => slot.copy_from_slice(&read),
                CommType::Rrc => {
                    for (a, b) in slot.iter_mut().zip(&read) {
                        *a |= b;
                    }
                }
            }
            let li = local[t.index()] as usize;
            slot[li / 64] |= 1u64 << (li % 64);
        }

        // Phase 2 — the surviving tasks, with RA004's step semantics
        // (reads observe the pre-step state).
        let mut i = 0;
        while i < chunk_tasks.len() {
            let step = orig.task(chunk_tasks[i]).step;
            let mut j = i;
            while j < chunk_tasks.len() && orig.task(chunk_tasks[j]).step == step {
                j += 1;
            }
            let group: Vec<rescc_ir::TaskId> = chunk_tasks[i..j]
                .iter()
                .copied()
                .filter(|t| !ctx.completed[t.index()])
                .collect();
            let reads: Vec<Vec<u64>> = group
                .iter()
                .map(|&t| {
                    let r = orig.task(t).src.index();
                    prov[r * words..(r + 1) * words].to_vec()
                })
                .collect();
            for (&t, read) in group.iter().zip(&reads) {
                let task = orig.task(t);
                let d = task.dst.index();
                let slot = &mut prov[d * words..(d + 1) * words];
                match task.comm {
                    CommType::Recv => slot.copy_from_slice(read),
                    CommType::Rrc => {
                        for (a, b) in slot.iter_mut().zip(read) {
                            *a |= b;
                        }
                    }
                }
                let li = local[t.index()] as usize;
                slot[li / 64] |= 1u64 << (li % 64);
            }
            i = j;
        }

        let mut useful = vec![0u64; words];
        for r in 0..n_ranks {
            let required = match input.spec.op() {
                OpType::AllGather | OpType::AllReduce => true,
                OpType::ReduceScatter => r as u32 == chunk,
            };
            if required {
                for (u, s) in useful.iter_mut().zip(&prov[r * words..(r + 1) * words]) {
                    *u |= s;
                }
            }
        }

        for &t in chunk_tasks {
            if ctx.completed[t.index()] {
                continue;
            }
            let li = local[t.index()] as usize;
            if useful[li / 64] & (1u64 << (li % 64)) == 0 {
                let task = orig.task(t);
                let rid = residual_of[t.index()];
                out.push(Diagnostic {
                    code: LintCode::RA008,
                    severity: Severity::Warn,
                    message: format!(
                        "dead transfer in residual: task t{rid} (original t{}, \
                         {} -> {} chunk c{chunk}) never contributes to the \
                         operator's postcondition once provenance is replayed from \
                         the fault frontier — the resumed run moves its bytes for \
                         nothing",
                        t.0, task.src, task.dst
                    ),
                    site: Site {
                        task: if rid == u32::MAX { None } else { Some(rid) },
                        rank: Some(task.dst.0),
                        step: Some(task.step.0),
                        chunk: Some(chunk),
                        ..Site::default()
                    },
                    path: Vec::new(),
                });
            }
        }

        for &t in chunk_tasks {
            local[t.index()] = u32::MAX;
        }
    }
}
