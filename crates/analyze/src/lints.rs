//! The lint passes RA001–RA005.

use crate::diag::{Diagnostic, LintCode, Severity, Site};
use crate::graph::CombinedOrder;
use crate::{AnalysisConfig, AnalysisInput};
use rescc_lang::{CommType, OpType};
use rescc_topology::ChunkId;
use std::collections::HashMap;

/// RA001 — deadlock: a cycle in the combined order (DAG edges ∪ per-TB
/// serialization ∪ fusion cut-through gates). Every invocation needs both
/// its TBs at the rendezvous *and* its DAG predecessors complete; a cycle
/// therefore wedges the engine with the event heap drained.
pub fn ra001_deadlock(input: &AnalysisInput, order: &CombinedOrder, out: &mut Vec<Diagnostic>) {
    let stuck = match order.topo_or_cycle() {
        Ok(_) => return,
        Err(stuck) => stuck,
    };
    // Walk inside the stuck set to print one concrete cycle.
    let cycle = find_cycle(order, &stuck);
    let path = cycle
        .iter()
        .map(|t| format!("t{t}"))
        .collect::<Vec<_>>()
        .join(" -> ");
    let first = cycle.first().copied().unwrap_or(stuck[0]);
    let (rank, tb) = order.send_tb[first as usize]
        .or(order.recv_tb[first as usize])
        .map(|(r, tb)| (Some(r), Some(tb)))
        .unwrap_or((None, None));
    out.push(Diagnostic {
        code: LintCode::RA001,
        severity: Severity::Error,
        message: format!(
            "deadlock: {} task(s) wait on each other across DAG dependencies and \
             TB slot order; cycle {path} -> t{first}",
            stuck.len()
        ),
        site: Site {
            task: Some(first),
            rank,
            tb,
            step: Some(input.dag.task(rescc_ir::TaskId::new(first)).step.0),
            ..Site::default()
        },
    });
}

/// Find one cycle within `stuck` (every member has a successor in the
/// set, so a walk must revisit a node).
fn find_cycle(order: &CombinedOrder, stuck: &[u32]) -> Vec<u32> {
    let in_stuck: Vec<bool> = {
        let mut v = vec![false; order.len()];
        for &t in stuck {
            v[t as usize] = true;
        }
        v
    };
    let mut pos: HashMap<u32, usize> = HashMap::new();
    let mut path: Vec<u32> = Vec::new();
    let mut cur = stuck[0];
    loop {
        if let Some(&at) = pos.get(&cur) {
            return path[at..].to_vec();
        }
        pos.insert(cur, path.len());
        path.push(cur);
        let next = order.succs[cur as usize]
            .iter()
            .copied()
            .find(|&s| in_stuck[s as usize]);
        match next {
            Some(n) => cur = n,
            // Unreachable for a true cycle set; bail deterministically.
            None => return path,
        }
    }
}

/// RA002 — buffer race: two deliveries into one `(rank, chunk)` slot with
/// no happens-before path between them in the combined order, where at
/// least one is a plain copy (`recv`). Two unordered reductions commute;
/// an unordered copy does not — the slot's final value depends on arrival
/// order. The front-end verifier only rejects same-*step* copy pairs; TB
/// allocation and fusion can leave *cross-step* writes unordered too, and
/// those are invisible at spec level.
///
/// `topo` is a valid topological order of `order` (the Ok value of
/// [`CombinedOrder::topo_or_cycle`], which the caller has already computed
/// for RA001). Every edge goes forward in it, so for any writer pair only
/// the earlier-positioned task can possibly reach the later one — one
/// pruned DFS per pair instead of a full reachability bitmap per writer.
/// Same-slot writers carry WAW dependency edges, so the common case hits
/// the target in the first adjacency scan.
pub fn ra002_buffer_race(
    input: &AnalysisInput,
    order: &CombinedOrder,
    topo: &[u32],
    out: &mut Vec<Diagnostic>,
) {
    // Writers per (dst rank, chunk) slot.
    let mut writers: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for t in input.dag.tasks() {
        writers
            .entry((t.dst.0, t.chunk.0))
            .or_default()
            .push(t.id.0);
    }
    let mut keys: Vec<(u32, u32)> = writers.keys().copied().collect();
    keys.sort_unstable();
    let mut pos: Vec<u32> = vec![0; order.len()];
    for (i, &t) in topo.iter().enumerate() {
        pos[t as usize] = i as u32;
    }
    let mut visited: Vec<u32> = vec![0; order.len()];
    let mut stamp: u32 = 0;
    let mut stack: Vec<u32> = Vec::new();
    for key in keys {
        let group = &writers[&key];
        if group.len() < 2 {
            continue;
        }
        // Reachability is transitive, so order the group by topo position
        // and check *consecutive* pairs once: in a clean plan consecutive
        // same-slot writers carry direct WAW edges, and any wider pair is
        // ordered iff no unordered gap lies between them (`gaps` prefix
        // count). Only pairs spanning a gap fall back to a full DFS.
        let mut sorted: Vec<u32> = group.clone();
        sorted.sort_unstable_by_key(|&t| pos[t as usize]);
        let mut gaps: Vec<u32> = vec![0; sorted.len()];
        for i in 1..sorted.len() {
            let linked = reaches(
                order,
                &pos,
                &mut visited,
                &mut stamp,
                &mut stack,
                sorted[i - 1],
                sorted[i],
            );
            gaps[i] = gaps[i - 1] + u32::from(!linked);
        }
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let ca = input.dag.task(rescc_ir::TaskId::new(a)).comm;
                let cb = input.dag.task(rescc_ir::TaskId::new(b)).comm;
                if ca != CommType::Recv && cb != CommType::Recv {
                    continue; // rrc + rrc commutes
                }
                let (first, second) = if pos[a as usize] < pos[b as usize] {
                    (a, b)
                } else {
                    (b, a)
                };
                let ia = sorted.iter().position(|&t| t == first).unwrap();
                let ib = sorted.iter().position(|&t| t == second).unwrap();
                let ordered = gaps[ia] == gaps[ib]
                    || reaches(
                        order,
                        &pos,
                        &mut visited,
                        &mut stamp,
                        &mut stack,
                        first,
                        second,
                    );
                if !ordered {
                    let (rank, chunk) = key;
                    let tb = input.dag.task(rescc_ir::TaskId::new(b));
                    out.push(Diagnostic {
                        code: LintCode::RA002,
                        severity: Severity::Error,
                        message: format!(
                            "buffer race: tasks t{a} and t{b} both write rank r{rank} \
                             chunk c{chunk} with no ordering between them (at least \
                             one is a plain copy — the final value depends on arrival \
                             order)"
                        ),
                        site: Site {
                            task: Some(b),
                            rank: Some(rank),
                            chunk: Some(chunk),
                            step: Some(tb.step.0),
                            ..Site::default()
                        },
                    });
                }
            }
        }
    }
}

/// Is there a path `from -> to` in the combined order? Prunes by topo
/// position: only nodes positioned strictly before `to` can lie on such a
/// path, so the search space is the interval between the two writers, not
/// the whole graph. `visited` is stamp-versioned so the buffers are reused
/// across queries without clearing.
fn reaches(
    order: &CombinedOrder,
    pos: &[u32],
    visited: &mut [u32],
    stamp: &mut u32,
    stack: &mut Vec<u32>,
    from: u32,
    to: u32,
) -> bool {
    if from == to {
        return true;
    }
    *stamp += 1;
    let limit = pos[to as usize];
    stack.clear();
    stack.push(from);
    visited[from as usize] = *stamp;
    while let Some(u) = stack.pop() {
        for &s in &order.succs[u as usize] {
            if s == to {
                return true;
            }
            if pos[s as usize] < limit && visited[s as usize] != *stamp {
                visited[s as usize] = *stamp;
                stack.push(s);
            }
        }
    }
    false
}

/// RA003 — over-subscription: (a) a conflict resource carries more
/// concurrent tasks inside one sub-pipeline than its saturation limit
/// (the Eq. 1 contention constraint the scheduler must respect), and
/// (b) a rank launches more TBs than the configured per-rank budget
/// (the Eq. 7 resource frame). (a) is an error — the sim will serialize
/// the excess into pipeline bubbles; (b) is a warning — correct, but the
/// kernel competes with compute kernels for SMs.
pub fn ra003_oversubscription(
    input: &AnalysisInput,
    config: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    let all: Vec<u32> = (0..input.schedule.sub_pipelines.len() as u32).collect();
    ra003_sub_pipeline_loads(input, &all, out);

    for (rank, plan) in input.alloc.per_rank.iter().enumerate() {
        let n_tbs = plan.tbs.len() as u32;
        if n_tbs > config.tb_budget_per_rank {
            out.push(Diagnostic {
                code: LintCode::RA003,
                severity: Severity::Warn,
                message: format!(
                    "TB budget: rank r{rank} launches {n_tbs} TBs, above the \
                     per-rank budget of {} (Eq. 7) — communication TBs crowd out \
                     compute kernels",
                    config.tb_budget_per_rank
                ),
                site: Site {
                    rank: Some(rank as u32),
                    ..Site::default()
                },
            });
        }
    }
}

/// RA003 part (a) — the per-sub-pipeline contention-load check — restricted
/// to the listed sub-pipelines. The incremental re-analysis path uses this
/// to re-lint only the sub-pipelines whose conflict sets a reroute touched.
pub fn ra003_sub_pipeline_loads(
    input: &AnalysisInput,
    sub_pipelines: &[u32],
    out: &mut Vec<Diagnostic>,
) {
    for &sp_idx in sub_pipelines {
        let sp = &input.schedule.sub_pipelines[sp_idx as usize];
        let mut load: HashMap<u32, (u32, u32)> = HashMap::new(); // res -> (load, first offender)
        for &t in sp {
            for r in input.dag.task(t).conflict.iter() {
                let e = load.entry(r.0).or_insert((0, t.0));
                e.0 += 1;
                e.1 = t.0; // remember the latest task to push it over
            }
        }
        let mut entries: Vec<(u32, (u32, u32))> = load.into_iter().collect();
        entries.sort_unstable();
        for (res, (load, task)) in entries {
            let limit = input
                .dag
                .conflict_limit(rescc_topology::ResourceId::new(res));
            if load > limit {
                out.push(Diagnostic {
                    code: LintCode::RA003,
                    severity: Severity::Error,
                    message: format!(
                        "over-subscription: sub-pipeline {sp_idx} drives resource \
                         res{res} with {load} concurrent tasks, above its saturation \
                         limit {limit} — the excess serializes into pipeline bubbles"
                    ),
                    site: Site {
                        task: Some(task),
                        resource: Some(res),
                        sub_pipeline: Some(sp_idx),
                        ..Site::default()
                    },
                });
            }
        }
    }
}

/// RA004 — dead transfer: replay each chunk's transfers with provenance
/// tracking (which tasks flowed into each slot's current value, with the
/// verifier's step semantics: reads observe the pre-step state, writes
/// commit per step). A task whose contribution reaches no slot the
/// operator's postcondition reads — e.g. it was overwritten before anyone
/// forwarded it — moves bytes for nothing.
pub fn ra004_dead_transfer(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    let n_ranks = input.spec.n_ranks() as usize;
    let n_tasks = input.dag.len();
    // Provenance bits are indexed *within* the chunk: every task writes
    // exactly one chunk's slots, so bitsets sized to the chunk (not the
    // whole DAG) carry the same information at a fraction of the footprint.
    let mut local: Vec<u32> = vec![u32::MAX; n_tasks];

    for chunk in 0..input.dag.n_chunks() {
        let chunk_tasks = input.dag.chunk_tasks(ChunkId::new(chunk));
        if chunk_tasks.is_empty() {
            continue;
        }
        for (li, &t) in chunk_tasks.iter().enumerate() {
            local[t.index()] = li as u32;
        }
        let words = chunk_tasks.len().div_ceil(64);
        // prov[rank] = bitset of chunk tasks contributing to the slot's
        // value, flattened to one allocation.
        let mut prov: Vec<u64> = vec![0u64; n_ranks * words];

        let mut i = 0;
        while i < chunk_tasks.len() {
            let step = input.dag.task(chunk_tasks[i]).step;
            let mut j = i;
            while j < chunk_tasks.len() && input.dag.task(chunk_tasks[j]).step == step {
                j += 1;
            }
            let group = &chunk_tasks[i..j];
            // Reads observe the pre-step state.
            let reads: Vec<Vec<u64>> = group
                .iter()
                .map(|&t| {
                    let r = input.dag.task(t).src.index();
                    prov[r * words..(r + 1) * words].to_vec()
                })
                .collect();
            for (&t, read) in group.iter().zip(&reads) {
                let task = input.dag.task(t);
                let d = task.dst.index();
                let slot = &mut prov[d * words..(d + 1) * words];
                match task.comm {
                    CommType::Recv => slot.copy_from_slice(read),
                    CommType::Rrc => {
                        for (a, b) in slot.iter_mut().zip(read) {
                            *a |= b;
                        }
                    }
                }
                let li = local[t.index()] as usize;
                slot[li / 64] |= 1u64 << (li % 64);
            }
            i = j;
        }

        // Union the provenance of every slot the postcondition reads.
        let mut useful = vec![0u64; words];
        for r in 0..n_ranks {
            let required = match input.spec.op() {
                OpType::AllGather | OpType::AllReduce => true,
                OpType::ReduceScatter => r as u32 == chunk,
            };
            if required {
                for (u, s) in useful.iter_mut().zip(&prov[r * words..(r + 1) * words]) {
                    *u |= s;
                }
            }
        }

        for &t in chunk_tasks {
            let li = local[t.index()] as usize;
            if useful[li / 64] & (1u64 << (li % 64)) == 0 {
                let task = input.dag.task(t);
                out.push(Diagnostic {
                    code: LintCode::RA004,
                    severity: Severity::Warn,
                    message: format!(
                        "dead transfer: task t{} ({} -> {} chunk c{chunk}) never \
                         contributes to the operator's postcondition — its delivery \
                         is overwritten before any required slot reads it",
                        t.0, task.src, task.dst
                    ),
                    site: Site {
                        task: Some(t.0),
                        rank: Some(task.dst.0),
                        step: Some(task.step.0),
                        chunk: Some(chunk),
                        ..Site::default()
                    },
                });
            }
        }

        for &t in chunk_tasks {
            local[t.index()] = u32::MAX;
        }
    }
}

/// RA005 — degraded-plan soundness: no task may traverse a resource the
/// topology's health overlay masks dead. The router relays around dead
/// NVLink channels and fails over dead NIC directions, but falls back to
/// the dead resource when no healthy alternative exists — a plan carrying
/// such a task fails at runtime on its first transfer.
pub fn ra005_degraded_soundness(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    let health = input.topo.health();
    if health.is_empty() {
        return;
    }
    for t in input.dag.tasks() {
        // `path` is a superset of `conflict`; check both defensively.
        let hit = t
            .path
            .iter()
            .chain(t.conflict.iter())
            .find(|&r| health.is_dead(r));
        if let Some(res) = hit {
            out.push(Diagnostic {
                code: LintCode::RA005,
                severity: Severity::Error,
                message: format!(
                    "degraded-plan soundness: task t{} ({} -> {}) is routed over \
                     resource res{} which the health overlay masks dead — the \
                     first transfer on it fails",
                    t.id.0, t.src, t.dst, res.0
                ),
                site: Site {
                    task: Some(t.id.0),
                    rank: Some(t.src.0),
                    step: Some(t.step.0),
                    resource: Some(res.0),
                    ..Site::default()
                },
            });
        }
    }
}
