//! Diagnostic types: stable lint codes, severities, span-like sites, and
//! the report container with human and machine (JSON) rendering.

use std::fmt;

/// How bad a finding is.
///
/// `Error` findings describe plans that will misbehave at runtime
/// (deadlock, corrupt data, route over a dead link); the compiler gate
/// refuses to emit them under deny semantics. `Warn`
/// findings describe waste (dead transfers, TB over-budget) that runs
/// correctly but squanders resources. `Info` is reserved for advisory
/// output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Correct but wasteful.
    Warn,
    /// Will misbehave at runtime.
    Error,
}

impl Severity {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable lint codes. Codes are append-only: a code's meaning never
/// changes once released, and retired codes are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Deadlock: a cycle in the combined order induced by DAG data edges,
    /// per-TB slot serialization, and fused-slot cut-through gates.
    RA001,
    /// Buffer race: two writes into one `(rank, chunk)` slot with no
    /// happens-before path between them, at least one a plain copy.
    RA002,
    /// Over-subscription: a conflict resource carries more concurrent
    /// tasks than its saturation limit inside one sub-pipeline, or a rank
    /// launches more TBs than the configured budget (Eq. 7).
    RA003,
    /// Dead transfer: a task whose delivered data never reaches any slot
    /// the operator's postcondition reads.
    RA004,
    /// Degraded-plan soundness: a task routed over a resource masked dead
    /// in the topology's health overlay.
    RA005,
    /// Buffer-lifetime overlap: a `(rank, chunk)` slot is rewritten while
    /// a reader of the previous write is still unordered with the reuse —
    /// across micro-batches the overwrite can land mid-read.
    RA006,
    /// Cost infeasibility: the schedule's windowed demand on a link
    /// exceeds its capacity under the α–β–γ model (the plan cannot meet
    /// its own makespan certificate).
    RA007,
    /// Residual dead transfer: a surviving task in a fault-frontier
    /// residual plan that never contributes to the postcondition once
    /// provenance is replayed from the frontier.
    RA008,
}

impl LintCode {
    /// The stable code string ("RA001", …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::RA001 => "RA001",
            LintCode::RA002 => "RA002",
            LintCode::RA003 => "RA003",
            LintCode::RA004 => "RA004",
            LintCode::RA005 => "RA005",
            LintCode::RA006 => "RA006",
            LintCode::RA007 => "RA007",
            LintCode::RA008 => "RA008",
        }
    }

    /// One-line summary of what the lint proves.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::RA001 => "deadlock cycle across DAG, TB serialization and fusion gates",
            LintCode::RA002 => "unordered writes race into one buffer slot",
            LintCode::RA003 => "resource over-subscription or TB budget exceeded",
            LintCode::RA004 => "transfer never contributes to the operator postcondition",
            LintCode::RA005 => "task routed over a resource masked dead",
            LintCode::RA006 => "slot reuse overlaps the previous write's read lifetime",
            LintCode::RA007 => "scheduled demand exceeds link capacity (alpha-beta-gamma)",
            LintCode::RA008 => "residual transfer dead after fault-frontier provenance replay",
        }
    }

    /// Every code, ascending.
    pub fn all() -> [LintCode; 8] {
        [
            LintCode::RA001,
            LintCode::RA002,
            LintCode::RA003,
            LintCode::RA004,
            LintCode::RA005,
            LintCode::RA006,
            LintCode::RA007,
            LintCode::RA008,
        ]
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Span-like location of a finding inside the compiled artifact stack.
/// Every field is optional; lints fill in whatever coordinates exist for
/// their finding (a deadlock names tasks, a budget overrun names a rank).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Offending task index in the DAG.
    pub task: Option<u32>,
    /// Rank the finding is anchored on.
    pub rank: Option<u32>,
    /// TB index within the rank's program.
    pub tb: Option<u32>,
    /// Algorithm step.
    pub step: Option<u32>,
    /// Sub-pipeline index in the schedule.
    pub sub_pipeline: Option<u32>,
    /// Contention resource id.
    pub resource: Option<u32>,
    /// Chunk id.
    pub chunk: Option<u32>,
}

impl Site {
    /// A site anchored on a task.
    pub fn task(task: u32) -> Self {
        Self {
            task: Some(task),
            ..Self::default()
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(t) = self.task {
            parts.push(format!("t{t}"));
        }
        if let Some(r) = self.rank {
            parts.push(format!("r{r}"));
        }
        if let Some(tb) = self.tb {
            parts.push(format!("tb{tb}"));
        }
        if let Some(s) = self.step {
            parts.push(format!("step {s}"));
        }
        if let Some(sp) = self.sub_pipeline {
            parts.push(format!("sp{sp}"));
        }
        if let Some(res) = self.resource {
            parts.push(format!("res{res}"));
        }
        if let Some(c) = self.chunk {
            parts.push(format!("c{c}"));
        }
        write!(f, "{}", parts.join(" "))
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Where in the artifact stack the finding lives.
    pub site: Site,
    /// Counterexample path: task indices witnessing the finding, in
    /// evidence order. For RA001 this is the deadlock cycle; for RA002
    /// `[divergence, writer_a, writer_b]` (divergence omitted when the
    /// writers share no ancestor); for RA006
    /// `[prior_write, reader, reuse]`. Empty when the lint has no path
    /// evidence. Rendered by `rescc-lint --explain` and the JSON schema's
    /// `path` key.
    pub path: Vec<u32>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        let site = self.site.to_string();
        if !site.is_empty() {
            write!(f, " at {site}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The α–β–γ makespan lower-bound certificate computed by lint RA007 and
/// carried on every clean plan's report.
///
/// The bound is `max(alpha_chain_ns, bottleneck drain)` where the drain
/// is `bottleneck_tasks · chunk_total_bytes · bottleneck_beta_ns_per_byte`:
/// no execution of the plan can finish faster than its critical startup
/// chain, nor faster than its most-loaded link can serially move the
/// bytes scheduled across it. The sim cross-check (bench harness,
/// communicator watchdog) treats a report that undercuts this bound as a
/// cost-model bug.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostCertificate {
    /// Critical-path startup cost, ns: the maximum over DAG paths of the
    /// summed α of non-fused tasks (fused cut-through forwards pay no α).
    pub alpha_chain_ns: f64,
    /// Raw resource id of the link with the largest serial drain floor.
    pub bottleneck_resource: u32,
    /// Number of tasks whose route crosses the bottleneck link.
    pub bottleneck_tasks: u32,
    /// The bottleneck link's β, ns per byte.
    pub bottleneck_beta_ns_per_byte: f64,
}

// All fields are finite by construction (α/β come from LinkParams, the
// chain is a finite sum), so equality is total in practice.
impl Eq for CostCertificate {}

impl CostCertificate {
    /// The certified makespan lower bound, ns, for a run moving
    /// `chunk_total_bytes` per (task, chunk) across all micro-batches.
    pub fn lower_bound_ns(&self, chunk_total_bytes: u64) -> f64 {
        let drain = self.bottleneck_tasks as f64
            * chunk_total_bytes as f64
            * self.bottleneck_beta_ns_per_byte;
        self.alpha_chain_ns.max(drain)
    }
}

/// The result of one analysis run: all findings, in a deterministic order
/// (sorted by code, then site, then message), plus the cost certificate
/// when RA007 ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
    certificate: Option<CostCertificate>,
}

impl AnalysisReport {
    /// Build a report, sorting the findings into the stable order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| (a.code, a.site, &a.message).cmp(&(b.code, b.site, &b.message)));
        Self {
            diagnostics,
            certificate: None,
        }
    }

    /// Attach the makespan certificate (builder style).
    pub fn with_certificate(mut self, certificate: CostCertificate) -> Self {
        self.certificate = Some(certificate);
        self
    }

    /// The makespan certificate, when RA007 ran.
    pub fn certificate(&self) -> Option<&CostCertificate> {
        self.certificate.as_ref()
    }

    /// All findings.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consume the report, returning the findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Number of `Error`-severity findings.
    pub fn n_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warn`-severity findings.
    pub fn n_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Does any finding have `Error` severity?
    pub fn has_errors(&self) -> bool {
        self.n_errors() > 0
    }

    /// Is the report empty (plan is clean)?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying a given code.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Render the report for humans, one finding per line.
    pub fn render_human(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.n_errors(),
            self.n_warnings()
        ));
        out
    }

    /// Render the report as stable JSON.
    ///
    /// The schema is part of the tool's interface (documented in
    /// DESIGN.md §12) and only ever grows:
    ///
    /// ```json
    /// {"diagnostics": [{"code": "RA001", "severity": "error",
    ///   "message": "...", "task": 0, "rank": 1, "tb": 0, "step": 2,
    ///   "sub_pipeline": 0, "resource": 5, "chunk": 3,
    ///   "path": [0, 4, 0]}],
    ///  "errors": 1, "warnings": 0,
    ///  "certificate": {"alpha_chain_ns": 32000,
    ///    "bottleneck_resource": 5, "bottleneck_tasks": 12,
    ///    "bottleneck_beta_ns_per_byte": 0.04}}
    /// ```
    ///
    /// Site fields are omitted when absent, `path` when empty, and
    /// `certificate` when RA007 did not run; `diagnostics` is sorted by
    /// (code, site, message). Two runs over the same plan emit
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"",
                d.code,
                d.severity,
                escape_json(&d.message)
            ));
            for (key, val) in [
                ("task", d.site.task),
                ("rank", d.site.rank),
                ("tb", d.site.tb),
                ("step", d.site.step),
                ("sub_pipeline", d.site.sub_pipeline),
                ("resource", d.site.resource),
                ("chunk", d.site.chunk),
            ] {
                if let Some(v) = val {
                    out.push_str(&format!(", \"{key}\": {v}"));
                }
            }
            if !d.path.is_empty() {
                out.push_str(", \"path\": [");
                for (j, t) in d.path.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&t.to_string());
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str(&format!(
            "], \"errors\": {}, \"warnings\": {}",
            self.n_errors(),
            self.n_warnings()
        ));
        if let Some(c) = &self.certificate {
            out.push_str(&format!(
                ", \"certificate\": {{\"alpha_chain_ns\": {}, \
                 \"bottleneck_resource\": {}, \"bottleneck_tasks\": {}, \
                 \"bottleneck_beta_ns_per_byte\": {}}}",
                c.alpha_chain_ns,
                c.bottleneck_resource,
                c.bottleneck_tasks,
                c.bottleneck_beta_ns_per_byte
            ));
        }
        out.push('}');
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_severities_have_stable_names() {
        for code in LintCode::all() {
            assert!(code.as_str().starts_with("RA"));
            assert!(!code.description().is_empty());
        }
        assert_eq!(Severity::Error.as_str(), "error");
        assert_eq!(Severity::Warn.as_str(), "warn");
        assert_eq!(Severity::Info.as_str(), "info");
        assert!(Severity::Error > Severity::Warn);
    }

    #[test]
    fn report_sorts_and_counts() {
        let report = AnalysisReport::new(vec![
            Diagnostic {
                code: LintCode::RA004,
                severity: Severity::Warn,
                message: "dead".into(),
                site: Site::task(3),
                path: Vec::new(),
            },
            Diagnostic {
                code: LintCode::RA001,
                severity: Severity::Error,
                message: "cycle".into(),
                site: Site::task(0),
                path: Vec::new(),
            },
        ]);
        assert_eq!(report.diagnostics()[0].code, LintCode::RA001);
        assert_eq!(report.n_errors(), 1);
        assert_eq!(report.n_warnings(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.with_code(LintCode::RA004).count(), 1);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let report = AnalysisReport::new(vec![Diagnostic {
            code: LintCode::RA002,
            severity: Severity::Error,
            message: "a \"race\"\non slot".into(),
            site: Site {
                task: Some(7),
                rank: Some(1),
                chunk: Some(2),
                ..Site::default()
            },
            path: Vec::new(),
        }]);
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"diagnostics\": [{\"code\": \"RA002\", \"severity\": \"error\", \
             \"message\": \"a \\\"race\\\"\\non slot\", \"task\": 7, \"rank\": 1, \
             \"chunk\": 2}], \"errors\": 1, \"warnings\": 0}"
        );
    }

    #[test]
    fn json_grows_path_and_certificate_append_only() {
        let report = AnalysisReport::new(vec![Diagnostic {
            code: LintCode::RA001,
            severity: Severity::Error,
            message: "cycle".into(),
            site: Site::task(0),
            path: vec![0, 4, 0],
        }])
        .with_certificate(CostCertificate {
            alpha_chain_ns: 32000.0,
            bottleneck_resource: 5,
            bottleneck_tasks: 12,
            bottleneck_beta_ns_per_byte: 0.04,
        });
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"diagnostics\": [{\"code\": \"RA001\", \"severity\": \"error\", \
             \"message\": \"cycle\", \"task\": 0, \"path\": [0, 4, 0]}], \
             \"errors\": 1, \"warnings\": 0, \
             \"certificate\": {\"alpha_chain_ns\": 32000, \
             \"bottleneck_resource\": 5, \"bottleneck_tasks\": 12, \
             \"bottleneck_beta_ns_per_byte\": 0.04}}"
        );
        assert_eq!(
            report.certificate().unwrap().lower_bound_ns(1000),
            32000.0_f64.max(12.0 * 1000.0 * 0.04)
        );
    }

    #[test]
    fn empty_report_renders_clean() {
        let report = AnalysisReport::default();
        assert!(report.is_clean());
        assert_eq!(report.render_human(), "clean: no diagnostics\n");
        assert_eq!(
            report.to_json(),
            "{\"diagnostics\": [], \"errors\": 0, \"warnings\": 0}"
        );
    }

    #[test]
    fn human_rendering_names_code_and_site() {
        let report = AnalysisReport::new(vec![Diagnostic {
            code: LintCode::RA005,
            severity: Severity::Error,
            message: "routed over dead link".into(),
            site: Site {
                task: Some(4),
                resource: Some(9),
                ..Site::default()
            },
            path: Vec::new(),
        }]);
        let text = report.render_human();
        assert!(text.contains("error[RA005] at t4 res9: routed over dead link"));
        assert!(text.contains("1 error(s), 0 warning(s)"));
    }
}
