//! # rescc-analyze — cross-phase static analysis over compiled plans
//!
//! Each stage of the compile pipeline validates its *own* invariants:
//! the verifier proves the spec's transfers realize the collective, the
//! scheduler checks per-sub-pipeline conflict loads, the TB allocator
//! checks slot placement. None of them sees the *combination* — and the
//! combination is what the engine executes. This crate runs clippy-style
//! lints over the full artifact stack (`AlgoSpec`, `DepDag`, `Schedule`,
//! `TbAllocation`, `KernelProgram`, `Topology`) and reports machine-stable
//! diagnostics:
//!
//! | code  | severity | lint |
//! |-------|----------|------|
//! | RA001 | error    | deadlock: cycle over DAG edges ∪ per-TB slot order ∪ fusion gates |
//! | RA002 | error    | buffer race: unordered writes to one `(rank, chunk)` slot |
//! | RA003 | error/warn | over-subscription: conflict load above saturation / TB budget |
//! | RA004 | warn     | dead transfer: contribution never reaches the postcondition |
//! | RA005 | error    | degraded-plan soundness: task routed over a health-masked resource |
//!
//! Diagnostics carry a [`Site`] (task / rank / TB / step / sub-pipeline /
//! resource / chunk, each optional) and render both human-readable
//! (`error[RA001] at t3 r0 tb1: ...`) and as stable JSON via
//! [`AnalysisReport::to_json`].
//!
//! The pass is wired into three places: the compiler's *sanitize* phase
//! after lowering (gate configurable deny/warn/off), the `rescc-lint` CLI,
//! and the communicator's post-fault recovery path (every recompiled
//! degraded plan is analyzed before the collective resumes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod lints;

pub use diag::{AnalysisReport, Diagnostic, LintCode, Severity, Site};
pub use graph::CombinedOrder;

use rescc_alloc::TbAllocation;
use rescc_ir::DepDag;
use rescc_kernel::KernelProgram;
use rescc_lang::AlgoSpec;
use rescc_sched::Schedule;
use rescc_topology::Topology;

/// Tunables for the analysis pass.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Per-rank thread-block budget (Eq. 7 resource frame). Allocations
    /// above it get an RA003 warning. NCCL's default channel budget on
    /// A100-class parts works out to 64 TBs.
    pub tb_budget_per_rank: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            tb_budget_per_rank: 64,
        }
    }
}

/// The full artifact stack one analysis run inspects. All borrows — the
/// pass never mutates a plan.
pub struct AnalysisInput<'a> {
    /// The verified algorithm spec (postconditions for RA004).
    pub spec: &'a AlgoSpec,
    /// The dependency DAG (tasks, edges, conflict limits).
    pub dag: &'a DepDag,
    /// The sub-pipeline schedule.
    pub schedule: &'a Schedule,
    /// The TB allocation.
    pub alloc: &'a TbAllocation,
    /// The lowered kernel program (slot order, fusion).
    pub program: &'a KernelProgram,
    /// The topology the plan targets, including its health overlay.
    pub topo: &'a Topology,
}

/// Run every lint over one compiled plan and collect the diagnostics.
///
/// The report is deterministic: diagnostics are sorted by
/// `(code, site, message)` regardless of discovery order.
pub fn analyze(input: &AnalysisInput, config: &AnalysisConfig) -> AnalysisReport {
    let order = CombinedOrder::build(input.dag, input.program);
    let mut out = Vec::new();
    match order.topo_or_cycle() {
        // A cycle poisons reachability queries; report only the deadlock
        // and let the user re-run once it is fixed.
        Err(_) => lints::ra001_deadlock(input, &order, &mut out),
        Ok(topo) => lints::ra002_buffer_race(input, &order, &topo, &mut out),
    }
    lints::ra003_oversubscription(input, config, &mut out);
    lints::ra004_dead_transfer(input, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    AnalysisReport::new(out)
}

/// Re-analyze a plan whose *routing* changed but whose structure did not.
///
/// The caller asserts that relative to the plan `cached` was produced
/// from, the DAG adjacency, every task's `(src, dst, chunk, step, comm)`
/// tuple, the schedule, and the kernel program are all identical — only
/// the per-task `path`/`conflict` resource sets and the topology health
/// overlay differ (the incremental-recompile splice path: the router
/// re-resolved routes around masked resources and the old schedule stayed
/// feasible). Under those invariants three lints cannot change verdicts,
/// because routing is not among their inputs:
///
/// * RA001 reads DAG edges ∪ per-TB slot order ∪ fusion gates — unchanged;
/// * RA002 reads the same combined order plus `(dst, chunk, comm)` — unchanged;
/// * RA004 replays `(src, dst, chunk, step, comm)` — unchanged.
///
/// Their diagnostics are spliced through from `cached`, and only RA003
/// (conflict loads against saturation limits) and RA005 (routes vs. the
/// health overlay) re-run — RA003's load check only over
/// `dirty_sub_pipelines`, the sub-pipelines that contain a rerouted task
/// (loads elsewhere are unchanged, so their cached verdicts splice through
/// too, as do the TB-budget warnings: the allocation is untouched). The
/// result is a full RA001–RA005 report at a cost proportional to the
/// dirty region plus one linear RA005 scan.
pub fn analyze_rerouted(
    input: &AnalysisInput,
    _config: &AnalysisConfig,
    cached: &AnalysisReport,
    dirty_sub_pipelines: &[u32],
) -> AnalysisReport {
    let mut out: Vec<Diagnostic> = cached
        .diagnostics()
        .iter()
        .filter(|d| match d.code {
            LintCode::RA001 | LintCode::RA002 | LintCode::RA004 => true,
            // RA003 splices through except for load findings inside a
            // dirty sub-pipeline, which are superseded by the re-run
            // below. Budget warnings carry no sub-pipeline site.
            LintCode::RA003 => match d.site.sub_pipeline {
                Some(sp) => !dirty_sub_pipelines.contains(&sp),
                None => true,
            },
            // RA005 re-runs in full against the new health overlay.
            LintCode::RA005 => false,
        })
        .cloned()
        .collect();
    lints::ra003_sub_pipeline_loads(input, dirty_sub_pipelines, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    AnalysisReport::new(out)
}

/// Analyze a *residual* plan — the pruned remainder a partial-progress
/// recovery compiles from a fault frontier.
///
/// A residual DAG keeps only the tasks with unfinished invocations; the
/// completed prefix's transfers are gone, but their buffer contributions
/// already landed (and are reconstructed by the resume replay). Every
/// structural and routing lint still applies to the remainder exactly as
/// to a fresh plan:
///
/// * RA001 — the residual combined order must still be acyclic;
/// * RA002 — surviving writes to one slot must still be ordered;
/// * RA003 — residual conflict loads must still fit under saturation;
/// * RA005 — no surviving task may route over a masked resource.
///
/// RA004 (dead transfer) is deliberately **skipped**: it replays the
/// plan's transfers against the spec's postcondition, and with the
/// completed prefix pruned every chunk would spuriously appear to never
/// reach it. The full plan already passed RA004 at its own compile; the
/// pruned prefix's contributions are provenance-checked by the recovery
/// layer instead.
pub fn analyze_residual(input: &AnalysisInput, config: &AnalysisConfig) -> AnalysisReport {
    let order = CombinedOrder::build(input.dag, input.program);
    let mut out = Vec::new();
    match order.topo_or_cycle() {
        Err(_) => lints::ra001_deadlock(input, &order, &mut out),
        Ok(topo) => lints::ra002_buffer_race(input, &order, &topo, &mut out),
    }
    lints::ra003_oversubscription(input, config, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    AnalysisReport::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_kernel::{ExecMode, LoopOrder};
    use rescc_topology::Topology;

    fn full_stack(
        spec: &AlgoSpec,
        topo: &Topology,
    ) -> (DepDag, Schedule, TbAllocation, KernelProgram) {
        let dag = DepDag::build(spec, topo).expect("dag");
        let sched = rescc_sched::hpds(&dag);
        let alloc = TbAllocation::connection_based(&dag, &sched, 1);
        let program = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        (dag, sched, alloc, program)
    }

    #[test]
    fn ring_allgather_is_clean() {
        let topo = Topology::a100(1, 4);
        let spec = rescc_algos::ring_allgather(4);
        let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
        let report = analyze(
            &AnalysisInput {
                spec: &spec,
                dag: &dag,
                schedule: &schedule,
                alloc: &alloc,
                program: &program,
                topo: &topo,
            },
            &AnalysisConfig::default(),
        );
        assert!(report.is_clean(), "unexpected: {}", report.render_human());
    }

    #[test]
    fn hm_allreduce_is_clean() {
        let topo = Topology::a100(2, 4);
        let spec = rescc_algos::hm_allreduce(2, 4);
        let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
        let report = analyze(
            &AnalysisInput {
                spec: &spec,
                dag: &dag,
                schedule: &schedule,
                alloc: &alloc,
                program: &program,
                topo: &topo,
            },
            &AnalysisConfig::default(),
        );
        assert!(report.is_clean(), "unexpected: {}", report.render_human());
    }
}
