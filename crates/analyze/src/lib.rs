//! # rescc-analyze — cross-phase static analysis over compiled plans
//!
//! Each stage of the compile pipeline validates its *own* invariants:
//! the verifier proves the spec's transfers realize the collective, the
//! scheduler checks per-sub-pipeline conflict loads, the TB allocator
//! checks slot placement. None of them sees the *combination* — and the
//! combination is what the engine executes. This crate runs clippy-style
//! lints over the full artifact stack (`AlgoSpec`, `DepDag`, `Schedule`,
//! `TbAllocation`, `KernelProgram`, `Topology`) and reports machine-stable
//! diagnostics:
//!
//! | code  | severity | lint |
//! |-------|----------|------|
//! | RA001 | error    | deadlock: cycle over DAG edges ∪ per-TB slot order ∪ fusion gates |
//! | RA002 | error    | buffer race: unordered writes to one `(rank, chunk)` slot |
//! | RA003 | error/warn | over-subscription: conflict load above saturation / TB budget |
//! | RA004 | warn     | dead transfer: contribution never reaches the postcondition |
//! | RA005 | error    | degraded-plan soundness: task routed over a health-masked resource |
//! | RA006 | error    | buffer-lifetime overlap: slot reuse unordered with a reader of the previous write |
//! | RA007 | error    | cost infeasibility: windowed demand above link capacity (α–β–γ) |
//! | RA008 | warn     | residual dead transfer: no contribution after fault-frontier replay |
//!
//! Order-sensitive lints (RA001, RA002, RA006) share one happens-before
//! oracle ([`HbOracle`]) built over the combined order per `analyze`
//! call; RA007 additionally computes an α–β–γ makespan lower-bound
//! [`CostCertificate`] attached to the report, which the bench harness
//! and the communicator cross-check against simulation results.
//!
//! Diagnostics carry a [`Site`] (task / rank / TB / step / sub-pipeline /
//! resource / chunk, each optional) plus a counterexample [`path`]
//! (`Diagnostic::path`) where the lint has one, and render both
//! human-readable (`error[RA001] at t3 r0 tb1: ...`) and as stable JSON
//! via [`AnalysisReport::to_json`].
//!
//! The pass is wired into three places: the compiler's *sanitize* phase
//! after lowering (gate configurable deny/warn/off), the `rescc-lint` CLI,
//! and the communicator's post-fault recovery path (every recompiled
//! degraded plan is analyzed before the collective resumes).
//!
//! [`path`]: Diagnostic::path

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod lints;
pub mod oracle;

pub use diag::{AnalysisReport, CostCertificate, Diagnostic, LintCode, Severity, Site};
pub use graph::CombinedOrder;
pub use oracle::{HbOracle, OracleStats};

use rescc_alloc::TbAllocation;
use rescc_ir::{DepDag, TaskId};
use rescc_kernel::KernelProgram;
use rescc_lang::AlgoSpec;
use rescc_sched::Schedule;
use rescc_topology::Topology;

/// Tunables for the analysis pass.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Per-rank thread-block budget (Eq. 7 resource frame). Allocations
    /// above it get an RA003 warning. NCCL's default channel budget on
    /// A100-class parts works out to 64 TBs.
    pub tb_budget_per_rank: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            tb_budget_per_rank: 64,
        }
    }
}

/// The full artifact stack one analysis run inspects. All borrows — the
/// pass never mutates a plan.
pub struct AnalysisInput<'a> {
    /// The verified algorithm spec (postconditions for RA004).
    pub spec: &'a AlgoSpec,
    /// The dependency DAG (tasks, edges, conflict limits).
    pub dag: &'a DepDag,
    /// The sub-pipeline schedule.
    pub schedule: &'a Schedule,
    /// The TB allocation.
    pub alloc: &'a TbAllocation,
    /// The lowered kernel program (slot order, fusion).
    pub program: &'a KernelProgram,
    /// The topology the plan targets, including its health overlay.
    pub topo: &'a Topology,
}

/// What a residual plan was carved out of: the context
/// [`analyze_residual`] needs to replay provenance from the fault
/// frontier (lint RA008).
pub struct ResidualContext<'a> {
    /// The original (pre-fault) dependency DAG the residual was pruned
    /// from.
    pub orig_dag: &'a DepDag,
    /// Map from residual task id to original task id
    /// (`orig_ids[residual.index()]`), as returned by
    /// [`DepDag::residual`].
    pub orig_ids: &'a [TaskId],
    /// Per-*original*-task completion mask: `true` for tasks whose every
    /// invocation finished before the fault (the pruned prefix).
    pub completed: &'a [bool],
}

/// Run every lint over one compiled plan and collect the diagnostics.
///
/// The report is deterministic: diagnostics are sorted by
/// `(code, site, message)` regardless of discovery order, and carries the
/// RA007 makespan certificate.
pub fn analyze(input: &AnalysisInput, config: &AnalysisConfig) -> AnalysisReport {
    let order = CombinedOrder::build(input.dag, input.program);
    let chunk_of: Vec<u32> = input.dag.tasks().iter().map(|t| t.chunk.0).collect();
    let mut out = Vec::new();
    match HbOracle::build(&order, &chunk_of) {
        // A cycle poisons reachability queries; report only the deadlock
        // and let the user re-run once it is fixed.
        Err(stuck) => lints::ra001_deadlock(input, &order, &stuck, &mut out),
        Ok(mut oracle) => {
            lints::ra002_buffer_race(input, &order, &mut oracle, &mut out);
            lints::ra006_lifetime_overlap(input, &order, &mut oracle, &mut out);
        }
    }
    lints::ra003_oversubscription(input, config, &mut out);
    lints::ra004_dead_transfer(input, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    let certificate = lints::ra007_cost_feasibility(input, &mut out);
    AnalysisReport::new(out).with_certificate(certificate)
}

/// Re-analyze a plan whose *routing* changed but whose structure did not.
///
/// The caller asserts that relative to the plan `cached` was produced
/// from, the DAG adjacency, every task's `(src, dst, chunk, step, comm)`
/// tuple, the schedule, and the kernel program are all identical — only
/// the per-task `path`/`conflict` resource sets and the topology health
/// overlay differ (the incremental-recompile splice path: the router
/// re-resolved routes around masked resources and the old schedule stayed
/// feasible). Under those invariants four lints cannot change verdicts,
/// because routing is not among their inputs:
///
/// * RA001 reads DAG edges ∪ per-TB slot order ∪ fusion gates — unchanged;
/// * RA002 reads the same combined order plus `(dst, chunk, comm)` — unchanged;
/// * RA004 replays `(src, dst, chunk, step, comm)` — unchanged;
/// * RA006 reads the combined order plus `(src, dst, chunk)` — unchanged.
///
/// Their diagnostics are spliced through from `cached`. RA003's load
/// check re-runs only over `dirty_sub_pipelines`, the sub-pipelines that
/// contain a rerouted task (loads elsewhere are unchanged, so their
/// cached verdicts splice through too, as do the TB-budget warnings: the
/// allocation is untouched). RA005 (routes vs. the health overlay) and
/// RA007 (route occupancy, windowed demand, and the makespan certificate
/// — reroutes move bytes onto different links) re-run in full; both are
/// linear scans that never touch the combined order. The result is a
/// full RA001–RA007 report, with a fresh certificate, at a cost
/// proportional to the dirty region plus two linear scans.
pub fn analyze_rerouted(
    input: &AnalysisInput,
    _config: &AnalysisConfig,
    cached: &AnalysisReport,
    dirty_sub_pipelines: &[u32],
) -> AnalysisReport {
    let mut out: Vec<Diagnostic> = cached
        .diagnostics()
        .iter()
        .filter(|d| match d.code {
            LintCode::RA001 | LintCode::RA002 | LintCode::RA004 | LintCode::RA006 => true,
            // RA003 splices through except for load findings inside a
            // dirty sub-pipeline, which are superseded by the re-run
            // below. Budget warnings carry no sub-pipeline site.
            LintCode::RA003 => match d.site.sub_pipeline {
                Some(sp) => !dirty_sub_pipelines.contains(&sp),
                None => true,
            },
            // RA005 and RA007 re-run in full against the new routes.
            LintCode::RA005 | LintCode::RA007 => false,
            // RA008 only ever appears on residual plans, which never take
            // the reroute-splice path; drop defensively.
            LintCode::RA008 => false,
        })
        .cloned()
        .collect();
    lints::ra003_sub_pipeline_loads(input, dirty_sub_pipelines, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    let certificate = lints::ra007_cost_feasibility(input, &mut out);
    AnalysisReport::new(out).with_certificate(certificate)
}

/// Analyze a *residual* plan — the pruned remainder a partial-progress
/// recovery compiles from a fault frontier.
///
/// A residual DAG keeps only the tasks with unfinished invocations; the
/// completed prefix's transfers are gone, but their buffer contributions
/// already landed (and are reconstructed by the resume replay). Every
/// structural, routing, and cost lint applies to the remainder exactly
/// as to a fresh plan (RA001, RA002, RA003, RA005, RA006, RA007 — with a
/// fresh makespan certificate for the residual work). Dead-transfer
/// coverage comes from RA008 instead of RA004: RA004's replay assumes
/// each chunk starts from the spec's precondition, which the completed
/// prefix has already advanced past, so RA008 replays provenance *from
/// the fault frontier* (`ctx`) — completed tasks first, surviving tasks
/// after — and flags surviving tasks that no longer contribute to the
/// postcondition.
pub fn analyze_residual(
    input: &AnalysisInput,
    config: &AnalysisConfig,
    ctx: &ResidualContext,
) -> AnalysisReport {
    let order = CombinedOrder::build(input.dag, input.program);
    let chunk_of: Vec<u32> = input.dag.tasks().iter().map(|t| t.chunk.0).collect();
    let mut out = Vec::new();
    match HbOracle::build(&order, &chunk_of) {
        Err(stuck) => lints::ra001_deadlock(input, &order, &stuck, &mut out),
        Ok(mut oracle) => {
            lints::ra002_buffer_race(input, &order, &mut oracle, &mut out);
            lints::ra006_lifetime_overlap(input, &order, &mut oracle, &mut out);
        }
    }
    lints::ra003_oversubscription(input, config, &mut out);
    lints::ra005_degraded_soundness(input, &mut out);
    lints::ra008_residual_dead_transfer(input, ctx, &mut out);
    let certificate = lints::ra007_cost_feasibility(input, &mut out);
    AnalysisReport::new(out).with_certificate(certificate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_kernel::{ExecMode, LoopOrder};
    use rescc_topology::Topology;

    fn full_stack(
        spec: &AlgoSpec,
        topo: &Topology,
    ) -> (DepDag, Schedule, TbAllocation, KernelProgram) {
        let dag = DepDag::build(spec, topo).expect("dag");
        let sched = rescc_sched::hpds(&dag);
        let alloc = TbAllocation::connection_based(&dag, &sched, 1);
        let program = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        (dag, sched, alloc, program)
    }

    #[test]
    fn ring_allgather_is_clean() {
        let topo = Topology::a100(1, 4);
        let spec = rescc_algos::ring_allgather(4);
        let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
        let report = analyze(
            &AnalysisInput {
                spec: &spec,
                dag: &dag,
                schedule: &schedule,
                alloc: &alloc,
                program: &program,
                topo: &topo,
            },
            &AnalysisConfig::default(),
        );
        assert!(report.is_clean(), "unexpected: {}", report.render_human());
        let cert = report.certificate().expect("certificate attached");
        assert!(cert.alpha_chain_ns > 0.0, "ring has a nonempty alpha chain");
        assert!(cert.bottleneck_tasks > 0);
        assert!(cert.lower_bound_ns(1 << 20) > 0.0);
    }

    #[test]
    fn hm_allreduce_is_clean() {
        let topo = Topology::a100(2, 4);
        let spec = rescc_algos::hm_allreduce(2, 4);
        let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
        let report = analyze(
            &AnalysisInput {
                spec: &spec,
                dag: &dag,
                schedule: &schedule,
                alloc: &alloc,
                program: &program,
                topo: &topo,
            },
            &AnalysisConfig::default(),
        );
        assert!(report.is_clean(), "unexpected: {}", report.render_human());
        assert!(report.certificate().is_some());
    }
}
