//! The combined task order: DAG data edges ∪ per-TB slot serialization ∪
//! fused-slot cut-through gates.
//!
//! Each artifact's own validator only sees its own ordering relation —
//! `Schedule::validate` re-checks DAG edges, `TbAllocation::validate`
//! checks slot placement. The *combination* is what the engine actually
//! executes: a TB runs its gating slots in order (slot-major: every
//! micro-batch of a slot before the next slot), a fused slot issues
//! asynchronously behind its feeder, and every invocation additionally
//! waits for its DAG predecessors via rendezvous with the peer TB. A cycle
//! in this combined relation wedges the run even though every individual
//! artifact is valid.
//!
//! The relation is stored in CSR form — one flat `targets` array indexed
//! by `offsets` — because the happens-before oracle
//! ([`HbOracle`](crate::HbOracle)) traverses it many times per `analyze`
//! call and per-node `Vec`s cost a pointer chase per hop.

use rescc_ir::{DepDag, TaskId};
use rescc_kernel::KernelProgram;

/// The combined order as a CSR adjacency over task indices, plus the
/// TB coordinates of each task's two sides (for diagnostics).
pub struct CombinedOrder {
    /// CSR row offsets: node `u`'s successors live at
    /// `targets[offsets[u]..offsets[u + 1]]`.
    offsets: Vec<u32>,
    /// CSR edge targets, deduplicated, in insertion order (DAG edges
    /// first, then TB gating edges in program order).
    targets: Vec<u32>,
    /// `(rank, tb)` of each task's sender slot, if present.
    pub send_tb: Vec<Option<(u32, u32)>>,
    /// `(rank, tb)` of each task's receive slot, if present.
    pub recv_tb: Vec<Option<(u32, u32)>>,
}

impl CombinedOrder {
    /// Build the combined order for one compiled plan.
    pub fn build(dag: &DepDag, program: &KernelProgram) -> Self {
        let n = dag.len();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut send_tb: Vec<Option<(u32, u32)>> = vec![None; n];
        let mut recv_tb: Vec<Option<(u32, u32)>> = vec![None; n];

        // Data dependencies.
        for t in dag.tasks() {
            for &s in dag.succs(t.id) {
                push_edge(&mut rows, t.id, s);
            }
        }

        // Per-TB serialization. Both sides of a task map onto the same
        // combined-order node (rendezvous: an invocation needs both TBs).
        // A slot marked `fused_with_prev` issues asynchronously behind the
        // slot directly before it — it is gated by that feeder
        // (cut-through) but never gates the slots after it.
        for rp in &program.ranks {
            for (tb_idx, tb) in rp.tbs.iter().enumerate() {
                let mut last_gating: Option<TaskId> = None;
                let mut prev: Option<TaskId> = None;
                for slot in &tb.slots {
                    let side = if slot.is_send() {
                        &mut send_tb
                    } else {
                        &mut recv_tb
                    };
                    side[slot.task.index()] = Some((rp.rank.0, tb_idx as u32));
                    if slot.fused_with_prev {
                        if let Some(p) = prev {
                            if p != slot.task {
                                push_edge(&mut rows, p, slot.task);
                            }
                        }
                    } else {
                        if let Some(g) = last_gating {
                            if g != slot.task {
                                push_edge(&mut rows, g, slot.task);
                            }
                        }
                        last_gating = Some(slot.task);
                    }
                    prev = Some(slot.task);
                }
            }
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for row in &rows {
            targets.extend_from_slice(row);
            offsets.push(targets.len() as u32);
        }

        Self {
            offsets,
            targets,
            send_tb,
            recv_tb,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of combined-order edges.
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Successors of `u` under the combined relation.
    pub fn succs(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Kahn's algorithm over the combined relation. `Ok` is a valid
    /// execution order; `Err` is the set of task indices stuck on a cycle
    /// (ascending).
    pub fn topo_or_cycle(&self) -> Result<Vec<u32>, Vec<u32>> {
        let n = self.len();
        let mut indeg = vec![0u32; n];
        for &s in &self.targets {
            indeg[s as usize] += 1;
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop() {
            order.push(t);
            for &s in self.succs(t) {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let mut seen = vec![false; n];
            for &t in &order {
                seen[t as usize] = true;
            }
            Err((0..n as u32).filter(|&t| !seen[t as usize]).collect())
        }
    }

    /// All tasks reachable from `from` (excluding `from` itself unless it
    /// sits on a cycle through itself).
    pub fn reachable_from(&self, from: u32) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<u32> = self.succs(from).to_vec();
        while let Some(t) = stack.pop() {
            if seen[t as usize] {
                continue;
            }
            seen[t as usize] = true;
            stack.extend_from_slice(self.succs(t));
        }
        seen
    }
}

fn push_edge(rows: &mut [Vec<u32>], from: TaskId, to: TaskId) {
    debug_assert_ne!(from, to);
    if !rows[from.index()].contains(&to.0) {
        rows[from.index()].push(to.0);
    }
}
