//! Shared happens-before reachability oracle over the combined order.
//!
//! Every order-sensitive lint used to re-derive reachability with its own
//! ad-hoc DFS. The oracle is built **once** per [`analyze`](crate::analyze)
//! call and answers `a ⊑ b` (does `a` happen before `b`?) queries for all
//! of them, with three O(1) certificate layers in front of an exact
//! fallback:
//!
//! 1. **Topological positions** (Kahn order): `pos[a] ≥ pos[b]` refutes
//!    `a ⊑ b` immediately — and doubles as cycle detection at build time.
//! 2. **Chain labels**: a greedy path decomposition biased toward
//!    same-chunk successors. Two nodes on one chain are ordered by their
//!    chain positions; ring-style per-chunk pipelines collapse onto single
//!    chains, so the dominant query class in real plans is O(1)-positive.
//! 3. **GRAIL-style interval labels**: one DFS postorder `post[u]` plus
//!    `low[u] = min(post over u's reachable set)`. `a ⊑ b` implies
//!    `low[a] ≤ low[b] ∧ post[b] ≤ post[a]`, so a violated inequality is
//!    an O(1) negative certificate.
//!
//! Queries that pass all three filters fall back to a stamp-versioned DFS
//! that prunes with the same position/interval tests per hop. The
//! fallback count is exposed via [`HbOracle::stats`] so the bench harness
//! can prove the certificates actually absorb the load.

use crate::graph::CombinedOrder;

const UNSET: u32 = u32::MAX;

/// Query counters for the bench harness (how much work the certificate
/// layers absorbed).
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleStats {
    /// Total `reaches` queries answered.
    pub queries: u64,
    /// Queries that needed the exact DFS fallback.
    pub dfs_fallbacks: u64,
    /// Number of chains in the decomposition.
    pub n_chains: u32,
}

/// Happens-before oracle over one [`CombinedOrder`].
///
/// Built by [`HbOracle::build`]; `Err` carries the ascending set of task
/// indices stuck on a cycle (the combined relation is not a partial
/// order, which is lint RA001's domain).
pub struct HbOracle {
    topo: Vec<u32>,
    pos: Vec<u32>,
    chain: Vec<u32>,
    post: Vec<u32>,
    low: Vec<u32>,
    // Stamp-versioned scratch for the DFS fallback (avoids clearing an
    // O(n) bitmap per query).
    visited: Vec<u32>,
    stamp: u32,
    stack: Vec<u32>,
    // Lazily-built reverse adjacency (CSR), only materialized when a
    // diagnostic needs divergence evidence.
    preds: Option<(Vec<u32>, Vec<u32>)>,
    stats: OracleStats,
}

impl HbOracle {
    /// Build the oracle. `chunk_of[t]` is task `t`'s chunk index, used to
    /// bias the chain decomposition so per-chunk pipelines stay on one
    /// chain.
    pub fn build(order: &CombinedOrder, chunk_of: &[u32]) -> Result<Self, Vec<u32>> {
        let topo = order.topo_or_cycle()?;
        let n = order.len();
        debug_assert_eq!(chunk_of.len(), n);

        let mut pos = vec![0u32; n];
        for (i, &t) in topo.iter().enumerate() {
            pos[t as usize] = i as u32;
        }

        // Postorder via iterative DFS from every in-degree-0 root, roots
        // and successors visited in deterministic (index/insertion) order.
        let mut post = vec![UNSET; n];
        let mut counter = 0u32;
        let mut frame: Vec<(u32, u32)> = Vec::new();
        let mut indeg_zero: Vec<u32> = Vec::new();
        {
            let mut indeg = vec![0u32; n];
            for u in 0..n as u32 {
                for &s in order.succs(u) {
                    indeg[s as usize] += 1;
                }
            }
            for u in 0..n as u32 {
                if indeg[u as usize] == 0 {
                    indeg_zero.push(u);
                }
            }
        }
        for &root in &indeg_zero {
            if post[root as usize] != UNSET {
                continue;
            }
            frame.push((root, 0));
            while let Some((u, ci)) = frame.pop() {
                let succs = order.succs(u);
                if (ci as usize) < succs.len() {
                    frame.push((u, ci + 1));
                    let v = succs[ci as usize];
                    // An unfinished `v` is undiscovered: the frame stack
                    // is exactly the current DFS path, and an edge into
                    // the path would be a back edge — impossible in the
                    // DAG this topological order certifies.
                    if post[v as usize] == UNSET {
                        frame.push((v, 0));
                    }
                } else if post[u as usize] == UNSET {
                    post[u as usize] = counter;
                    counter += 1;
                }
            }
        }

        // Interval lower bounds in reverse topological order (every
        // successor is finalized before its predecessors).
        let mut low: Vec<u32> = post.clone();
        for &u in topo.iter().rev() {
            let mut m = post[u as usize];
            for &v in order.succs(u) {
                m = m.min(low[v as usize]);
            }
            low[u as usize] = m;
        }

        // Greedy chain decomposition, same-chunk successors first. A
        // chain member's topological position orders it within the chain
        // (chain edges are real edges), so no per-chain position index is
        // needed.
        let mut chain = vec![UNSET; n];
        let mut n_chains = 0u32;
        for &start in &topo {
            if chain[start as usize] != UNSET {
                continue;
            }
            let c = n_chains;
            n_chains += 1;
            let mut cur = start;
            loop {
                chain[cur as usize] = c;
                let succs = order.succs(cur);
                let next = succs
                    .iter()
                    .copied()
                    .find(|&v| {
                        chain[v as usize] == UNSET && chunk_of[v as usize] == chunk_of[cur as usize]
                    })
                    .or_else(|| succs.iter().copied().find(|&v| chain[v as usize] == UNSET));
                match next {
                    Some(v) => cur = v,
                    None => break,
                }
            }
        }

        Ok(Self {
            topo,
            pos,
            chain,
            post,
            low,
            visited: vec![0u32; n],
            stamp: 0,
            stack: Vec::new(),
            preds: None,
            stats: OracleStats {
                queries: 0,
                dfs_fallbacks: 0,
                n_chains,
            },
        })
    }

    /// The topological order the oracle was built over.
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// Topological position of task `t` (smaller runs earlier).
    pub fn pos(&self, t: u32) -> u32 {
        self.pos[t as usize]
    }

    /// Query counters accumulated so far.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    #[inline]
    fn interval_may_reach(&self, a: u32, b: u32) -> bool {
        self.low[a as usize] <= self.low[b as usize]
            && self.post[b as usize] <= self.post[a as usize]
    }

    /// Exact happens-before: is there a combined-order path `from → to`?
    /// Reflexive (`reaches(t, t)` is true).
    pub fn reaches(&mut self, order: &CombinedOrder, from: u32, to: u32) -> bool {
        self.stats.queries += 1;
        if from == to {
            return true;
        }
        if self.pos[from as usize] >= self.pos[to as usize] {
            return false;
        }
        if self.chain[from as usize] == self.chain[to as usize] {
            // Same chain and earlier topological position ⇒ earlier chain
            // position ⇒ a real edge path along the chain.
            return true;
        }
        if !self.interval_may_reach(from, to) {
            return false;
        }
        self.dfs_reaches(order, from, to)
    }

    fn dfs_reaches(&mut self, order: &CombinedOrder, from: u32, to: u32) -> bool {
        self.stats.dfs_fallbacks += 1;
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.visited.fill(0);
            self.stamp = 1;
        }
        let stamp = self.stamp;
        self.stack.clear();
        self.stack.push(from);
        self.visited[from as usize] = stamp;
        while let Some(u) = self.stack.pop() {
            for &v in order.succs(u) {
                if v == to {
                    return true;
                }
                if self.visited[v as usize] == stamp {
                    continue;
                }
                self.visited[v as usize] = stamp;
                if self.pos[v as usize] >= self.pos[to as usize] {
                    continue;
                }
                if self.chain[v as usize] == self.chain[to as usize] {
                    // v is on `to`'s chain at an earlier position.
                    return true;
                }
                if !self.interval_may_reach(v, to) {
                    continue;
                }
                self.stack.push(v);
            }
        }
        false
    }

    /// The latest common ancestor (maximum topological position) of two
    /// unordered tasks — the point where their histories diverge. `None`
    /// when they share no ancestor at all (fully independent histories).
    ///
    /// Only called when emitting a diagnostic, so it allocates freely and
    /// lazily materializes the reverse adjacency on first use.
    pub fn divergence(&mut self, order: &CombinedOrder, a: u32, b: u32) -> Option<u32> {
        self.ensure_preds(order);
        let (offsets, targets) = self.preds.as_ref().expect("preds just built");
        let n = self.pos.len();
        let mut anc_a = vec![false; n];
        let mut stack = vec![a];
        while let Some(u) = stack.pop() {
            if anc_a[u as usize] {
                continue;
            }
            anc_a[u as usize] = true;
            let lo = offsets[u as usize] as usize;
            let hi = offsets[u as usize + 1] as usize;
            stack.extend_from_slice(&targets[lo..hi]);
        }
        let mut best: Option<u32> = None;
        let mut seen_b = vec![false; n];
        stack.push(b);
        while let Some(u) = stack.pop() {
            if seen_b[u as usize] {
                continue;
            }
            seen_b[u as usize] = true;
            if anc_a[u as usize] && u != a && u != b {
                let better = match best {
                    Some(cur) => self.pos[u as usize] > self.pos[cur as usize],
                    None => true,
                };
                if better {
                    best = Some(u);
                }
            }
            let lo = offsets[u as usize] as usize;
            let hi = offsets[u as usize + 1] as usize;
            stack.extend_from_slice(&targets[lo..hi]);
        }
        best
    }

    fn ensure_preds(&mut self, order: &CombinedOrder) {
        if self.preds.is_some() {
            return;
        }
        let n = order.len();
        let mut counts = vec![0u32; n + 1];
        for u in 0..n as u32 {
            for &v in order.succs(u) {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut fill = counts;
        let mut targets = vec![0u32; order.n_edges()];
        for u in 0..n as u32 {
            for &v in order.succs(u) {
                targets[fill[v as usize] as usize] = u;
                fill[v as usize] += 1;
            }
        }
        self.preds = Some((offsets, targets));
    }
}
