//! Defect-fixture corpus: one minimal fixture per lint, each triggering
//! exactly its own code and nothing else.
//!
//! Each fixture starts from a *valid* compiled stack and injects one
//! defect at the layer the lint targets — a fabricated TB slot order for
//! RA001, a racy spec for RA002, a degenerate schedule / tiny TB budget
//! for RA003, a provenance-dead transfer for RA004, a health-masked
//! topology for RA005. The assertions pin both the code *and* the absence
//! of every other code, so a lint that starts over- or under-firing fails
//! here before it reaches the seed sweep.

use rescc_alloc::TbAllocation;
use rescc_analyze::{analyze, AnalysisConfig, AnalysisInput, AnalysisReport, LintCode, Severity};
use rescc_ir::DepDag;
use rescc_kernel::{ExecMode, KernelProgram, KernelSlot, LoopOrder, Primitive, TbProgram};
use rescc_lang::{AlgoBuilder, AlgoSpec, CommType, OpType, TransferRec};
use rescc_sched::{hpds, Schedule};
use rescc_topology::{ChunkId, NicId, Rank, Step, Topology, TopologyHealth};

fn full_stack(spec: &AlgoSpec, topo: &Topology) -> (DepDag, Schedule, TbAllocation, KernelProgram) {
    let dag = DepDag::build(spec, topo).expect("dag");
    let sched = hpds(&dag);
    let alloc = TbAllocation::connection_based(&dag, &sched, 1);
    let program = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    (dag, sched, alloc, program)
}

fn run(
    spec: &AlgoSpec,
    topo: &Topology,
    dag: &DepDag,
    schedule: &Schedule,
    alloc: &TbAllocation,
    program: &KernelProgram,
    config: &AnalysisConfig,
) -> AnalysisReport {
    analyze(
        &AnalysisInput {
            spec,
            dag,
            schedule,
            alloc,
            program,
            topo,
        },
        config,
    )
}

/// Every diagnostic carries `code` with `severity`, and there is at least
/// one.
fn assert_only(report: &AnalysisReport, code: LintCode, severity: Severity) {
    assert!(
        !report.diagnostics().is_empty(),
        "expected {} diagnostics, report is clean",
        code.as_str()
    );
    for d in report.diagnostics() {
        assert_eq!(
            d.code,
            code,
            "unexpected cross-fire:\n{}",
            report.render_human()
        );
        assert_eq!(d.severity, severity, "wrong severity: {}", d.message);
    }
}

/// RA001: a fabricated TB whose slot order contradicts a DAG edge. The
/// ring chain has t0 -> t1 for chunk 0; a TB running [t1, t0] serializes
/// t1 before t0, closing the cycle. Every individual artifact still
/// passes its own validator — only the combined order is wedged.
#[test]
fn ra001_fixture_tb_order_against_dag_edge() {
    let topo = Topology::a100(1, 4);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, mut program) = full_stack(&spec, &topo);

    let chain = dag.chunk_tasks(ChunkId::new(0));
    let (x, y) = (chain[0], chain[1]);
    assert!(dag.succs(x).contains(&y), "fixture precondition: x -> y");
    let slot = |t: rescc_ir::TaskId| KernelSlot {
        task: t,
        primitive: Primitive::Recv,
        peer: dag.task(t).src,
        chunk: dag.task(t).chunk,
        sub_pipeline: 0,
        fused_with_prev: false,
    };
    program.ranks[0].tbs.push(TbProgram {
        slots: vec![slot(y), slot(x)],
        mb_stride: 1,
        mb_offset: 0,
    });

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA001, Severity::Error);
    let d = &report.diagnostics()[0];
    assert!(
        d.message.contains("cycle"),
        "RA001 should print the cycle: {}",
        d.message
    );
}

/// RA002: a same-step copy + reduction racing into one `(rank, chunk)`
/// slot. The spec validator accepts it (the tuples are distinct), the DAG
/// draws no edge (same step), and the two receives land in different TBs
/// (different connections) — so nothing orders them and the slot's final
/// value depends on arrival order.
#[test]
fn ra002_fixture_unordered_copy_vs_reduce() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("race", OpType::AllReduce, 4);
    b.recv(1, 0, 0, 0);
    b.rrc(2, 0, 0, 0);
    let spec = b.build().expect("racy spec is syntactically valid");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA002, Severity::Error);
    assert_eq!(report.diagnostics().len(), 1);
    let site = &report.diagnostics()[0].site;
    assert_eq!(site.rank, Some(0));
    assert_eq!(site.chunk, Some(0));
}

/// RA002 counter-fixture: two *reductions* into one slot commute, so the
/// same shape with `rrc` + `rrc` is clean.
#[test]
fn ra002_two_reductions_commute() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("commute", OpType::AllReduce, 4);
    b.rrc(1, 0, 0, 0);
    b.rrc(2, 0, 0, 0);
    let spec = b.build().expect("spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {}", report.render_human());
}

/// RA003 (error): cram every task of an 8-rank ring into one sub-pipeline.
/// Each GPU egress then carries 7 concurrent tasks against a saturation
/// limit far below that — the Eq. 1 contention constraint the scheduler
/// exists to respect.
#[test]
fn ra003_fixture_oversubscribed_sub_pipeline() {
    let topo = Topology::a100(1, 8);
    let spec = rescc_algos::ring_allgather(8);
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
    let flat = Schedule {
        sub_pipelines: vec![schedule.linear_order()],
        policy: "everything-at-once".into(),
    };

    let report = run(
        &spec,
        &topo,
        &dag,
        &flat,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA003, Severity::Error);
}

/// RA003 (warn): the same clean plan against a TB budget of 1 per rank.
/// Connection-based allocation needs one TB per endpoint (>= 2 on a
/// ring), so every rank trips the Eq. 7 budget — a warning, not an error:
/// the plan is correct, it just crowds out compute kernels.
#[test]
fn ra003_fixture_tb_budget_exceeded() {
    let topo = Topology::a100(1, 4);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
    assert!(alloc.per_rank.iter().all(|p| p.tbs.len() >= 2));

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig {
            tb_budget_per_rank: 1,
        },
    );
    assert_only(&report, LintCode::RA003, Severity::Warn);
    assert_eq!(report.diagnostics().len(), 4, "one warning per rank");
}

/// RA004: a ring AllGather plus a transfer whose delivery is overwritten
/// before anything reads it. Task A copies rank 0's (empty) chunk-0 slot
/// into rank 1; task B overwrites the same slot one step later. A's
/// contribution reaches no slot the postcondition reads — bytes moved for
/// nothing — while B's survives to the end and stays clean.
#[test]
fn ra004_fixture_overwritten_transfer() {
    let topo = Topology::a100(1, 4);
    let ring = rescc_algos::ring_allgather(4);
    let last = ring.max_step().0;
    let mut transfers = ring.transfers().to_vec();
    let extra = |step: u32| TransferRec {
        src: Rank::new(0),
        dst: Rank::new(1),
        step: Step::new(step),
        chunk: ChunkId::new(0),
        comm: CommType::Recv,
    };
    transfers.push(extra(last + 1)); // task A — dead
    transfers.push(extra(last + 2)); // task B — overwrites A
    let spec =
        AlgoSpec::new("ring-plus-dead", OpType::AllGather, 4, transfers).expect("valid spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA004, Severity::Warn);
    assert_eq!(report.diagnostics().len(), 1, "only A is dead, B survives");
    let site = &report.diagnostics()[0].site;
    assert_eq!(site.step, Some(last + 1), "the dead task is A, not B");
    assert_eq!(site.chunk, Some(0));
}

/// RA005: a plan compiled against a healthy 2-node topology, analyzed
/// against the same topology with node 0's NIC egress masked dead. Every
/// cross-node task routed over that NIC is unsound — it fails at runtime
/// on its first transfer.
#[test]
fn ra005_fixture_plan_over_dead_nic() {
    let healthy = Topology::a100(2, 2);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, program) = full_stack(&spec, &healthy);

    let mut mask = TopologyHealth::healthy();
    mask.mask(healthy.nic_tx(NicId::new(0)));
    let degraded = Topology::a100(2, 2).with_health(mask);

    let report = run(
        &spec,
        &degraded,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA005, Severity::Error);
    let nic = healthy.nic_tx(NicId::new(0)).0;
    for d in report.diagnostics() {
        assert_eq!(d.site.resource, Some(nic));
    }
}

/// The fixtures above stay minimal *because* the seed corpus is clean:
/// every lint must report zero diagnostics across all seed algorithms on
/// every Table 3 topology (the zero-false-positive acceptance bar).
#[test]
fn seed_algorithms_on_table3_topologies_are_clean() {
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).expect("table 3 topology");
        let nodes = topo.n_nodes();
        let g = topo.n_ranks() / nodes;
        let n = topo.n_ranks();
        let mut specs = vec![
            rescc_algos::hm_allgather(nodes, g),
            rescc_algos::hm_reduce_scatter(nodes, g),
            rescc_algos::hm_allreduce(nodes, g),
            rescc_algos::ring_allgather(n),
            rescc_algos::ring_reduce_scatter(n),
            rescc_algos::ring_allreduce(n),
        ];
        if n.is_power_of_two() {
            specs.push(rescc_algos::recursive_doubling_allgather(n));
            specs.push(rescc_algos::recursive_halving_reduce_scatter(n));
            specs.push(rescc_algos::dbtree_allreduce(n));
        }
        for spec in &specs {
            let (dag, schedule, alloc, program) = full_stack(spec, &topo);
            let report = run(
                spec,
                &topo,
                &dag,
                &schedule,
                &alloc,
                &program,
                &AnalysisConfig::default(),
            );
            assert!(
                report.is_clean(),
                "{} on {} not clean:\n{}",
                spec.name(),
                topo.name(),
                report.render_human()
            );
        }
    }
}
