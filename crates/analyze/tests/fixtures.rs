//! Defect-fixture corpus: one minimal fixture per lint, each triggering
//! exactly its own code and nothing else.
//!
//! Each fixture starts from a *valid* compiled stack and injects one
//! defect at the layer the lint targets — a fabricated TB slot order for
//! RA001, a racy spec for RA002, a degenerate schedule / tiny TB budget
//! for RA003, a provenance-dead transfer for RA004, a health-masked
//! topology for RA005, an unordered slot reuse for RA006, a zero-rate
//! link for RA007, a frontier-dead residual transfer for RA008. The
//! assertions pin both the code *and* the absence of every other code,
//! so a lint that starts over- or under-firing fails here before it
//! reaches the seed sweep. A final fixture pins the `--json` rendering
//! to be byte-deterministic across independent analysis runs.

use rescc_alloc::TbAllocation;
use rescc_analyze::{
    analyze, analyze_residual, AnalysisConfig, AnalysisInput, AnalysisReport, LintCode,
    ResidualContext, Severity,
};
use rescc_ir::DepDag;
use rescc_kernel::{ExecMode, KernelProgram, KernelSlot, LoopOrder, Primitive, TbProgram};
use rescc_lang::{AlgoBuilder, AlgoSpec, CommType, OpType, TransferRec};
use rescc_sched::{hpds, Schedule};
use rescc_topology::{
    ChunkId, ClusterSpec, FabricParams, NicId, Rank, Step, Topology, TopologyHealth,
};

fn full_stack(spec: &AlgoSpec, topo: &Topology) -> (DepDag, Schedule, TbAllocation, KernelProgram) {
    let dag = DepDag::build(spec, topo).expect("dag");
    let sched = hpds(&dag);
    let alloc = TbAllocation::connection_based(&dag, &sched, 1);
    let program = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    (dag, sched, alloc, program)
}

fn run(
    spec: &AlgoSpec,
    topo: &Topology,
    dag: &DepDag,
    schedule: &Schedule,
    alloc: &TbAllocation,
    program: &KernelProgram,
    config: &AnalysisConfig,
) -> AnalysisReport {
    analyze(
        &AnalysisInput {
            spec,
            dag,
            schedule,
            alloc,
            program,
            topo,
        },
        config,
    )
}

/// Every diagnostic carries `code` with `severity`, and there is at least
/// one.
fn assert_only(report: &AnalysisReport, code: LintCode, severity: Severity) {
    assert!(
        !report.diagnostics().is_empty(),
        "expected {} diagnostics, report is clean",
        code.as_str()
    );
    for d in report.diagnostics() {
        assert_eq!(
            d.code,
            code,
            "unexpected cross-fire:\n{}",
            report.render_human()
        );
        assert_eq!(d.severity, severity, "wrong severity: {}", d.message);
    }
}

/// RA001: a fabricated TB whose slot order contradicts a DAG edge. The
/// ring chain has t0 -> t1 for chunk 0; a TB running [t1, t0] serializes
/// t1 before t0, closing the cycle. Every individual artifact still
/// passes its own validator — only the combined order is wedged.
#[test]
fn ra001_fixture_tb_order_against_dag_edge() {
    let topo = Topology::a100(1, 4);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, mut program) = full_stack(&spec, &topo);

    let chain = dag.chunk_tasks(ChunkId::new(0));
    let (x, y) = (chain[0], chain[1]);
    assert!(dag.succs(x).contains(&y), "fixture precondition: x -> y");
    let slot = |t: rescc_ir::TaskId| KernelSlot {
        task: t,
        primitive: Primitive::Recv,
        peer: dag.task(t).src,
        chunk: dag.task(t).chunk,
        sub_pipeline: 0,
        fused_with_prev: false,
    };
    program.ranks[0].tbs.push(TbProgram {
        slots: vec![slot(y), slot(x)],
        mb_stride: 1,
        mb_offset: 0,
    });

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA001, Severity::Error);
    let d = &report.diagnostics()[0];
    assert!(
        d.message.contains("cycle"),
        "RA001 should print the cycle: {}",
        d.message
    );
}

/// RA002: a same-step copy + reduction racing into one `(rank, chunk)`
/// slot. The spec validator accepts it (the tuples are distinct), the DAG
/// draws no edge (same step), and the two receives land in different TBs
/// (different connections) — so nothing orders them and the slot's final
/// value depends on arrival order.
#[test]
fn ra002_fixture_unordered_copy_vs_reduce() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("race", OpType::AllReduce, 4);
    b.recv(1, 0, 0, 0);
    b.rrc(2, 0, 0, 0);
    let spec = b.build().expect("racy spec is syntactically valid");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA002, Severity::Error);
    assert_eq!(report.diagnostics().len(), 1);
    let site = &report.diagnostics()[0].site;
    assert_eq!(site.rank, Some(0));
    assert_eq!(site.chunk, Some(0));
}

/// RA002 counter-fixture: two *reductions* into one slot commute, so the
/// same shape with `rrc` + `rrc` is clean.
#[test]
fn ra002_two_reductions_commute() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("commute", OpType::AllReduce, 4);
    b.rrc(1, 0, 0, 0);
    b.rrc(2, 0, 0, 0);
    let spec = b.build().expect("spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {}", report.render_human());
}

/// RA003 (error): cram every task of an 8-rank ring into one sub-pipeline.
/// Each GPU egress then carries 7 concurrent tasks against a saturation
/// limit far below that — the Eq. 1 contention constraint the scheduler
/// exists to respect.
#[test]
fn ra003_fixture_oversubscribed_sub_pipeline() {
    let topo = Topology::a100(1, 8);
    let spec = rescc_algos::ring_allgather(8);
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
    let flat = Schedule {
        sub_pipelines: vec![schedule.linear_order()],
        policy: "everything-at-once".into(),
    };

    let report = run(
        &spec,
        &topo,
        &dag,
        &flat,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA003, Severity::Error);
}

/// RA003 (warn): the same clean plan against a TB budget of 1 per rank.
/// Connection-based allocation needs one TB per endpoint (>= 2 on a
/// ring), so every rank trips the Eq. 7 budget — a warning, not an error:
/// the plan is correct, it just crowds out compute kernels.
#[test]
fn ra003_fixture_tb_budget_exceeded() {
    let topo = Topology::a100(1, 4);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);
    assert!(alloc.per_rank.iter().all(|p| p.tbs.len() >= 2));

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig {
            tb_budget_per_rank: 1,
        },
    );
    assert_only(&report, LintCode::RA003, Severity::Warn);
    assert_eq!(report.diagnostics().len(), 4, "one warning per rank");
}

/// RA004: a ring AllGather plus a transfer whose delivery is overwritten
/// before anything reads it. Task A re-copies chunk 0 into rank 1's slot
/// after the ring already delivered and forwarded it; task B overwrites
/// the same slot one step later. A's contribution reaches no slot the
/// postcondition reads — bytes moved for nothing — while B's survives to
/// the end and stays clean. Both extras source from rank 2, whose
/// chunk-0 slot was written by rank 1's own forward: that RAW edge
/// orders the reuse after the previous write's only reader, so the
/// overwrite chain is RA006-clean and isolates RA004.
#[test]
fn ra004_fixture_overwritten_transfer() {
    let topo = Topology::a100(1, 4);
    let ring = rescc_algos::ring_allgather(4);
    let last = ring.max_step().0;
    let mut transfers = ring.transfers().to_vec();
    let extra = |step: u32| TransferRec {
        src: Rank::new(2),
        dst: Rank::new(1),
        step: Step::new(step),
        chunk: ChunkId::new(0),
        comm: CommType::Recv,
    };
    transfers.push(extra(last + 1)); // task A — dead
    transfers.push(extra(last + 2)); // task B — overwrites A
    let spec =
        AlgoSpec::new("ring-plus-dead", OpType::AllGather, 4, transfers).expect("valid spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA004, Severity::Warn);
    assert_eq!(report.diagnostics().len(), 1, "only A is dead, B survives");
    let site = &report.diagnostics()[0].site;
    assert_eq!(site.step, Some(last + 1), "the dead task is A, not B");
    assert_eq!(site.chunk, Some(0));
}

/// RA005: a plan compiled against a healthy 2-node topology, analyzed
/// against the same topology with node 0's NIC egress masked dead. Every
/// cross-node task routed over that NIC is unsound — it fails at runtime
/// on its first transfer.
#[test]
fn ra005_fixture_plan_over_dead_nic() {
    let healthy = Topology::a100(2, 2);
    let spec = rescc_algos::ring_allgather(4);
    let (dag, schedule, alloc, program) = full_stack(&spec, &healthy);

    let mut mask = TopologyHealth::healthy();
    mask.mask(healthy.nic_tx(NicId::new(0)));
    let degraded = Topology::a100(2, 2).with_health(mask);

    let report = run(
        &spec,
        &degraded,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA005, Severity::Error);
    let nic = healthy.nic_tx(NicId::new(0)).0;
    for d in report.diagnostics() {
        assert_eq!(d.site.resource, Some(nic));
    }
}

/// RA006: a write→read→write triangle with the reuse unordered against
/// the reader. Rank 0 seeds chunk 0 into ranks 1 and 3; rank 1 forwards
/// it to rank 2 at step 1; rank 3 re-copies it into rank 1's slot at
/// step 2. The two writes into rank 1's slot are WAW-ordered (RA002 is
/// silent), but the reuse sources from rank 3 — not from the forward —
/// so no edge and no TB slot order relates the reader t(1->2) to the
/// reuse t(3->1): micro-batch pipelining can overwrite the slot while
/// the forward is still reading it.
#[test]
fn ra006_fixture_unordered_slot_reuse() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("reuse", OpType::AllGather, 4);
    b.recv(0, 1, 0, 0); // w1: first write of rank1/c0
    b.recv(0, 3, 0, 0); // seeds rank 3 so the reuse reads a live slot
    b.recv(1, 2, 1, 0); // r: reader of w1's value
    b.recv(3, 1, 2, 0); // w2: slot reuse, unordered with r
    let spec = b.build().expect("spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let find = |src: u32, dst: u32, step: u32| -> u32 {
        dag.tasks()
            .iter()
            .position(|t| t.src.0 == src && t.dst.0 == dst && t.step.0 == step)
            .expect("fixture task") as u32
    };
    let (w1, r, w2) = (find(0, 1, 0), find(1, 2, 1), find(3, 1, 2));

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA006, Severity::Error);
    assert_eq!(report.diagnostics().len(), 1);
    let d = &report.diagnostics()[0];
    assert_eq!(d.path, vec![w1, r, w2], "counterexample is w1 -> r vs w2");
    assert_eq!(d.site.rank, Some(1));
    assert_eq!(d.site.chunk, Some(0));
    assert_eq!(d.site.task, Some(w2), "the diagnostic anchors on the reuse");
}

/// RA006 counter-fixture: the same shape with the reuse sourcing from
/// the *reader's* destination. The reuse then carries a RAW edge from
/// the forward, ordering it after the read — clean.
#[test]
fn ra006_ordered_reuse_is_clean() {
    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("reuse-ok", OpType::AllGather, 4);
    b.recv(0, 1, 0, 0);
    b.recv(1, 2, 1, 0);
    b.recv(2, 1, 2, 0); // reads rank2/c0, written by the forward
    let spec = b.build().expect("spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {}", report.render_human());
}

/// RA007: a transfer routed over an NVLink channel whose α–β–γ
/// parameters deliver zero bandwidth (infinite β, zero per-TB rate) —
/// the brownout-overlay shape the constructors forbid but a
/// hand-assembled fabric can express. The windowed demand through that
/// channel exceeds its capacity at every window length, so the plan is
/// statically infeasible; the certificate must still be finite, priced
/// off the healthy port resources.
#[test]
fn ra007_fixture_zero_bandwidth_link() {
    let mut fabric = FabricParams::a100();
    fabric.intra.beta_ns_per_byte = f64::INFINITY;
    fabric.intra.tb_bw_bytes_per_ns = 0.0;
    let topo = Topology::new(
        "a100-1x2-deadchan",
        ClusterSpec {
            n_nodes: 1,
            gpus_per_node: 2,
            nics_per_node: 1,
        },
        fabric,
    );
    let mut b = AlgoBuilder::new("deadchan", OpType::AllGather, 2);
    b.recv(0, 1, 0, 0);
    let spec = b.build().expect("spec");
    let (dag, schedule, alloc, program) = full_stack(&spec, &topo);

    let report = run(
        &spec,
        &topo,
        &dag,
        &schedule,
        &alloc,
        &program,
        &AnalysisConfig::default(),
    );
    assert_only(&report, LintCode::RA007, Severity::Error);
    assert_eq!(
        report.diagnostics().len(),
        1,
        "one dead resource, one error"
    );
    let d = &report.diagnostics()[0];
    assert_eq!(d.site.sub_pipeline, Some(0));
    assert!(d.message.contains("deliverable bandwidth is zero"));

    let cert = report.certificate().expect("certificate present");
    assert!(
        cert.alpha_chain_ns.is_finite() && cert.bottleneck_beta_ns_per_byte.is_finite(),
        "certificate prices only deliverable links"
    );
    assert!(cert.lower_bound_ns(1 << 20).is_finite());
}

/// RA008 (the regression the old RA004 skip admitted): the ring-plus-dead
/// plan from the RA004 fixture, resumed from a frontier where the whole
/// ring completed and only the two extras survive. Replaying provenance
/// from that frontier shows task A's delivery overwritten by B before
/// any read — a dead transfer in the residual that pre-RA008
/// `analyze_residual` (which skipped dead-transfer analysis entirely)
/// silently admitted.
#[test]
fn ra008_fixture_residual_dead_transfer() {
    let topo = Topology::a100(1, 4);
    let ring = rescc_algos::ring_allgather(4);
    let last = ring.max_step().0;
    let mut transfers = ring.transfers().to_vec();
    let extra = |step: u32| TransferRec {
        src: Rank::new(2),
        dst: Rank::new(1),
        step: Step::new(step),
        chunk: ChunkId::new(0),
        comm: CommType::Recv,
    };
    transfers.push(extra(last + 1)); // task A — dead after the frontier
    transfers.push(extra(last + 2)); // task B — overwrites A
    let spec =
        AlgoSpec::new("ring-plus-dead", OpType::AllGather, 4, transfers).expect("valid spec");
    let orig_dag = DepDag::build(&spec, &topo).expect("dag");

    // Fault frontier: every ring task completed, only the extras survive.
    let keep: Vec<bool> = orig_dag.tasks().iter().map(|t| t.step.0 > last).collect();
    assert_eq!(keep.iter().filter(|&&k| k).count(), 2);
    let completed: Vec<bool> = keep.iter().map(|&k| !k).collect();
    let (dag, orig_ids) = orig_dag.residual(&keep, &topo).expect("residual");

    let schedule = hpds(&dag);
    let alloc = TbAllocation::connection_based(&dag, &schedule, 1);
    let program = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    let report = analyze_residual(
        &AnalysisInput {
            spec: &spec,
            dag: &dag,
            schedule: &schedule,
            alloc: &alloc,
            program: &program,
            topo: &topo,
        },
        &AnalysisConfig::default(),
        &ResidualContext {
            orig_dag: &orig_dag,
            orig_ids: &orig_ids,
            completed: &completed,
        },
    );
    assert_only(&report, LintCode::RA008, Severity::Warn);
    assert_eq!(report.diagnostics().len(), 1, "only A is dead, B survives");
    let site = &report.diagnostics()[0].site;
    assert_eq!(site.step, Some(last + 1), "the dead task is A, not B");
    assert_eq!(site.chunk, Some(0));
}

/// The `rescc-lint --json` schema promises byte-identical output for
/// identical inputs (DESIGN.md §12). Two fully independent analysis runs
/// — rebuilt stacks, fresh oracles — must render the same JSON, both for
/// a dirty plan with counterexample paths and for a clean seed plan
/// whose report is just the certificate.
#[test]
fn json_output_is_deterministic() {
    let render = |spec: &AlgoSpec, topo: &Topology| -> String {
        let (dag, schedule, alloc, program) = full_stack(spec, topo);
        run(
            spec,
            topo,
            &dag,
            &schedule,
            &alloc,
            &program,
            &AnalysisConfig::default(),
        )
        .to_json()
    };

    let topo = Topology::a100(1, 4);
    let mut b = AlgoBuilder::new("reuse", OpType::AllGather, 4);
    b.recv(0, 1, 0, 0);
    b.recv(0, 3, 0, 0);
    b.recv(1, 2, 1, 0);
    b.recv(3, 1, 2, 0);
    let dirty = b.build().expect("spec");
    assert_eq!(render(&dirty, &topo), render(&dirty, &topo));

    let clean = rescc_algos::ring_allgather(4);
    let json = render(&clean, &topo);
    assert_eq!(json, render(&clean, &topo));
    assert!(json.contains("\"certificate\""));
}

/// The fixtures above stay minimal *because* the seed corpus is clean:
/// every lint must report zero diagnostics across all seed algorithms on
/// every Table 3 topology (the zero-false-positive acceptance bar).
#[test]
fn seed_algorithms_on_table3_topologies_are_clean() {
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).expect("table 3 topology");
        let nodes = topo.n_nodes();
        let g = topo.n_ranks() / nodes;
        let n = topo.n_ranks();
        let mut specs = vec![
            rescc_algos::hm_allgather(nodes, g),
            rescc_algos::hm_reduce_scatter(nodes, g),
            rescc_algos::hm_allreduce(nodes, g),
            rescc_algos::ring_allgather(n),
            rescc_algos::ring_reduce_scatter(n),
            rescc_algos::ring_allreduce(n),
        ];
        if n.is_power_of_two() {
            specs.push(rescc_algos::recursive_doubling_allgather(n));
            specs.push(rescc_algos::recursive_halving_reduce_scatter(n));
            specs.push(rescc_algos::dbtree_allreduce(n));
        }
        for spec in &specs {
            let (dag, schedule, alloc, program) = full_stack(spec, &topo);
            let report = run(
                spec,
                &topo,
                &dag,
                &schedule,
                &alloc,
                &program,
                &AnalysisConfig::default(),
            );
            assert!(
                report.is_clean(),
                "{} on {} not clean:\n{}",
                spec.name(),
                topo.name(),
                report.render_human()
            );
        }
    }
}
