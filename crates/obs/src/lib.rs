//! Cross-layer observability for ResCCL runs.
//!
//! This crate carries the pieces of the observability stack that sit
//! *above* the simulator: typed spans and counters emitted by the
//! compiler phases (`rescc-core`), the plan cache, and the
//! `Communicator` watchdog (`rescc-backends`), plus a Chrome
//! trace-event exporter ([`ChromeTrace`]) that merges those spans with
//! the simulator's own [`TraceEvent`](rescc_sim::TraceEvent) timeline
//! and [`BubbleInterval`](rescc_sim::BubbleInterval) attribution into a
//! single `chrome://tracing` / Perfetto-loadable JSON file.
//!
//! Two time domains coexist on one timeline:
//!
//! * [`TimeDomain::Sim`] — simulated nanoseconds (transfers, bubbles,
//!   fault instants, watchdog backoff waits). Deterministic for a given
//!   seed.
//! * [`TimeDomain::Wall`] — host wall-clock nanoseconds (compiler phase
//!   durations, cache lookups). Nondeterministic; consumers that need
//!   replay-stable reports must not enable wall-time spans.
//!
//! The crate is dependency-light by design: the workspace is air-gapped,
//! so JSON is written by hand ([`ChromeTrace::to_json`]) and read back
//! by a small recursive-descent parser ([`parse_json`]) that powers the
//! `rescc-obs-validate` CLI used in CI.

mod chrome;
mod json;

pub use chrome::{ArgValue, ChromeTrace};
pub use json::{
    parse_json, validate_chrome_trace, validate_chrome_trace_str, JsonValue, TraceSummary,
};

use rescc_core::PhaseTimings;
use rescc_sim::BubbleInterval;
use serde::{Deserialize, Serialize};

/// Which clock a span's `start_ns`/`dur_ns` are measured on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeDomain {
    /// Host wall-clock time (compiler phases, cache lookups).
    Wall,
    /// Simulated time (transfers, bubbles, watchdog waits).
    Sim,
}

impl TimeDomain {
    /// Stable lowercase name (used as a trace-event argument).
    pub fn as_str(&self) -> &'static str {
        match self {
            TimeDomain::Wall => "wall",
            TimeDomain::Sim => "sim",
        }
    }
}

/// Coarse classification of a span, mapped to the Chrome trace-event
/// `cat` field so Perfetto can filter by layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanCategory {
    /// A compiler phase (parsing, analysis, scheduling, lowering,
    /// sanitize).
    Compile,
    /// A plan-cache event (hit or miss).
    Cache,
    /// A simulated transfer invocation.
    Transfer,
    /// An attributed TB idle interval.
    Bubble,
    /// A fault transition.
    Fault,
    /// A watchdog action: retry attempt, backoff wait, mask+recompile.
    Recovery,
}

impl SpanCategory {
    /// Stable lowercase name (the trace-event `cat`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanCategory::Compile => "compile",
            SpanCategory::Cache => "cache",
            SpanCategory::Transfer => "transfer",
            SpanCategory::Bubble => "bubble",
            SpanCategory::Fault => "fault",
            SpanCategory::Recovery => "recovery",
        }
    }
}

/// One named interval on a named track.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Track the span renders on (e.g. `"compiler"`, `"watchdog"`,
    /// `"r0/tb2"`).
    pub track: String,
    /// Human-readable span name (e.g. `"scheduling"`, `"retry#1"`).
    pub name: String,
    /// Layer classification.
    pub category: SpanCategory,
    /// Clock the timestamps are measured on.
    pub domain: TimeDomain,
    /// Span start, ns in `domain`.
    pub start_ns: f64,
    /// Span duration, ns (non-negative).
    pub dur_ns: f64,
}

impl Span {
    /// Build a span, clamping a negative duration to zero.
    pub fn new(
        track: impl Into<String>,
        name: impl Into<String>,
        category: SpanCategory,
        domain: TimeDomain,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        Self {
            track: track.into(),
            name: name.into(),
            category,
            domain,
            start_ns,
            dur_ns: dur_ns.max(0.0),
        }
    }

    /// Span end, ns.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.dur_ns
    }
}

/// Counters and spans collected across one backend run: compile phases,
/// cache traffic, and watchdog activity. Carried on
/// `RunReport::obs` when the `Communicator` runs with observability
/// enabled.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsStats {
    /// Wall-clock nanoseconds spent in each compiler phase, summed over
    /// every compile this run performed (initial + recompiles).
    pub parsing_ns: f64,
    /// See [`parsing_ns`](Self::parsing_ns).
    pub analysis_ns: f64,
    /// See [`parsing_ns`](Self::parsing_ns).
    pub scheduling_ns: f64,
    /// See [`parsing_ns`](Self::parsing_ns).
    pub lowering_ns: f64,
    /// See [`parsing_ns`](Self::parsing_ns).
    pub sanitize_ns: f64,
    /// Plan-cache hits observed during this run.
    pub cache_hits: u64,
    /// Plan-cache misses (compiles) observed during this run.
    pub cache_misses: u64,
    /// The subset of [`cache_hits`](Self::cache_hits) served by waiting on
    /// another thread's in-flight compile of the same fingerprint
    /// (singleflight coalescing in a shared plan cache).
    #[serde(default)]
    pub cache_coalesced: u64,
    /// Watchdog retry attempts (excludes the first attempt).
    pub retries: u64,
    /// Watchdog mask+recompile cycles after permanent resource loss.
    pub recompiles: u64,
    /// The subset of [`recompiles`](Self::recompiles) served incrementally:
    /// the cached plan was rerouted and spliced
    /// (`Compiler::recompile_delta`) instead of recompiled from scratch.
    pub delta_recompiles: u64,
    /// Total simulated time spent in watchdog backoff waits, ns.
    pub backoff_ns: f64,
    /// Watchdog attempts resumed from a fault frontier (only the residual
    /// work re-ran) instead of restarted from scratch.
    #[serde(default)]
    pub resumes: u64,
    /// Healing events: a previously-masked resource was restored and the
    /// watchdog failed back to the healthier plan at a collective boundary.
    #[serde(default)]
    pub heals: u64,
    /// Every span recorded during the run, in emission order.
    pub spans: Vec<Span>,
}

impl ObsStats {
    /// Total wall-clock compile time accumulated, ns.
    pub fn compile_total_ns(&self) -> f64 {
        self.parsing_ns
            + self.analysis_ns
            + self.scheduling_ns
            + self.lowering_ns
            + self.sanitize_ns
    }

    /// Fold one compile's [`PhaseTimings`] into the counters and append
    /// one wall-time span per non-empty phase on `track`, phases laid
    /// end-to-end from `start_ns`. Returns the offset just past the last
    /// phase, so successive compiles stack on the same track.
    pub fn add_compile(&mut self, timings: &PhaseTimings, track: &str, start_ns: f64) -> f64 {
        let mut at = start_ns;
        for (name, dur) in timings.phases() {
            let ns = dur.as_secs_f64() * 1e9;
            match name {
                "parsing" => self.parsing_ns += ns,
                "analysis" => self.analysis_ns += ns,
                "scheduling" => self.scheduling_ns += ns,
                "lowering" => self.lowering_ns += ns,
                "sanitize" => self.sanitize_ns += ns,
                _ => unreachable!("unknown phase {name}"),
            }
            if ns > 0.0 {
                self.spans.push(Span::new(
                    track,
                    name,
                    SpanCategory::Compile,
                    TimeDomain::Wall,
                    at,
                    ns,
                ));
            }
            at += ns;
        }
        at
    }

    /// Record one plan-cache dispatch outcome: bumps the hit/miss/
    /// coalesced counters by event kind and appends a zero-width
    /// wall-time cache span at `at_ns`. This is the attribution path for
    /// dispatchers — the event comes from
    /// `PlanCache::get_or_compile_traced`, which hands each caller the
    /// event for *its own* dispatch (reading the shared journal's tail is
    /// wrong the moment two tenants share a cache).
    pub fn add_cache_event(&mut self, ev: &rescc_core::CacheEvent, at_ns: f64) {
        use rescc_core::CacheEventKind;
        let label = match ev.kind {
            CacheEventKind::Hit => "hit",
            CacheEventKind::Miss => "miss",
            CacheEventKind::Coalesced => "coalesced",
            CacheEventKind::Insert => "insert",
        };
        match ev.kind {
            CacheEventKind::Hit => self.cache_hits += 1,
            CacheEventKind::Miss => self.cache_misses += 1,
            CacheEventKind::Coalesced => {
                self.cache_hits += 1;
                self.cache_coalesced += 1;
            }
            CacheEventKind::Insert => {}
        }
        self.spans.push(Span::new(
            "cache",
            format!("{label} {:016x}", ev.fingerprint),
            SpanCategory::Cache,
            TimeDomain::Wall,
            at_ns,
            0.0,
        ));
    }

    /// Record a watchdog retry attempt as a sim-time recovery span.
    pub fn add_retry(&mut self, attempt: u64, start_ns: f64, dur_ns: f64) {
        self.retries += 1;
        self.spans.push(Span::new(
            "watchdog",
            format!("retry#{attempt}"),
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Record a watchdog backoff wait as a sim-time recovery span.
    pub fn add_backoff(&mut self, start_ns: f64, dur_ns: f64) {
        self.backoff_ns += dur_ns.max(0.0);
        self.spans.push(Span::new(
            "watchdog",
            "backoff",
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Record a mask+recompile cycle as a sim-time recovery span (the
    /// wall-clock compile cost is tracked separately via
    /// [`add_compile`](Self::add_compile)).
    pub fn add_recompile(&mut self, start_ns: f64, dur_ns: f64) {
        self.recompiles += 1;
        self.spans.push(Span::new(
            "watchdog",
            "mask+recompile",
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Record that a mask+recompile cycle was served incrementally — the
    /// watchdog rerouted and spliced the cached plan rather than running a
    /// full compile. Rides alongside [`add_recompile`](Self::add_recompile)
    /// (which counts the cycle itself); the splice's wall-clock phase cost
    /// is folded in via [`add_compile`](Self::add_compile) like any other
    /// compile.
    pub fn add_delta_recompile(&mut self, start_ns: f64, dur_ns: f64) {
        self.delta_recompiles += 1;
        self.spans.push(Span::new(
            "watchdog",
            "splice-delta",
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Record a watchdog frontier-resume attempt as a sim-time recovery
    /// span: instead of restarting from scratch, the attempt replayed the
    /// fault frontier and re-ran only the residual work.
    pub fn add_resume(&mut self, attempt: u64, start_ns: f64, dur_ns: f64) {
        self.resumes += 1;
        self.spans.push(Span::new(
            "watchdog",
            format!("resume#{attempt}"),
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Record a healing event: a masked resource was restored and the
    /// watchdog failed back to the healthier plan at a collective boundary.
    pub fn add_heal(&mut self, start_ns: f64, dur_ns: f64) {
        self.heals += 1;
        self.spans.push(Span::new(
            "watchdog",
            "heal",
            SpanCategory::Recovery,
            TimeDomain::Sim,
            start_ns,
            dur_ns,
        ));
    }

    /// Merge another run's stats into this one (used when a harness
    /// aggregates several collective calls).
    pub fn merge(&mut self, other: &ObsStats) {
        self.parsing_ns += other.parsing_ns;
        self.analysis_ns += other.analysis_ns;
        self.scheduling_ns += other.scheduling_ns;
        self.lowering_ns += other.lowering_ns;
        self.sanitize_ns += other.sanitize_ns;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_coalesced += other.cache_coalesced;
        self.retries += other.retries;
        self.recompiles += other.recompiles;
        self.delta_recompiles += other.delta_recompiles;
        self.backoff_ns += other.backoff_ns;
        self.resumes += other.resumes;
        self.heals += other.heals;
        self.spans.extend(other.spans.iter().cloned());
    }
}

/// One wall-time span per non-empty compiler phase, laid end-to-end
/// from `start_ns` on `track`. Free-standing flavor of
/// [`ObsStats::add_compile`] for consumers that only want the spans.
pub fn phase_spans(timings: &PhaseTimings, track: &str, start_ns: f64) -> Vec<Span> {
    let mut stats = ObsStats::default();
    stats.add_compile(timings, track, start_ns);
    stats.spans
}

/// Convert one attributed TB idle interval into a sim-time span on its
/// TB's track (`"r{rank}/tb{tb}"`), named after the bubble cause.
pub fn bubble_span(b: &BubbleInterval) -> Span {
    Span::new(
        format!("r{}/tb{}", b.rank, b.tb),
        b.cause.as_str(),
        SpanCategory::Bubble,
        TimeDomain::Sim,
        b.start_ns,
        b.duration_ns(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_sim::BubbleCause;
    use std::time::Duration;

    fn timings() -> PhaseTimings {
        PhaseTimings {
            parsing: Duration::ZERO,
            analysis: Duration::from_nanos(200),
            scheduling: Duration::from_nanos(300),
            lowering: Duration::from_nanos(500),
            sanitize: Duration::from_nanos(100),
        }
    }

    #[test]
    fn add_compile_stacks_phases_and_skips_empty_ones() {
        let mut stats = ObsStats::default();
        let end = stats.add_compile(&timings(), "compiler", 0.0);
        assert!((end - 1100.0).abs() < 1e-9);
        assert!((stats.compile_total_ns() - 1100.0).abs() < 1e-9);
        // parsing is zero → 4 spans, contiguous.
        assert_eq!(stats.spans.len(), 4);
        assert_eq!(stats.spans[0].name, "analysis");
        for w in stats.spans.windows(2) {
            assert!((w[0].end_ns() - w[1].start_ns).abs() < 1e-9);
        }
        // A second compile stacks after the first.
        let end2 = stats.add_compile(&timings(), "compiler", end);
        assert!((end2 - 2200.0).abs() < 1e-9);
        assert!((stats.analysis_ns - 400.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_helpers_count_and_span() {
        let mut stats = ObsStats::default();
        stats.add_retry(1, 0.0, 50.0);
        stats.add_backoff(50.0, 25.0);
        stats.add_recompile(75.0, 10.0);
        stats.add_resume(1, 85.0, 0.0);
        stats.add_heal(95.0, 0.0);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recompiles, 1);
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.heals, 1);
        assert!((stats.backoff_ns - 25.0).abs() < 1e-12);
        assert_eq!(stats.spans.len(), 5);
        assert!(stats.spans.iter().any(|s| s.name == "resume#1"));
        assert!(stats.spans.iter().any(|s| s.name == "heal"));
        assert!(stats
            .spans
            .iter()
            .all(|s| s.domain == TimeDomain::Sim && s.track == "watchdog"));
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ObsStats::default();
        a.add_compile(&timings(), "compiler", 0.0);
        let mut b = ObsStats::default();
        b.add_retry(1, 0.0, 5.0);
        b.add_resume(1, 5.0, 0.0);
        b.add_heal(6.0, 0.0);
        b.cache_hits = 3;
        a.merge(&b);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.retries, 1);
        assert_eq!(a.resumes, 1);
        assert_eq!(a.heals, 1);
        assert_eq!(a.spans.len(), 7);
    }

    #[test]
    fn bubble_span_maps_fields() {
        let b = BubbleInterval {
            tb_index: 7,
            rank: 2,
            tb: 3,
            task: 11,
            mb: 0,
            cause: BubbleCause::RendezvousWait,
            start_ns: 10.0,
            end_ns: 35.0,
        };
        let s = bubble_span(&b);
        assert_eq!(s.track, "r2/tb3");
        assert_eq!(s.name, "rendezvous_wait");
        assert_eq!(s.category, SpanCategory::Bubble);
        assert!((s.dur_ns - 25.0).abs() < 1e-12);
    }

    #[test]
    fn span_clamps_negative_duration() {
        let s = Span::new("t", "n", SpanCategory::Fault, TimeDomain::Sim, 5.0, -1.0);
        assert_eq!(s.dur_ns, 0.0);
        assert_eq!(s.end_ns(), 5.0);
    }
}
