//! Minimal JSON parsing and Chrome-trace validation.
//!
//! The workspace is air-gapped (the serde shim is a no-op), so the
//! `rescc-obs-validate` CLI and the CI observability job need an
//! in-tree way to check that emitted trace files actually parse and
//! obey the trace-event invariants. This module implements a small
//! recursive-descent JSON parser — enough for well-formed machine
//! output, not a general validator — plus [`validate_chrome_trace`].

use std::collections::BTreeSet;

/// A parsed JSON value. Object keys keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not reconstructed; a
                            // lone surrogate becomes U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Complete (`"ph":"X"`) events.
    pub complete: usize,
    /// Instant (`"ph":"i"`) events.
    pub instants: usize,
    /// Counter (`"ph":"C"`) samples.
    pub counters: usize,
    /// Metadata (`"ph":"M"`) events.
    pub metadata: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events.
    pub tracks: usize,
    /// Largest event timestamp seen, µs.
    pub max_ts_us: f64,
}

impl TraceSummary {
    /// Total non-metadata events.
    pub fn total_events(&self) -> usize {
        self.complete + self.instants + self.counters
    }
}

fn require_u32(ev: &JsonValue, key: &str, i: usize) -> Result<u32, String> {
    let v = ev
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("event {i}: missing numeric '{key}'"))?;
    if v < 0.0 || v != v.trunc() || v > u32::MAX as f64 {
        return Err(format!("event {i}: '{key}' = {v} is not a u32"));
    }
    Ok(v as u32)
}

/// Check a parsed document against the trace-event invariants the
/// observability stack relies on: a `traceEvents` array whose events
/// carry a known phase, non-negative integer `pid`/`tid`, finite
/// non-negative `ts` (and `dur` for complete events), with non-metadata
/// timestamps sorted non-decreasing.
pub fn validate_chrome_trace(root: &JsonValue) -> Result<TraceSummary, String> {
    let events = root
        .get("traceEvents")
        .ok_or("top-level object must carry 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' must be an array")?;
    let mut summary = TraceSummary::default();
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        ev.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'name'"))?;
        let pid = require_u32(ev, "pid", i)?;
        let tid = require_u32(ev, "tid", i)?;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric 'ts'"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: ts = {ts} is not a non-negative time"));
        }
        match ph {
            "M" => {
                summary.metadata += 1;
                continue; // metadata is untimed; skip ordering checks
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: complete event missing 'dur'"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: dur = {dur} is negative"));
                }
                summary.complete += 1;
                summary.max_ts_us = summary.max_ts_us.max(ts + dur);
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
        if ts < last_ts {
            return Err(format!(
                "event {i}: ts = {ts} precedes previous event at {last_ts} (trace not sorted)"
            ));
        }
        last_ts = ts;
        summary.max_ts_us = summary.max_ts_us.max(ts);
        tracks.insert((pid, tid));
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

/// Parse and validate in one step (the `rescc-obs-validate` entry
/// point).
pub fn validate_chrome_trace_str(text: &str) -> Result<TraceSummary, String> {
    validate_chrome_trace(&parse_json(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse_json(r#"{"a": [1, -2.5e1, "x\n", true, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3], JsonValue::Bool(true));
        assert_eq!(a[4], JsonValue::Null);
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        let s = "quote\" slash\\ nl\n tab\t ctrl\u{1}";
        let doc = format!("\"{}\"", escape_json(s));
        assert_eq!(parse_json(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn validator_accepts_minimal_trace() {
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0},
            {"name":"a","cat":"c","ph":"X","ts":0,"dur":5,"pid":0,"tid":1},
            {"name":"b","cat":"c","ph":"i","ts":3,"pid":0,"tid":2}
        ]}"#;
        let summary = validate_chrome_trace_str(doc).unwrap();
        assert_eq!(summary.complete, 1);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.metadata, 1);
        assert_eq!(summary.tracks, 2);
        assert_eq!(summary.total_events(), 2);
        assert!((summary.max_ts_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validator_rejects_violations() {
        // Unsorted timestamps.
        let unsorted = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0},
            {"name":"b","ph":"i","ts":1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace_str(unsorted)
            .unwrap_err()
            .contains("not sorted"));
        // Negative duration.
        let negdur = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace_str(negdur)
            .unwrap_err()
            .contains("negative"));
        // Missing pid.
        let nopid = r#"{"traceEvents":[{"name":"a","ph":"i","ts":0,"tid":0}]}"#;
        assert!(validate_chrome_trace_str(nopid).is_err());
        // Not even an object.
        assert!(validate_chrome_trace_str("[1,2,3]").is_err());
    }
}
