//! Chrome trace-event JSON builder.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto: a top-level object with a `traceEvents` array of complete
//! (`"ph":"X"`), instant (`"ph":"i"`), counter (`"ph":"C"`) and
//! metadata (`"ph":"M"`) events. Timestamps are microseconds; all adder
//! methods here take nanoseconds and convert.
//!
//! The workspace is air-gapped (the serde shim is a no-op), so the JSON
//! is written by hand with proper string escaping.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::escape_json;

/// A trace-event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Numeric argument.
    Num(f64),
    /// String argument.
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

#[derive(Clone, Debug)]
struct Event {
    name: String,
    cat: String,
    ph: char,
    ts_us: f64,
    dur_us: Option<f64>,
    pid: u32,
    tid: u32,
    args: Vec<(String, ArgValue)>,
}

/// Builder for one Chrome trace file. Tracks are addressed by
/// `(pid, tid)`; use [`name_process`](Self::name_process) /
/// [`name_thread`](Self::name_thread) to label them.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    meta: Vec<Event>,
    events: Vec<Event>,
}

fn us(ns: f64) -> f64 {
    let v = ns / 1e3;
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-metadata events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no non-metadata events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Label a process track (one per rank, or per layer such as the
    /// compiler).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.meta.push(Event {
            name: "process_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid: 0,
            args: vec![("name".into(), name.into())],
        });
    }

    /// Label a thread track (one per TB, or per span track).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.meta.push(Event {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            args: vec![("name".into(), name.into())],
        });
    }

    /// Add a complete (`"ph":"X"`) event spanning `[start_ns,
    /// start_ns + dur_ns)`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        start_ns: f64,
        dur_ns: f64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            ph: 'X',
            ts_us: us(start_ns),
            dur_us: Some(us(dur_ns.max(0.0))),
            pid,
            tid,
            args,
        });
    }

    /// Add a thread-scoped instant (`"ph":"i"`) event.
    pub fn add_instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_ns: f64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.into(),
            ph: 'i',
            ts_us: us(ts_ns),
            dur_us: None,
            pid,
            tid,
            args,
        });
    }

    /// Add a counter (`"ph":"C"`) sample; each `(series, value)` pair
    /// renders as one stacked area in the counter track.
    pub fn add_counter(&mut self, pid: u32, name: &str, ts_ns: f64, series: &[(&str, f64)]) {
        self.events.push(Event {
            name: name.into(),
            cat: "counter".into(),
            ph: 'C',
            ts_us: us(ts_ns),
            dur_us: None,
            pid,
            tid: 0,
            args: series
                .iter()
                .map(|(k, v)| ((*k).to_string(), ArgValue::Num(*v)))
                .collect(),
        });
    }

    /// Serialize to trace-event JSON: metadata first, then all events
    /// sorted by timestamp (stable, so same-timestamp events keep
    /// insertion order).
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<&Event> = self.events.iter().collect();
        sorted.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        let mut out = String::with_capacity(128 + 160 * (self.meta.len() + sorted.len()));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for ev in self.meta.iter().chain(sorted) {
            if !first {
                out.push(',');
            }
            first = false;
            write_event(&mut out, ev);
        }
        out.push_str("]}");
        out
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_event(out: &mut String, ev: &Event) {
    out.push_str("\n{\"name\":\"");
    out.push_str(&escape_json(&ev.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(&escape_json(&ev.cat));
    out.push_str("\",\"ph\":\"");
    out.push(ev.ph);
    out.push_str("\",\"ts\":");
    write_num(out, ev.ts_us);
    if let Some(dur) = ev.dur_us {
        out.push_str(",\"dur\":");
        write_num(out, dur);
    }
    if ev.ph == 'i' {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", ev.pid, ev.tid));
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(k));
            out.push_str("\":");
            match v {
                ArgValue::Num(n) => write_num(out, *n),
                ArgValue::Str(s) => {
                    out.push('"');
                    out.push_str(&escape_json(s));
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, validate_chrome_trace};

    #[test]
    fn builds_valid_sorted_trace() {
        let mut t = ChromeTrace::new();
        t.name_process(0, "rank 0");
        t.name_thread(0, 1, "tb 1");
        // Inserted out of order on purpose.
        t.add_complete(0, 1, "send", "transfer", 2000.0, 500.0, vec![]);
        t.add_complete(
            0,
            1,
            "startup",
            "bubble",
            0.0,
            1000.0,
            vec![("bytes".into(), 42u64.into())],
        );
        t.add_instant(0, 1, "nic down", "fault", 1500.0, vec![]);
        t.add_counter(0, "link 3", 1000.0, &[("active", 1.0)]);
        assert_eq!(t.len(), 4);
        let json = t.to_json();
        let root = parse_json(&json).expect("emitted JSON must parse");
        let summary = validate_chrome_trace(&root).expect("emitted JSON must validate");
        assert_eq!(summary.complete, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.metadata, 2);
        // Sorted: startup (ts 0) precedes send (ts 2).
        let startup = json.find("startup").unwrap();
        let send = json.find("\"send\"").unwrap();
        assert!(startup < send);
    }

    #[test]
    fn escapes_names() {
        let mut t = ChromeTrace::new();
        t.add_complete(0, 0, "a\"b\\c\n", "cat", 0.0, 1.0, vec![]);
        let json = t.to_json();
        assert!(json.contains(r#"a\"b\\c\n"#));
        assert!(parse_json(&json).is_ok());
    }

    #[test]
    fn negative_duration_clamped_nonfinite_zeroed() {
        let mut t = ChromeTrace::new();
        t.add_complete(0, 0, "x", "c", 10.0, -5.0, vec![]);
        t.add_instant(0, 0, "y", "c", f64::NAN, vec![]);
        let root = parse_json(&t.to_json()).unwrap();
        validate_chrome_trace(&root).expect("clamped events still validate");
    }

    #[test]
    fn integer_timestamps_have_no_fraction() {
        let mut t = ChromeTrace::new();
        t.add_complete(0, 0, "x", "c", 3_000.0, 1_000.0, vec![]);
        let json = t.to_json();
        assert!(json.contains("\"ts\":3,"));
        assert!(json.contains("\"dur\":1"));
    }
}
