//! Validate a Chrome trace-event JSON file emitted by `rescc-profile`.
//!
//! Usage: `rescc-obs-validate <trace.json> [more.json ...]`
//!
//! Exit code 0 when every file parses and obeys the trace-event
//! invariants (known phases, non-negative integer pid/tid, finite
//! non-negative ts/dur, sorted timestamps); 1 otherwise. Used by the CI
//! observability job.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: rescc-obs-validate <trace.json> [more.json ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(text) => match rescc_obs::validate_chrome_trace_str(&text) {
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
                Ok(s) => {
                    println!(
                        "{path}: OK — {} events ({} spans, {} instants, {} counters) \
                         on {} tracks, {:.3} ms span",
                        s.total_events(),
                        s.complete,
                        s.instants,
                        s.counters,
                        s.tracks,
                        s.max_ts_us / 1e3,
                    );
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
