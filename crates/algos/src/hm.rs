//! The hierarchical mesh (HM) expert algorithms of Appendix A, generalized
//! to any `nodes × gpus_per_node` cluster.
//!
//! * **HM-AllGather** — two stages: (1) every GPU broadcasts its own chunk
//!   to all local peers (full mesh) and starts it around the inter-node
//!   ring of ring-aligned peers; (2) every GPU rebroadcasts the chunks it
//!   received from remote ring peers to its local peers.
//! * **HM-AllReduce** — four stages (the Fig. 16 program):
//!   intra-ReduceScatter (full mesh), inter-ReduceScatter (ring over
//!   ring-aligned GPUs), inter-AllGather (same ring), intra-AllGather
//!   (full mesh).
//! * **HM-ReduceScatter** — the reversal of HM-AllGather.

use crate::compose::reverse_allgather;
use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

/// HM-AllGather for a `nodes × g` cluster.
pub fn hm_allgather(nodes: u32, g: u32) -> AlgoSpec {
    assert!(nodes >= 1 && g >= 1 && nodes * g >= 2);
    let n = nodes * g;
    let mut b = AlgoBuilder::new(format!("hm-ag-{nodes}x{g}"), OpType::AllGather, n);
    for node in 0..nodes {
        for r in 0..g {
            let src = node * g + r;
            let own = src; // each GPU owns the chunk with its rank id
                           // Broadcast 1a: full-mesh intra broadcast of the own chunk.
            for offset in 0..g - 1 {
                let dst = (r + offset + 1) % g + node * g;
                b.recv(src, dst, offset, own);
            }
            // Broadcast 1b: the own chunk travels the inter-node ring of
            // ring-aligned peers; hop h moves it from node+h to node+h+1.
            for hop in 0..nodes.saturating_sub(1) {
                let from = (src + hop * g) % n;
                let to = (src + (hop + 1) * g) % n;
                b.recv(from, to, hop, own);
            }
            // Broadcast 2: after the chunk owned by (j, r) arrives at
            // (node', r) at ring hop h (step h), rank (node', r)
            // rebroadcasts it to all local peers.
            for hop in 0..nodes.saturating_sub(1) {
                let holder = (src + (hop + 1) * g) % n;
                let holder_node = holder / g;
                let holder_local = holder % g;
                for offset in 0..g - 1 {
                    let dst = (holder_local + offset + 1) % g + holder_node * g;
                    // Any step strictly after the arrival step `hop`.
                    b.recv(holder, dst, nodes + hop, own);
                }
            }
        }
    }
    b.build().expect("hm allgather is well-formed")
}

/// HM-ReduceScatter: the reversal of [`hm_allgather`].
pub fn hm_reduce_scatter(nodes: u32, g: u32) -> AlgoSpec {
    reverse_allgather(&hm_allgather(nodes, g)).with_name(format!("hm-rs-{nodes}x{g}"))
}

/// HM-AllReduce for a `nodes × g` cluster — the Fig. 16 program,
/// parameterized.
pub fn hm_allreduce(nodes: u32, g: u32) -> AlgoSpec {
    assert!(
        nodes * g >= 2,
        "HM-AllReduce needs at least two GPUs in total"
    );
    let n = nodes * g;
    let mut b = AlgoBuilder::new(format!("hm-ar-{nodes}x{g}"), OpType::AllReduce, n);
    // Phase 1 — intra-node ReduceScatter over the full mesh
    // (Fig. 16 lines 5–12).
    for node in 0..nodes {
        for r in 0..g {
            for base in 0..nodes {
                for offset in 0..g - 1 {
                    let src = g * node + r;
                    let dst = (r + offset + 1) % g + g * node;
                    let step = base * (g - 1) + offset;
                    let chunk = (dst + base * g) % n;
                    b.rrc(src, dst, step, chunk);
                }
            }
        }
    }
    // Phase 2 — inter-node ReduceScatter over the ring of ring-aligned
    // peers (lines 13–19).
    for node in 0..nodes {
        for r in 0..g {
            for base in 0..nodes.saturating_sub(1) {
                let src = g * node + r;
                let dst = (src + g) % n;
                let step = nodes * (g - 1) + base;
                let chunk = (src + n - base * g) % n;
                b.rrc(src, dst, step, chunk);
            }
        }
    }
    // Phase 3 — inter-node AllGather over the same ring (lines 20–27).
    for node in 0..nodes {
        for r in 0..g {
            for base in 0..nodes.saturating_sub(1) {
                let src = g * node + r;
                let dst = (src + g) % n;
                let step = nodes * (g - 1) + nodes - 1 + base;
                let chunk = (src + n - ((base + nodes - 1) % nodes) * g) % n;
                b.recv(src, dst, step, chunk);
            }
        }
    }
    // Phase 4 — intra-node AllGather over the full mesh (lines 28–35).
    for node in 0..nodes {
        for r in 0..g {
            for base in 0..nodes {
                for offset in 0..g - 1 {
                    let src = g * node + r;
                    let dst = (r + offset + 1) % g + g * node;
                    let step = nodes * (g - 1) + 2 * nodes - 2 + base;
                    let chunk = (src + base * g) % n;
                    b.recv(src, dst, step, chunk);
                }
            }
        }
    }
    b.build().expect("hm allreduce is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;

    #[test]
    fn hm_allgather_correct_across_shapes() {
        for (nodes, g) in [(2u32, 2u32), (2, 4), (4, 2), (2, 8), (4, 4)] {
            run_and_validate(&hm_allgather(nodes, g), &Topology::a100(nodes, g));
        }
    }

    #[test]
    fn hm_allgather_single_node_degenerates_to_mesh() {
        let s = hm_allgather(1, 8);
        // Pure full mesh: 8 ranks × 7 peers.
        assert_eq!(s.transfers().len(), 8 * 7);
        run_and_validate(&s, &Topology::a100(1, 8));
    }

    #[test]
    fn hm_reduce_scatter_correct() {
        for (nodes, g) in [(2u32, 4u32), (4, 4)] {
            run_and_validate(&hm_reduce_scatter(nodes, g), &Topology::a100(nodes, g));
        }
    }

    #[test]
    fn hm_allreduce_correct_across_shapes() {
        for (nodes, g) in [(2u32, 2u32), (2, 4), (4, 2), (4, 4)] {
            run_and_validate(&hm_allreduce(nodes, g), &Topology::a100(nodes, g));
        }
    }

    #[test]
    fn hm_allreduce_degenerate_shapes() {
        // g = 1: pure inter-node ring phases; nodes = 1: pure intra mesh.
        run_and_validate(&hm_allreduce(4, 1), &Topology::a100(4, 1));
        run_and_validate(&hm_allreduce(1, 8), &Topology::a100(1, 8));
    }

    #[test]
    fn hm_allreduce_paper_configuration() {
        // The Fig. 16 shape: 4 nodes × 8 GPUs = 32 ranks.
        let s = hm_allreduce(4, 8);
        assert_eq!(s.n_ranks(), 32);
        run_and_validate(&s, &Topology::a100(4, 8));
    }
}
