//! Synthesizer emulations.
//!
//! The paper runs algorithms produced by the TACCL and TECCL synthesizers.
//! Those tools are MILP/flow solvers tied to the authors' setups; what the
//! evaluation actually depends on is the *structure* of their output:
//! correct collectives whose link load is **imbalanced** ("TACCL's solver
//! abstracts away certain real-world details, yielding synthesized
//! algorithms that distribute link load unevenly. TECCL shows similar, if
//! not worse, inefficiencies" — §5.4, and the 30–50% global link
//! utilizations of Table 1). The emulations below reproduce exactly those
//! structural properties:
//!
//! * [`taccl_like_allgather`] — a sketch-style hierarchical algorithm that
//!   funnels all inter-node traffic through one relay GPU per node (a
//!   common TACCL-sketch outcome): correct, but NIC load is concentrated
//!   and non-relay links idle.
//! * [`teccl_like_allgather`] — a flow-style dual-ring whose chunk split is
//!   skewed (¾ of the chunks on the forward ring, ¼ on the reverse):
//!   correct, but the forward direction saturates while the reverse idles.
//!
//! AllReduce variants are assembled by reversal + composition, the same
//! "general assembly technique" the paper used to extend TECCL.

use crate::compose::{compose_allreduce, reverse_allgather};
use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

/// TACCL-like AllGather: relay-based hierarchical gather/forward/broadcast.
pub fn taccl_like_allgather(nodes: u32, g: u32) -> AlgoSpec {
    assert!(nodes >= 1 && g >= 1 && nodes * g >= 2);
    let n = nodes * g;
    let mut b = AlgoBuilder::new(format!("taccl-like-ag-{nodes}x{g}"), OpType::AllGather, n);
    let relay = |node: u32| node * g; // local rank 0 relays everything

    // Step 0: local gather — every GPU hands its chunk to the node relay.
    for node in 0..nodes {
        for r in 1..g {
            let src = node * g + r;
            b.recv(src, relay(node), 0, src);
        }
    }
    // Inter hops: relay ring forwards whole node bundles. At hop h the
    // relay of node i forwards node (i − h)'s bundle to node i+1.
    for h in 0..nodes.saturating_sub(1) {
        for i in 0..nodes {
            let owner_node = (i + nodes - h) % nodes;
            for r in 0..g {
                let chunk = owner_node * g + r;
                b.recv(relay(i), relay((i + 1) % nodes), 1 + h, chunk);
            }
        }
    }
    // Local broadcast: the relay distributes every chunk to every local
    // GPU that does not already own it.
    for node in 0..nodes {
        for chunk in 0..n {
            let owner_node = chunk / g;
            // Bundle of node j arrives at node i's relay at hop
            // h = (i − j − 1) mod nodes, i.e. at step 1 + h; the node's own
            // bundle is complete after the step-0 gather.
            let bcast_step = if owner_node == node {
                1
            } else {
                let h = (node + nodes - owner_node - 1) % nodes;
                2 + h
            };
            for r in 0..g {
                let dst = node * g + r;
                if dst == chunk || dst == relay(node) {
                    continue; // owner already has it; relay holds it
                }
                b.recv(relay(node), dst, bcast_step.max(1), chunk);
            }
        }
    }
    b.build().expect("taccl-like allgather is well-formed")
}

/// TACCL-like AllReduce: reversed relay AllGather (a reduce-to-relay tree)
/// composed with the relay AllGather.
pub fn taccl_like_allreduce(nodes: u32, g: u32) -> AlgoSpec {
    let ag = taccl_like_allgather(nodes, g);
    compose_allreduce(
        format!("taccl-like-ar-{nodes}x{g}"),
        &reverse_allgather(&ag),
        &ag,
    )
}

/// TECCL-like AllGather: skewed dual ring. Chunks with `c % 4 != 0` travel
/// the forward ring; the remaining quarter travel the reverse ring. The
/// forward direction carries 3× the load of the reverse — the uneven link
/// load characteristic of flow-solver outputs on real topologies.
pub fn teccl_like_allgather(n: u32) -> AlgoSpec {
    assert!(n >= 2);
    let mut b = AlgoBuilder::new(format!("teccl-like-ag-{n}"), OpType::AllGather, n);
    for c in 0..n {
        if c % 4 != 0 {
            // Forward ring: owner c pushes clockwise, n−1 hops.
            for h in 0..n - 1 {
                let from = (c + h) % n;
                let to = (c + h + 1) % n;
                b.recv(from, to, h, c);
            }
        } else {
            // Reverse ring: owner c pushes counter-clockwise.
            for h in 0..n - 1 {
                let from = (c + n - h) % n;
                let to = (c + n - h - 1) % n;
                b.recv(from, to, h, c);
            }
        }
    }
    b.build().expect("teccl-like allgather is well-formed")
}

/// TECCL-like AllReduce, assembled by reversal + composition (the paper's
/// own technique, since TECCL does not natively synthesize AllReduce).
pub fn teccl_like_allreduce(n: u32) -> AlgoSpec {
    let ag = teccl_like_allgather(n);
    compose_allreduce(format!("teccl-like-ar-{n}"), &reverse_allgather(&ag), &ag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;
    use std::collections::HashMap;

    #[test]
    fn taccl_like_allgather_correct() {
        for (nodes, g) in [(1u32, 8u32), (2, 4), (2, 8), (4, 4)] {
            run_and_validate(&taccl_like_allgather(nodes, g), &Topology::a100(nodes, g));
        }
    }

    #[test]
    fn taccl_like_allreduce_correct() {
        for (nodes, g) in [(2u32, 4u32), (4, 4)] {
            run_and_validate(&taccl_like_allreduce(nodes, g), &Topology::a100(nodes, g));
        }
    }

    #[test]
    fn teccl_like_allgather_correct() {
        run_and_validate(&teccl_like_allgather(8), &Topology::a100(1, 8));
        run_and_validate(&teccl_like_allgather(16), &Topology::a100(2, 8));
    }

    #[test]
    fn teccl_like_allreduce_correct() {
        run_and_validate(&teccl_like_allreduce(8), &Topology::a100(2, 4));
    }

    #[test]
    fn taccl_like_concentrates_load_on_relays() {
        // The defining property: relay connections carry far more traffic
        // than any non-relay connection.
        let s = taccl_like_allgather(2, 8);
        let mut per_src: HashMap<u32, usize> = HashMap::new();
        for t in s.transfers() {
            *per_src.entry(t.src.0).or_default() += 1;
        }
        let relay_load = per_src[&0];
        let non_relay = per_src.get(&1).copied().unwrap_or(0);
        assert!(
            relay_load >= 5 * non_relay.max(1),
            "relay {relay_load} vs non-relay {non_relay}"
        );
    }

    #[test]
    fn teccl_like_skews_ring_directions() {
        let s = teccl_like_allgather(16);
        let forward = s
            .transfers()
            .iter()
            .filter(|t| t.dst.0 == (t.src.0 + 1) % 16)
            .count();
        let reverse = s.transfers().len() - forward;
        assert!(
            forward >= 2 * reverse,
            "forward {forward} reverse {reverse}"
        );
    }
}
