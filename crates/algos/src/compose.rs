//! Spec combinators: reversal and composition.
//!
//! * [`reverse_allgather`] turns an AllGather into a ReduceScatter by
//!   reversing every transfer (a broadcast tree, run backwards with
//!   `recvReduceCopy`, is a reduction tree) — the "general assembly
//!   technique" the paper used to build a TECCL-AllReduce.
//! * [`compose_allreduce`] concatenates a ReduceScatter phase and an
//!   AllGather phase with a step offset, the standard AllReduce assembly.

use rescc_lang::{AlgoBuilder, AlgoSpec, CommType, OpType};

/// Reverse an AllGather into a ReduceScatter.
///
/// Every transfer `(src → dst, step s, chunk c, recv)` becomes
/// `(dst → src, step S_max − s, chunk c, rrc)`: data flows back along the
/// same edges in opposite order, accumulating partial reductions toward
/// each chunk's owner.
pub fn reverse_allgather(ag: &AlgoSpec) -> AlgoSpec {
    assert_eq!(
        ag.op(),
        OpType::AllGather,
        "reversal is defined for AllGather algorithms"
    );
    let max_step = ag.max_step().0;
    let mut b = AlgoBuilder::new(
        format!("{}-reversed-rs", ag.name()),
        OpType::ReduceScatter,
        ag.n_ranks(),
    );
    for t in ag.transfers() {
        b.transfer(
            t.dst.0,
            t.src.0,
            max_step - t.step.0,
            t.chunk.0,
            CommType::Rrc,
        );
    }
    b.build().expect("reversal preserves well-formedness")
}

/// Compose a ReduceScatter and an AllGather into an AllReduce.
///
/// The AllGather's steps are shifted past the ReduceScatter's so that, per
/// chunk, gathering starts only after the owner's reduction completed (data
/// dependencies on the owner's buffer slot enforce the ordering).
pub fn compose_allreduce(name: impl Into<String>, rs: &AlgoSpec, ag: &AlgoSpec) -> AlgoSpec {
    assert_eq!(rs.op(), OpType::ReduceScatter);
    assert_eq!(ag.op(), OpType::AllGather);
    assert_eq!(rs.n_ranks(), ag.n_ranks(), "phase rank counts must match");
    let offset = rs.max_step().0 + 1;
    let mut b = AlgoBuilder::new(name, OpType::AllReduce, rs.n_ranks());
    for t in rs.transfers() {
        b.transfer(t.src.0, t.dst.0, t.step.0, t.chunk.0, t.comm);
    }
    for t in ag.transfers() {
        b.transfer(t.src.0, t.dst.0, t.step.0 + offset, t.chunk.0, t.comm);
    }
    b.build().expect("composition preserves well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_allgather, ring_reduce_scatter};
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;

    #[test]
    fn reversed_ring_allgather_is_correct_reduce_scatter() {
        let rs = reverse_allgather(&ring_allgather(8));
        assert_eq!(rs.op(), OpType::ReduceScatter);
        run_and_validate(&rs, &Topology::a100(1, 8));
        run_and_validate(&rs, &Topology::a100(2, 4));
    }

    #[test]
    fn composition_of_reversed_ag_is_correct_allreduce() {
        let ag = ring_allgather(8);
        let ar = compose_allreduce("assembled-ar", &reverse_allgather(&ag), &ag);
        run_and_validate(&ar, &Topology::a100(2, 4));
    }

    #[test]
    fn composition_with_native_rs_is_correct() {
        let ar = compose_allreduce("rs+ag", &ring_reduce_scatter(4), &ring_allgather(4));
        run_and_validate(&ar, &Topology::a100(1, 4));
    }

    #[test]
    #[should_panic(expected = "defined for AllGather")]
    fn reversing_non_allgather_panics() {
        reverse_allgather(&ring_reduce_scatter(4));
    }
}
