//! ResCCLang source generators for the expert algorithms.
//!
//! These produce exactly the DSL programs of the paper (Fig. 16 for
//! HM-AllReduce), parameterized by cluster shape. The test suite
//! cross-validates that evaluating the generated source yields the same
//! [`AlgoSpec`] as the native Rust builders — exercising the whole
//! lexer/parser/evaluator stack against a second implementation.

/// The ring AllGather program (the Fig. 5(a) example, generalized).
pub fn ring_allgather_source(n: u32) -> String {
    format!(
        r#"def ResCCLAlgo(nRanks={n}, AlgoName="ring-ag-{n}", OpType="Allgather"):
    N = nRanks
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
"#
    )
}

/// The HM-AllGather program of Appendix A, generalized to `nodes × g`.
pub fn hm_allgather_source(nodes: u32, g: u32) -> String {
    let n = nodes * g;
    format!(
        r#"def ResCCLAlgo(nRanks={n}, AlgoName="hm-ag-{nodes}x{g}", OpType="Allgather", GPUPerNode={g}, NICPerNode={nics}):
    nNodes = {nodes}
    nGpusperNode = {g}
    nChunks = nNodes * nGpusperNode
    for node in range(0, nNodes):
        for r in range(0, nGpusperNode):
            src = node * nGpusperNode + r
            for offset in range(0, nGpusperNode - 1):
                dst = (r + offset + 1) % nGpusperNode + node * nGpusperNode
                transfer(src, dst, offset, src, recv)
            for hop in range(0, nNodes - 1):
                fromRank = (src + hop * nGpusperNode) % nChunks
                toRank = (src + (hop + 1) * nGpusperNode) % nChunks
                transfer(fromRank, toRank, hop, src, recv)
            for hop in range(0, nNodes - 1):
                holder = (src + (hop + 1) * nGpusperNode) % nChunks
                holderNode = holder / nGpusperNode
                holderLocal = holder % nGpusperNode
                for offset in range(0, nGpusperNode - 1):
                    dst = (holderLocal + offset + 1) % nGpusperNode + holderNode * nGpusperNode
                    transfer(holder, dst, nNodes + hop, src, recv)
"#,
        nics = (g / 2).max(1),
    )
}

/// The HM-AllReduce program of Fig. 16, generalized to `nodes × g`.
pub fn hm_allreduce_source(nodes: u32, g: u32) -> String {
    let n = nodes * g;
    format!(
        r#"def ResCCLAlgo(nRanks={n}, nChannels=4, nWarps=16, AlgoName="hm-ar-{nodes}x{g}", OpType="Allreduce", GPUPerNode={g}, NICPerNode={nics}):
    nNodes = {nodes}
    nGpusperNode = {g}
    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) % nNodes * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
"#,
        nics = (g / 2).max(1),
    )
}

#[cfg(test)]
mod tests {
    use crate::hm::{hm_allgather, hm_allreduce};
    use crate::ring::ring_allgather;
    use rescc_lang::eval_source;

    #[test]
    fn hm_allgather_dsl_matches_builder() {
        for (nodes, g) in [(2u32, 4u32), (4, 8), (2, 2)] {
            let from_dsl = eval_source(&super::hm_allgather_source(nodes, g)).unwrap();
            assert_eq!(from_dsl, hm_allgather(nodes, g), "{nodes}x{g}");
        }
    }

    #[test]
    fn ring_dsl_matches_builder() {
        for n in [4u32, 8, 16] {
            let from_dsl = eval_source(&super::ring_allgather_source(n)).unwrap();
            assert_eq!(from_dsl, ring_allgather(n));
        }
    }

    #[test]
    fn hm_allreduce_dsl_matches_builder() {
        for (nodes, g) in [(2u32, 4u32), (4, 8), (2, 8)] {
            let from_dsl = eval_source(&super::hm_allreduce_source(nodes, g)).unwrap();
            let native = hm_allreduce(nodes, g);
            assert_eq!(
                from_dsl.transfers().len(),
                native.transfers().len(),
                "{nodes}x{g}"
            );
            assert_eq!(from_dsl, native, "{nodes}x{g}");
        }
    }
}
