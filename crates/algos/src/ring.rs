//! Ring collectives — the standard NCCL algorithms.
//!
//! * AllGather: each rank forwards chunks around the ring; after `n−1`
//!   steps everyone holds everything.
//! * ReduceScatter: chunk `c` starts at rank `c+1` and accumulates around
//!   the ring, ending fully reduced at its owner `c`.
//! * AllReduce: ReduceScatter followed by AllGather (the classic
//!   bandwidth-optimal composition).

use crate::compose::compose_allreduce;
use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

/// Ring AllGather over `n` ranks.
pub fn ring_allgather(n: u32) -> AlgoSpec {
    assert!(n >= 2);
    let mut b = AlgoBuilder::new(format!("ring-ag-{n}"), OpType::AllGather, n);
    for r in 0..n {
        let peer = (r + 1) % n;
        for step in 0..n - 1 {
            // At step s, rank r forwards chunk (r - s) mod n.
            b.recv(r, peer, step, (r + n - step) % n);
        }
    }
    b.build().expect("ring allgather is well-formed")
}

/// Ring ReduceScatter over `n` ranks.
pub fn ring_reduce_scatter(n: u32) -> AlgoSpec {
    assert!(n >= 2);
    let mut b = AlgoBuilder::new(format!("ring-rs-{n}"), OpType::ReduceScatter, n);
    for r in 0..n {
        let peer = (r + 1) % n;
        for step in 0..n - 1 {
            // At step s, rank r forwards the accumulating chunk
            // (r - s - 1) mod n toward its owner.
            b.rrc(r, peer, step, (r + n - step - 1) % n);
        }
    }
    b.build().expect("ring reduce-scatter is well-formed")
}

/// Ring AllReduce: ReduceScatter then AllGather.
pub fn ring_allreduce(n: u32) -> AlgoSpec {
    compose_allreduce(
        format!("ring-ar-{n}"),
        &ring_reduce_scatter(n),
        &ring_allgather(n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;

    #[test]
    fn ring_allgather_shape() {
        let s = ring_allgather(8);
        assert_eq!(s.transfers().len(), 8 * 7);
        assert_eq!(s.connections().len(), 8);
    }

    #[test]
    fn ring_allgather_correct_on_sim() {
        run_and_validate(&ring_allgather(8), &Topology::a100(1, 8));
        run_and_validate(&ring_allgather(8), &Topology::a100(2, 4));
    }

    #[test]
    fn ring_reduce_scatter_correct_on_sim() {
        run_and_validate(&ring_reduce_scatter(8), &Topology::a100(1, 8));
        run_and_validate(&ring_reduce_scatter(8), &Topology::a100(2, 4));
    }

    #[test]
    fn ring_allreduce_correct_on_sim() {
        run_and_validate(&ring_allreduce(4), &Topology::a100(1, 4));
        run_and_validate(&ring_allreduce(8), &Topology::a100(2, 4));
    }
}
