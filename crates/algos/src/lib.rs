//! # rescc-algos
//!
//! The collective algorithm library: expert-designed algorithms (ring,
//! double binary tree, the hierarchical-mesh HM family of Appendix A),
//! synthesizer emulations (TACCL-like, TECCL-like), spec combinators
//! (reversal, AllReduce composition) and ResCCLang source generators.
//!
//! Every algorithm here is machine-verified: the test suite compiles each
//! through the full ResCCL pipeline and checks the simulated buffers
//! against the collective's contract.
//!
//! ```
//! use rescc_algos::{hm_allreduce, ring_allgather};
//!
//! let ar = hm_allreduce(4, 8); // the paper's 32-GPU Fig. 16 program
//! assert_eq!(ar.n_ranks(), 32);
//! let ag = ring_allgather(8);
//! assert_eq!(ag.transfers().len(), 8 * 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod dsl;
mod hm;
mod nccl_rings;
mod recursive;
mod ring;
mod synth;
mod testutil;
mod tree;

pub use compose::{compose_allreduce, reverse_allgather};
pub use dsl::{hm_allgather_source, hm_allreduce_source, ring_allgather_source};
pub use hm::{hm_allgather, hm_allreduce, hm_reduce_scatter};
pub use nccl_rings::{nccl_rings_allgather, nccl_rings_allreduce, nccl_rings_reduce_scatter};
pub use recursive::{
    recursive_doubling_allgather, recursive_halving_doubling_allreduce,
    recursive_halving_reduce_scatter,
};
pub use ring::{ring_allgather, ring_allreduce, ring_reduce_scatter};
pub use synth::{
    taccl_like_allgather, taccl_like_allreduce, teccl_like_allgather, teccl_like_allreduce,
};
pub use tree::dbtree_allreduce;
