//! Double-binary-tree AllReduce — NCCL's latency-optimized standard
//! algorithm (the "tree" in §2.1's standard-algorithm family).
//!
//! Each chunk is reduced up a binary tree to that tree's root and broadcast
//! back down. Two complementary trees (rank-rotated copies of the same
//! heap shape) each own half of the chunks, so every rank does useful work
//! in both directions — the classic double-binary-tree construction.

use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

/// Heap-shaped binary tree over `n` ranks, rotated by `shift`:
/// heap index `i` maps to rank `(i + shift) % n`; children of `i` are
/// `2i+1` and `2i+2`.
fn parent_rank(i: u32, shift: u32, n: u32) -> Option<u32> {
    if i == 0 {
        None
    } else {
        Some(((i - 1) / 2 + shift) % n)
    }
}

fn depth(i: u32) -> u32 {
    (i + 1).ilog2()
}

/// Double-binary-tree AllReduce over `n` ranks. Chunk `c` is handled by
/// tree `c % 2`.
pub fn dbtree_allreduce(n: u32) -> AlgoSpec {
    assert!(n >= 2);
    let mut b = AlgoBuilder::new(format!("dbtree-ar-{n}"), OpType::AllReduce, n);
    let max_depth = depth(n - 1);
    for c in 0..n {
        let shift = c % 2;
        for i in 1..n {
            let child = (i + shift) % n;
            let parent = parent_rank(i, shift, n).expect("non-root has a parent");
            // Reduce up: deeper edges first.
            let reduce_step = max_depth - depth(i);
            b.rrc(child, parent, reduce_step, c);
            // Broadcast down: shallower edges first, strictly after the
            // whole reduction finished at the root.
            let bcast_step = 2 * max_depth + 1 + depth(i);
            b.recv(parent, child, bcast_step, c);
        }
    }
    b.build()
        .expect("double binary tree allreduce is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;

    #[test]
    fn dbtree_correct_various_sizes() {
        for n in [2u32, 4, 8] {
            run_and_validate(&dbtree_allreduce(n), &Topology::a100(1, n));
        }
        run_and_validate(&dbtree_allreduce(8), &Topology::a100(2, 4));
        run_and_validate(&dbtree_allreduce(16), &Topology::a100(2, 8));
    }

    #[test]
    fn dbtree_uses_two_trees() {
        let s = dbtree_allreduce(8);
        // Chunk 0 reduces to rank 0 (shift 0); chunk 1 to rank 1 (shift 1).
        let roots: Vec<u32> = (0..2)
            .map(|c| {
                // The root is the rank that never sends a reduce for chunk c.
                let senders: std::collections::HashSet<u32> = s
                    .transfers()
                    .iter()
                    .filter(|t| t.chunk.0 == c && t.comm == rescc_lang::CommType::Rrc)
                    .map(|t| t.src.0)
                    .collect();
                (0..8).find(|r| !senders.contains(r)).unwrap()
            })
            .collect();
        assert_ne!(roots[0], roots[1], "the two trees must have distinct roots");
    }

    #[test]
    fn dbtree_depth_is_logarithmic() {
        let s = dbtree_allreduce(8);
        assert!(s.max_step().0 <= 2 * 3 + 1 + 3);
    }
}
