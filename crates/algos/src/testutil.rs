//! Test helper: compile an algorithm through the full ResCCL pipeline and
//! run it on the simulator with data validation enabled.

#![cfg(test)]

use rescc_alloc::TbAllocation;
use rescc_ir::{DepDag, MicroBatchPlan};
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_lang::AlgoSpec;
use rescc_sched::hpds;
use rescc_sim::{simulate, SimConfig, SimReport};
use rescc_topology::Topology;

/// Compile `spec` with the full ResCCL pipeline (HPDS + state-based TBs +
/// task-level kernel) and simulate a small buffer with data validation;
/// panics on any scheduling or correctness failure. Returns the report so
/// callers can assert on timing/utilization too.
pub fn run_and_validate(spec: &AlgoSpec, topo: &Topology) -> SimReport {
    let dag = DepDag::build(spec, topo).unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    let sched = hpds(&dag);
    sched
        .validate(&dag)
        .unwrap_or_else(|e| panic!("{} schedule invalid: {e}", spec.name()));
    let alloc = TbAllocation::state_based(&dag, &sched);
    alloc
        .validate(&dag, &sched)
        .unwrap_or_else(|e| panic!("{} allocation invalid: {e}", spec.name()));
    let prog = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    prog.validate(&dag)
        .unwrap_or_else(|e| panic!("{} kernel invalid: {e}", spec.name()));
    // A couple of micro-batches keeps pipelining in play while staying fast.
    let plan = MicroBatchPlan::plan(
        3 * spec.n_chunks() as u64 * (1 << 20),
        spec.n_chunks(),
        1 << 20,
    );
    let report = simulate(topo, &dag, &prog, &plan, spec.op(), &SimConfig::default())
        .unwrap_or_else(|e| panic!("{} simulation failed: {e}", spec.name()));
    assert_eq!(
        report.data_valid,
        Some(true),
        "{} corrupted data",
        spec.name()
    );
    report
}
