//! NCCL's standard multi-ring collectives.
//!
//! Real NCCL builds one logical ring per channel group and lays the rings
//! out so their inter-node crossings land on *different* NICs; chunks are
//! partitioned across rings. This is the vendor-standard algorithm the
//! paper's NCCL baseline executes (NCCL cannot run custom algorithms), so
//! the comparison figures pit custom-algorithm backends against these
//! rings.
//!
//! Ring `r` visits each node's GPUs starting from local index `2r mod g`
//! (two GPUs share a NIC, so consecutive rings enter through consecutive
//! NICs), walks them in order, then crosses to the next node.

use crate::compose::{compose_allreduce, reverse_allgather};
use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

/// The rank order of ring `r` on a `nodes × g` cluster.
fn ring_order(nodes: u32, g: u32, r: u32) -> Vec<u32> {
    let mut order = Vec::with_capacity((nodes * g) as usize);
    for node in 0..nodes {
        for i in 0..g {
            let local = (2 * r + i) % g;
            order.push(node * g + local);
        }
    }
    order
}

/// NCCL-style multi-ring AllGather: `n_rings` rings, chunk `c` travels
/// ring `c % n_rings`.
pub fn nccl_rings_allgather(nodes: u32, g: u32, n_rings: u32) -> AlgoSpec {
    assert!(n_rings >= 1);
    let n = nodes * g;
    assert!(n >= 2);
    let mut b = AlgoBuilder::new(
        format!("nccl-rings{n_rings}-ag-{nodes}x{g}"),
        OpType::AllGather,
        n,
    );
    let orders: Vec<Vec<u32>> = (0..n_rings).map(|r| ring_order(nodes, g, r)).collect();
    for c in 0..n {
        let order = &orders[(c % n_rings) as usize];
        let pos = order.iter().position(|&x| x == c).expect("rank in ring") as u32;
        for s in 0..n - 1 {
            let src = order[((pos + s) % n) as usize];
            let dst = order[((pos + s + 1) % n) as usize];
            b.recv(src, dst, s, c);
        }
    }
    b.build().expect("nccl multi-ring allgather is well-formed")
}

/// NCCL-style multi-ring ReduceScatter (reversal of the AllGather).
pub fn nccl_rings_reduce_scatter(nodes: u32, g: u32, n_rings: u32) -> AlgoSpec {
    reverse_allgather(&nccl_rings_allgather(nodes, g, n_rings))
        .with_name(format!("nccl-rings{n_rings}-rs-{nodes}x{g}"))
}

/// NCCL-style multi-ring AllReduce (ReduceScatter + AllGather).
pub fn nccl_rings_allreduce(nodes: u32, g: u32, n_rings: u32) -> AlgoSpec {
    let ag = nccl_rings_allgather(nodes, g, n_rings);
    compose_allreduce(
        format!("nccl-rings{n_rings}-ar-{nodes}x{g}"),
        &reverse_allgather(&ag),
        &ag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::{PathKind, Topology};
    use std::collections::HashSet;

    #[test]
    fn multi_ring_allgather_correct() {
        run_and_validate(&nccl_rings_allgather(2, 8, 4), &Topology::a100(2, 8));
        run_and_validate(&nccl_rings_allgather(2, 4, 2), &Topology::a100(2, 4));
        run_and_validate(&nccl_rings_allgather(1, 8, 4), &Topology::a100(1, 8));
    }

    #[test]
    fn multi_ring_allreduce_correct() {
        run_and_validate(&nccl_rings_allreduce(2, 4, 2), &Topology::a100(2, 4));
        run_and_validate(&nccl_rings_allreduce(2, 8, 4), &Topology::a100(2, 8));
    }

    #[test]
    fn rings_spread_over_all_nics() {
        // The defining property vs a flat single ring: the 4 rings' inter-
        // node hops enter through all 4 NICs of each node.
        let topo = Topology::a100(2, 8);
        let spec = nccl_rings_allgather(2, 8, 4);
        let mut rx_nics = HashSet::new();
        for t in spec.transfers() {
            let conn = topo.connection(t.src, t.dst);
            if matches!(conn.kind, PathKind::Inter { .. }) {
                rx_nics.insert(topo.nic_of(t.dst));
            }
        }
        assert_eq!(
            rx_nics.len(),
            8,
            "expected all 8 NICs receiving: {rx_nics:?}"
        );
    }

    #[test]
    fn single_ring_degenerates_to_plain_ring() {
        let multi = nccl_rings_allgather(1, 8, 1);
        let plain = crate::ring::ring_allgather(8);
        assert_eq!(multi.transfers().len(), plain.transfers().len());
    }
}
