//! Recursive (butterfly) collectives for power-of-two rank counts —
//! the classic latency-optimal family (log₂ N steps):
//!
//! * **Recursive doubling AllGather** — at step `s`, rank `r` exchanges
//!   everything it has gathered so far with partner `r ^ 2^s`.
//! * **Recursive halving-doubling AllReduce** — a halving ReduceScatter
//!   (partners exchange and reduce complementary halves) followed by a
//!   doubling AllGather over the reduced chunks.
//!
//! These fill out the standard-algorithm portfolio next to rings and the
//! double binary tree, and make good scheduler stress tests: their
//! butterfly exchange pattern uses every pair channel of a node in a few
//! dense bursts.

use rescc_lang::{AlgoBuilder, AlgoSpec, OpType};

fn assert_pow2(n: u32) {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "recursive collectives need power-of-two ranks, got {n}"
    );
}

/// Recursive-doubling AllGather over `n` (power of two) ranks.
pub fn recursive_doubling_allgather(n: u32) -> AlgoSpec {
    assert_pow2(n);
    let mut b = AlgoBuilder::new(format!("recdbl-ag-{n}"), OpType::AllGather, n);
    let steps = n.ilog2();
    for s in 0..steps {
        let dist = 1u32 << s;
        for r in 0..n {
            let partner = r ^ dist;
            // After step s, rank r holds exactly the chunks whose owner
            // lies in r's 2^s-aligned group; it sends that whole group.
            let base = r & !((1 << s) - 1);
            for o in base..base + (1 << s) {
                b.recv(r, partner, s, o);
            }
        }
    }
    b.build()
        .expect("recursive doubling allgather is well-formed")
}

/// Recursive halving ReduceScatter over `n` (power of two) ranks.
///
/// At step `s` (starting with the largest distance), rank `r` sends its
/// partner the half of the chunk range the *partner* will own, reducing on
/// receipt; after log₂ N steps rank `r` holds chunk `r` fully reduced.
pub fn recursive_halving_reduce_scatter(n: u32) -> AlgoSpec {
    assert_pow2(n);
    let mut b = AlgoBuilder::new(format!("rechlv-rs-{n}"), OpType::ReduceScatter, n);
    let steps = n.ilog2();
    for s in 0..steps {
        let dist = n >> (s + 1); // n/2, n/4, ..., 1
        for r in 0..n {
            let partner = r ^ dist;
            // The chunk range r is still responsible for has size 2*dist
            // and is aligned at (r & !(2*dist - 1)); the partner keeps the
            // half containing `partner`.
            let range_base = r & !(2 * dist - 1);
            let partner_half_base = if partner & dist == 0 {
                range_base
            } else {
                range_base + dist
            };
            for c in partner_half_base..partner_half_base + dist {
                b.rrc(r, partner, s, c);
            }
        }
    }
    b.build()
        .expect("recursive halving reduce-scatter is well-formed")
}

/// Recursive halving-doubling AllReduce: the halving ReduceScatter
/// followed by a doubling AllGather, step-shifted.
pub fn recursive_halving_doubling_allreduce(n: u32) -> AlgoSpec {
    assert_pow2(n);
    let rs = recursive_halving_reduce_scatter(n);
    let ag = recursive_doubling_allgather(n);
    crate::compose::compose_allreduce(format!("rechd-ar-{n}"), &rs, &ag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_validate;
    use rescc_topology::Topology;

    #[test]
    fn recursive_doubling_allgather_correct() {
        for n in [2u32, 4, 8, 16] {
            let nodes = if n > 8 { 2 } else { 1 };
            run_and_validate(
                &recursive_doubling_allgather(n),
                &Topology::a100(nodes, n / nodes),
            );
        }
    }

    #[test]
    fn recursive_halving_reduce_scatter_correct() {
        for n in [2u32, 4, 8, 16] {
            let nodes = if n > 8 { 2 } else { 1 };
            run_and_validate(
                &recursive_halving_reduce_scatter(n),
                &Topology::a100(nodes, n / nodes),
            );
        }
    }

    #[test]
    fn recursive_halving_doubling_allreduce_correct() {
        run_and_validate(
            &recursive_halving_doubling_allreduce(8),
            &Topology::a100(1, 8),
        );
        run_and_validate(
            &recursive_halving_doubling_allreduce(16),
            &Topology::a100(2, 8),
        );
    }

    #[test]
    fn log_depth() {
        let s = recursive_doubling_allgather(16);
        assert_eq!(s.max_step().0, 3); // log2(16) - 1
        let rs = recursive_halving_reduce_scatter(16);
        assert_eq!(rs.max_step().0, 3);
    }

    #[test]
    fn transfer_counts() {
        // Recursive doubling AG moves n-1 chunks per rank in total.
        let n = 8u32;
        let s = recursive_doubling_allgather(n);
        assert_eq!(s.transfers().len() as u32, n * (n - 1));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2() {
        recursive_doubling_allgather(6);
    }
}
