//! # rescc-ir
//!
//! Intermediate representation of collective algorithms: transmission
//! tasks, the dependency DAG of §3 (data dependencies as edges,
//! communication dependencies as an interference relation over shared
//! contention resources), and micro-batch planning.
//!
//! ```
//! use rescc_ir::DepDag;
//! use rescc_lang::{AlgoBuilder, OpType};
//! use rescc_topology::Topology;
//!
//! let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 8);
//! for r in 0..8u32 {
//!     for step in 0..7u32 {
//!         b.recv(r, (r + 1) % 8, step, (r + 8 - step) % 8);
//!     }
//! }
//! let spec = b.build().unwrap();
//! let dag = DepDag::build(&spec, &Topology::a100(1, 8)).unwrap();
//! assert_eq!(dag.len(), 56);
//! assert!(dag.topo_order().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod error;
mod metrics;
mod microbatch;
mod task;

pub use dag::DepDag;
pub use error::{IrError, Result};
pub use metrics::{bottleneck_resource_ns, critical_path_ns, lower_bound_ns, max_step_width};
pub use microbatch::MicroBatchPlan;
pub use task::{Task, TaskId};
