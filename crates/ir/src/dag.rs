//! The dependency DAG `G_A = (V_T, E)` of §3.
//!
//! Vertices are transmission tasks; edges are **data dependencies**: task
//! `t2` depends on `t1` when `t2` consumes (or overwrites) the buffer slot
//! `t1` writes. With the DataBuffer abstraction of §4.2 a buffer slot is a
//! `(rank, chunk)` pair, so for each chunk:
//!
//! * **RAW** — a task sending chunk `c` *from* rank `r` depends on the most
//!   recent earlier-step delivery of `c` *into* `r`;
//! * **WAW** — a task delivering `c` into rank `r` depends on the most
//!   recent earlier-step delivery of `c` into `r` (reduce order must follow
//!   algorithm steps).
//!
//! **Communication dependencies** (link conflicts) are *not* edges — they
//! are a symmetric interference relation derived from shared contention
//! resources, exposed via [`DepDag::interferes`] and the per-resource task
//! index. The scheduler consumes both relations.
//!
//! Storage is arena-flat: adjacency (preds, succs, per-chunk task lists,
//! per-resource task lists) lives in CSR arrays, and every conflict
//! resource is assigned a **dense index** so the scheduler's hot loops can
//! track per-resource load in plain vectors instead of hash maps.

use crate::error::{IrError, Result};
use crate::task::{Task, TaskId};
use rescc_lang::AlgoSpec;
use rescc_topology::{
    ChunkId, LinkParams, PathKind, Rank, ResourceId, Topology, MAX_PATH_RESOURCES,
};
use std::collections::HashMap;

/// Compressed sparse rows of [`TaskId`]s: one flat item arena plus row
/// offsets. Replaces `Vec<Vec<TaskId>>` adjacency so row reads are a
/// bounds-check and a slice, with no per-row allocation or pointer chase.
#[derive(Clone, Debug, PartialEq)]
struct Csr {
    offsets: Vec<u32>,
    items: Vec<TaskId>,
}

impl Csr {
    fn from_rows(rows: &[Vec<TaskId>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut items = Vec::with_capacity(total);
        offsets.push(0);
        for row in rows {
            items.extend_from_slice(row);
            offsets.push(items.len() as u32);
        }
        Self { offsets, items }
    }

    fn row(&self, i: usize) -> &[TaskId] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The conflict resources of one task as **dense indices** (positions in
/// the DAG's sorted resource table), stored inline so the scheduler's
/// per-resource load bookkeeping stays allocation-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DenseResSet {
    items: [u32; MAX_PATH_RESOURCES],
    len: u8,
}

impl DenseResSet {
    fn push(&mut self, idx: u32) {
        debug_assert!((self.len as usize) < MAX_PATH_RESOURCES);
        self.items[self.len as usize] = idx;
        self.len += 1;
    }

    /// The dense indices as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.items[..self.len as usize]
    }
}

/// The dependency DAG for one algorithm on one topology.
#[derive(Clone, Debug, PartialEq)]
pub struct DepDag {
    tasks: Vec<Task>,
    /// Data-dependency predecessors of each task (CSR).
    preds: Csr,
    /// Data-dependency successors of each task (CSR).
    succs: Csr,
    /// Tasks of each chunk, sorted by step (the per-chunk DAG `G[C]` of
    /// Algorithm 1), CSR over chunks.
    by_chunk: Csr,
    /// Every conflict resource any task occupies, ascending. A resource's
    /// position here is its **dense index**.
    resource_ids: Vec<ResourceId>,
    /// Per-task conflict sets as dense indices (parallel to `tasks`).
    conflict_dense: Vec<DenseResSet>,
    /// Tasks occupying each resource, CSR over dense indices.
    by_resource: Csr,
    /// Concurrency limit of each conflict resource (indexed densely): how
    /// many tasks can drive it before a communication dependency (Eq. 1
    /// contention) arises — the resource's `saturation_tbs`.
    conflict_limit: Vec<u32>,
    /// Full α–β–γ parameters of each conflict resource (indexed densely),
    /// cached so cost-side analyses read them without re-deriving the
    /// resource kind from the topology per task.
    link_params: Vec<LinkParams>,
    n_chunks: u32,
}

impl DepDag {
    /// Build the DAG from a validated algorithm spec and a topology.
    ///
    /// Fails if the spec's rank count does not match the topology, or if
    /// (defensively) a dependency cycle is detected.
    pub fn build(spec: &AlgoSpec, topo: &Topology) -> Result<Self> {
        Self::build_with_threads(spec, topo, 1)
    }

    /// [`DepDag::build`] with per-chunk dependency analysis fanned out over
    /// `threads` worker threads.
    ///
    /// Every data-dependency edge connects two tasks of the same chunk, so
    /// the per-chunk edge lists are disjoint and can be computed
    /// independently; they are then applied in ascending chunk order, which
    /// reproduces the serial construction exactly — the result is identical
    /// for any thread count.
    pub fn build_with_threads(spec: &AlgoSpec, topo: &Topology, threads: usize) -> Result<Self> {
        if spec.n_ranks() != topo.n_ranks() {
            return Err(IrError::new(format!(
                "algorithm `{}` is for {} ranks but topology `{}` has {}",
                spec.name(),
                spec.n_ranks(),
                topo.name(),
                topo.n_ranks()
            )));
        }

        // Materialize tasks in declaration order.
        let mut tasks = Vec::with_capacity(spec.transfers().len());
        for (i, rec) in spec.transfers().iter().enumerate() {
            let conn = topo.connection(rec.src, rec.dst);
            tasks.push(Task {
                id: TaskId::new(i as u32),
                src: rec.src,
                dst: rec.dst,
                step: rec.step,
                chunk: rec.chunk,
                comm: rec.comm,
                conn: conn.id,
                conflict: conn.conflict,
                path: conn.path,
                inter_node: matches!(conn.kind, PathKind::Inter { .. }),
            });
        }

        let n = tasks.len();
        let n_chunks = spec.n_chunks();
        let mut by_chunk: Vec<Vec<TaskId>> = vec![Vec::new(); n_chunks as usize];
        for t in &tasks {
            by_chunk[t.chunk.index()].push(t.id);
        }
        for chunk_tasks in &mut by_chunk {
            chunk_tasks.sort_by_key(|id| (tasks[id.index()].step, *id));
        }

        // Data dependencies, per chunk: track the latest delivery into each
        // rank's slot of this chunk, step by step. The per-chunk edge lists
        // are disjoint (both endpoints of every edge move the same chunk),
        // so chunks can be analysed in parallel; applying the lists in
        // ascending chunk order keeps preds/succs bit-identical to the
        // serial construction.
        let chunk_edges: Vec<Vec<(TaskId, TaskId)>> = if threads <= 1 || by_chunk.len() <= 1 {
            by_chunk
                .iter()
                .map(|chunk_tasks| edges_for_chunk(&tasks, chunk_tasks))
                .collect()
        } else {
            let mut out: Vec<Vec<(TaskId, TaskId)>> = vec![Vec::new(); by_chunk.len()];
            let workers = threads.min(by_chunk.len());
            let stride = by_chunk.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (slots, chunks) in out.chunks_mut(stride).zip(by_chunk.chunks(stride)) {
                    let tasks = &tasks;
                    scope.spawn(move || {
                        for (slot, chunk_tasks) in slots.iter_mut().zip(chunks) {
                            *slot = edges_for_chunk(tasks, chunk_tasks);
                        }
                    });
                }
            });
            out
        };
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for edges in &chunk_edges {
            for &(from, to) in edges {
                add_edge(&mut preds, &mut succs, from, to);
            }
        }

        let (resource_ids, conflict_dense, by_resource, conflict_limit, link_params) =
            index_resources(&tasks, topo)?;

        let dag = Self {
            tasks,
            preds: Csr::from_rows(&preds),
            succs: Csr::from_rows(&succs),
            by_chunk: Csr::from_rows(&by_chunk),
            resource_ids,
            conflict_dense,
            by_resource,
            conflict_limit,
            link_params,
            n_chunks,
        };
        // Steps strictly increase along edges, so cycles are impossible by
        // construction — but validate anyway (defence in depth).
        dag.topo_order()?;
        Ok(dag)
    }

    /// Re-resolve every task's route against `topo` (same shape, possibly
    /// different [health mask](rescc_topology::TopologyHealth)) and return
    /// the patched DAG together with the ids of the tasks whose route
    /// actually changed.
    ///
    /// Data-dependency edges are topology-independent (they follow the
    /// algorithm's `(rank, chunk, step)` structure), so the adjacency
    /// arenas are reused as-is; only the tasks' conflict/path sets and the
    /// resource index are rebuilt. This is the analysis step of delta
    /// recompilation: `O(tasks)` with no edge re-derivation.
    pub fn reroute(&self, topo: &Topology) -> Result<(Self, Vec<TaskId>)> {
        let mut patched = self.clone();
        let mut dirty = Vec::new();
        for t in &mut patched.tasks {
            let conn = topo.connection(t.src, t.dst);
            let inter = matches!(conn.kind, PathKind::Inter { .. });
            if t.conflict != conn.conflict || t.path != conn.path || t.inter_node != inter {
                t.conflict = conn.conflict;
                t.path = conn.path;
                t.inter_node = inter;
                dirty.push(t.id);
            }
        }
        if !dirty.is_empty() {
            let (ids, dense, by_res, limits, params) = index_resources(&patched.tasks, topo)?;
            patched.resource_ids = ids;
            patched.conflict_dense = dense;
            patched.by_resource = by_res;
            patched.conflict_limit = limits;
            patched.link_params = params;
        }
        Ok((patched, dirty))
    }

    /// The residual DAG: keep exactly the tasks flagged in `keep`,
    /// renumbering them contiguously, and drop every edge touching a
    /// pruned task — a kept task whose predecessors all completed becomes
    /// a new root, which is precisely the re-rooting partial-progress
    /// recovery needs. Per-chunk lists and the dense resource index are
    /// rebuilt against `topo`; chunk ids are preserved.
    ///
    /// Returns the residual DAG plus the map from residual task id to the
    /// original [`TaskId`] (`orig_ids[residual.index()]`), so callers can
    /// translate frontiers and schedules between the two id spaces.
    ///
    /// Fails when the mask's length mismatches, when nothing is kept, or
    /// (defensively) when the residual adjacency has a cycle.
    pub fn residual(&self, keep: &[bool], topo: &Topology) -> Result<(Self, Vec<TaskId>)> {
        if keep.len() != self.tasks.len() {
            return Err(IrError::new(format!(
                "keep mask covers {} tasks, DAG has {}",
                keep.len(),
                self.tasks.len()
            )));
        }
        let mut new_id = vec![u32::MAX; self.tasks.len()];
        let mut orig_ids: Vec<TaskId> = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                new_id[i] = orig_ids.len() as u32;
                orig_ids.push(TaskId::new(i as u32));
            }
        }
        if orig_ids.is_empty() {
            return Err(IrError::new(
                "residual DAG would be empty — nothing left to execute",
            ));
        }
        let mut tasks: Vec<Task> = Vec::with_capacity(orig_ids.len());
        for &oid in &orig_ids {
            let mut t = self.tasks[oid.index()];
            t.id = TaskId::new(tasks.len() as u32);
            tasks.push(t);
        }
        // Surviving edges, remapped. New ids are monotone in original ids,
        // so filtered rows (including the (step, id)-sorted chunk chains)
        // keep their order.
        let remap = |ids: &[TaskId]| -> Vec<TaskId> {
            ids.iter()
                .filter(|id| keep[id.index()])
                .map(|id| TaskId::new(new_id[id.index()]))
                .collect()
        };
        let preds: Vec<Vec<TaskId>> = orig_ids
            .iter()
            .map(|oid| remap(self.preds.row(oid.index())))
            .collect();
        let succs: Vec<Vec<TaskId>> = orig_ids
            .iter()
            .map(|oid| remap(self.succs.row(oid.index())))
            .collect();
        let by_chunk: Vec<Vec<TaskId>> = (0..self.n_chunks as usize)
            .map(|c| remap(self.by_chunk.row(c)))
            .collect();
        let (resource_ids, conflict_dense, by_resource, conflict_limit, link_params) =
            index_resources(&tasks, topo)?;
        let dag = Self {
            tasks,
            preds: Csr::from_rows(&preds),
            succs: Csr::from_rows(&succs),
            by_chunk: Csr::from_rows(&by_chunk),
            resource_ids,
            conflict_dense,
            by_resource,
            conflict_limit,
            link_params,
            n_chunks: self.n_chunks,
        };
        dag.topo_order()?;
        Ok((dag, orig_ids))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Look up a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Data-dependency predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        self.preds.row(id.index())
    }

    /// Data-dependency successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        self.succs.row(id.index())
    }

    /// Number of chunks (== ranks).
    pub fn n_chunks(&self) -> u32 {
        self.n_chunks
    }

    /// The per-chunk DAG `G[C]`: tasks of `chunk` sorted by step.
    pub fn chunk_tasks(&self, chunk: ChunkId) -> &[TaskId] {
        self.by_chunk.row(chunk.index())
    }

    /// Tasks that occupy contention resource `res`.
    pub fn resource_tasks(&self, res: ResourceId) -> &[TaskId] {
        match self.dense_resource(res) {
            Some(d) => self.by_resource.row(d as usize),
            None => &[],
        }
    }

    /// All resources any task occupies, ascending.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.resource_ids.iter().copied()
    }

    /// How many distinct conflict resources the DAG's tasks occupy. Dense
    /// indices run `0..n_dense_resources()`.
    pub fn n_dense_resources(&self) -> usize {
        self.resource_ids.len()
    }

    /// The dense index of `res`, if any task occupies it.
    pub fn dense_resource(&self, res: ResourceId) -> Option<u32> {
        self.resource_ids.binary_search(&res).ok().map(|i| i as u32)
    }

    /// The resource at a dense index.
    pub fn resource_at(&self, dense: u32) -> ResourceId {
        self.resource_ids[dense as usize]
    }

    /// The conflict resources of `id` as dense indices.
    pub fn conflict_dense(&self, id: TaskId) -> &DenseResSet {
        &self.conflict_dense[id.index()]
    }

    /// Communication dependency: do the two tasks share a contention
    /// resource (and would therefore contend if run concurrently)?
    pub fn interferes(&self, a: TaskId, b: TaskId) -> bool {
        let ta = &self.tasks[a.index()];
        let tb = &self.tasks[b.index()];
        ta.conflict.intersects(&tb.conflict)
    }

    /// How many concurrent tasks conflict resource `res` admits before
    /// contention arises (its `saturation_tbs`).
    pub fn conflict_limit(&self, res: ResourceId) -> u32 {
        match self.dense_resource(res) {
            Some(d) => self.conflict_limit[d as usize],
            None => 1,
        }
    }

    /// [`Self::conflict_limit`] by dense index (no lookup).
    pub fn conflict_limit_at(&self, dense: u32) -> u32 {
        self.conflict_limit[dense as usize]
    }

    /// The cached α–β–γ parameters of a conflict resource, by dense index.
    pub fn resource_params_at(&self, dense: u32) -> &LinkParams {
        &self.link_params[dense as usize]
    }

    /// A topological order of the data-dependency DAG (Kahn's algorithm).
    /// Returns an error when a cycle exists.
    pub fn topo_order(&self) -> Result<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.preds.row(i).len() as u32).collect();
        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId::new)
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &s in self.succs.row(id.index()) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(IrError::new(format!(
                "dependency cycle: only {}/{} tasks orderable",
                order.len(),
                n
            )));
        }
        Ok(order)
    }

    /// Verify that `order` is a valid execution order (every task appears
    /// exactly once, after all of its predecessors). Used to validate
    /// scheduler output in tests and debug builds.
    pub fn validate_order(&self, order: &[TaskId]) -> Result<()> {
        let n = self.tasks.len();
        if order.len() != n {
            return Err(IrError::new(format!(
                "order covers {}/{} tasks",
                order.len(),
                n
            )));
        }
        let mut pos = vec![usize::MAX; n];
        for (i, id) in order.iter().enumerate() {
            if id.index() >= n {
                return Err(IrError::new(format!("unknown task {id}")));
            }
            if pos[id.index()] != usize::MAX {
                return Err(IrError::new(format!("task {id} appears twice")));
            }
            pos[id.index()] = i;
        }
        for i in 0..n {
            for dep in self.preds.row(i) {
                if pos[dep.index()] > pos[i] {
                    return Err(IrError::new(format!(
                        "task t{i} scheduled before its dependency {dep}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Build the dense resource index: the sorted resource table, per-task
/// dense conflict sets, the per-resource task CSR, and per-resource
/// conflict limits.
#[allow(clippy::type_complexity)]
fn index_resources(
    tasks: &[Task],
    topo: &Topology,
) -> Result<(
    Vec<ResourceId>,
    Vec<DenseResSet>,
    Csr,
    Vec<u32>,
    Vec<LinkParams>,
)> {
    let mut resource_ids: Vec<ResourceId> = tasks
        .iter()
        .flat_map(|t| t.conflict.iter())
        .collect::<Vec<_>>();
    resource_ids.sort_unstable();
    resource_ids.dedup();

    let dense_of = |r: ResourceId| -> u32 {
        resource_ids
            .binary_search(&r)
            .expect("resource collected above") as u32
    };

    let mut conflict_dense = Vec::with_capacity(tasks.len());
    let mut rows: Vec<Vec<TaskId>> = vec![Vec::new(); resource_ids.len()];
    for t in tasks {
        let mut set = DenseResSet::default();
        for r in t.conflict.iter() {
            let d = dense_of(r);
            set.push(d);
            rows[d as usize].push(t.id);
        }
        conflict_dense.push(set);
    }

    let mut conflict_limit = Vec::with_capacity(resource_ids.len());
    let mut link_params = Vec::with_capacity(resource_ids.len());
    for &r in &resource_ids {
        let params = topo
            .resource_params(r)
            .map_err(|e| IrError::new(e.to_string()))?;
        conflict_limit.push(params.saturation_tbs.max(1));
        link_params.push(params);
    }
    Ok((
        resource_ids,
        conflict_dense,
        Csr::from_rows(&rows),
        conflict_limit,
        link_params,
    ))
}

fn add_edge(preds: &mut [Vec<TaskId>], succs: &mut [Vec<TaskId>], from: TaskId, to: TaskId) {
    debug_assert_ne!(from, to);
    if !preds[to.index()].contains(&from) {
        preds[to.index()].push(from);
        succs[from.index()].push(to);
    }
}

/// RAW/WAW edges of one chunk's task chain, in discovery order.
///
/// `last_write[rank]` holds all tasks of the most recent writing step that
/// delivered this chunk into `rank`. Several same-step reductions may write
/// one slot (commutative), and later readers must wait for every one of
/// them. Steps are processed as groups: deliveries of the current step must
/// not appear as predecessors of same-step reads (the DSL's total order is
/// strict between steps only).
fn edges_for_chunk(tasks: &[Task], chunk_tasks: &[TaskId]) -> Vec<(TaskId, TaskId)> {
    let mut edges = Vec::new();
    let mut last_write: HashMap<Rank, Vec<TaskId>> = HashMap::new();
    let mut i = 0;
    while i < chunk_tasks.len() {
        let step = tasks[chunk_tasks[i].index()].step;
        let mut j = i;
        while j < chunk_tasks.len() && tasks[chunk_tasks[j].index()].step == step {
            j += 1;
        }
        let group = &chunk_tasks[i..j];
        // Reads (the send side) and overwrites both depend on every latest
        // earlier-step write.
        for &tid in group {
            let t = tasks[tid.index()];
            if let Some(ws) = last_write.get(&t.src) {
                for &w in ws {
                    edges.push((w, tid));
                }
            }
            if let Some(ws) = last_write.get(&t.dst) {
                for &w in ws {
                    if w != tid {
                        edges.push((w, tid));
                    }
                }
            }
        }
        // Commit this step's writes, replacing any older step's.
        let mut fresh: HashMap<Rank, Vec<TaskId>> = HashMap::new();
        for &tid in group {
            let t = tasks[tid.index()];
            fresh.entry(t.dst).or_default().push(tid);
        }
        for (rank, writers) in fresh {
            last_write.insert(rank, writers);
        }
        i = j;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};

    fn ring_ag(n: u32) -> AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            let peer = (r + 1) % n;
            for step in 0..n - 1 {
                b.recv(r, peer, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_dag_has_chain_per_chunk() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        assert_eq!(dag.len(), 8 * 7);
        // Each chunk has a linear chain: 7 tasks, task k depends on k-1.
        for c in 0..8u32 {
            let tasks = dag.chunk_tasks(ChunkId::new(c));
            assert_eq!(tasks.len(), 7);
            assert!(dag.preds(tasks[0]).is_empty());
            for w in tasks.windows(2) {
                assert_eq!(dag.preds(w[1]), &[w[0]]);
            }
        }
    }

    #[test]
    fn topo_order_valid() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let order = dag.topo_order().unwrap();
        dag.validate_order(&order).unwrap();
    }

    #[test]
    fn rank_count_mismatch_rejected() {
        let topo = Topology::a100(1, 4);
        let err = DepDag::build(&ring_ag(8), &topo).unwrap_err();
        assert!(err.to_string().contains("ranks"));
    }

    #[test]
    fn interference_follows_topology_resources() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        // Two sends out of the same rank interfere (shared GPU TX port).
        let same_src: Vec<TaskId> = dag
            .tasks()
            .iter()
            .filter(|t| t.src == Rank::new(0))
            .map(|t| t.id)
            .collect();
        assert!(same_src.len() >= 2);
        assert!(dag.interferes(same_src[0], same_src[1]));
        // Ring neighbours with disjoint endpoints do not interfere.
        let t01 = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(0) && t.dst == Rank::new(1))
            .unwrap();
        let t23 = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(2) && t.dst == Rank::new(3))
            .unwrap();
        assert!(!dag.interferes(t01.id, t23.id));
    }

    #[test]
    fn dense_resource_index_round_trips() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        assert!(dag.n_dense_resources() > 0);
        for (i, r) in dag.resources().enumerate() {
            assert_eq!(dag.dense_resource(r), Some(i as u32));
            assert_eq!(dag.resource_at(i as u32), r);
            assert_eq!(dag.conflict_limit(r), dag.conflict_limit_at(i as u32));
            assert!(!dag.resource_tasks(r).is_empty());
        }
        // Per-task dense sets mirror the ResourceSet conflicts.
        for t in dag.tasks() {
            let dense = dag.conflict_dense(t.id);
            assert_eq!(dense.as_slice().len(), t.conflict.len());
            for &d in dense.as_slice() {
                assert!(t.conflict.contains(dag.resource_at(d)));
            }
        }
    }

    #[test]
    fn reroute_is_identity_on_same_health() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let (same, dirty) = dag.reroute(&topo).unwrap();
        assert!(dirty.is_empty());
        assert_eq!(same, dag);
    }

    #[test]
    fn reroute_flags_only_affected_tasks() {
        use rescc_topology::TopologyHealth;
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let mut mask = TopologyHealth::healthy();
        mask.mask(chan);
        let degraded = Topology::a100(1, 8).with_health(mask);
        let (patched, dirty) = dag.reroute(&degraded).unwrap();
        assert!(!dirty.is_empty());
        // Exactly the tasks whose direct route used the dead channel moved.
        for t in dag.tasks() {
            let moved = dirty.contains(&t.id);
            let used_chan = t.src == Rank::new(0) && t.dst == Rank::new(1);
            assert_eq!(moved, used_chan, "task {t:?}");
            if !moved {
                assert_eq!(patched.task(t.id), t);
            } else {
                assert!(!patched.task(t.id).conflict.contains(chan));
            }
        }
        // The patched DAG matches a from-scratch build on the degraded topo.
        let fresh = DepDag::build(&ring_ag(8), &degraded).unwrap();
        assert_eq!(patched, fresh);
    }

    #[test]
    fn residual_prunes_renumbers_and_reroots() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        // Prune the first task of every chunk chain (as if it completed).
        let mut keep = vec![true; dag.len()];
        for c in 0..8u32 {
            keep[dag.chunk_tasks(ChunkId::new(c))[0].index()] = false;
        }
        let (res, orig) = dag.residual(&keep, &topo).unwrap();
        assert_eq!(res.len(), dag.len() - 8);
        assert_eq!(orig.len(), res.len());
        for (ri, t) in res.tasks().iter().enumerate() {
            assert_eq!(t.id.index(), ri, "residual ids must be contiguous");
            let o = dag.task(orig[ri]);
            assert_eq!(
                (t.src, t.dst, t.step, t.chunk, t.comm),
                (o.src, o.dst, o.step, o.chunk, o.comm)
            );
        }
        // Chains re-rooted: the former second task is now a root.
        for c in 0..8u32 {
            let chain = res.chunk_tasks(ChunkId::new(c));
            assert_eq!(chain.len(), 6);
            assert!(res.preds(chain[0]).is_empty());
            for w in chain.windows(2) {
                assert_eq!(res.preds(w[1]), &[w[0]]);
            }
        }
        res.topo_order().unwrap();
    }

    #[test]
    fn residual_keep_all_is_identity_and_keep_none_rejected() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let (all, ids) = dag.residual(&vec![true; dag.len()], &topo).unwrap();
        assert_eq!(all, dag);
        assert_eq!(ids.len(), dag.len());
        assert!(dag.residual(&vec![false; dag.len()], &topo).is_err());
        assert!(dag.residual(&[true], &topo).is_err(), "mask length");
    }

    #[test]
    fn validate_order_catches_violations() {
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&ring_ag(4), &topo).unwrap();
        let mut order = dag.topo_order().unwrap();
        // Find an edge and swap its endpoints' positions.
        let victim = (0..dag.len() as u32)
            .map(TaskId::new)
            .find(|id| !dag.preds(*id).is_empty())
            .unwrap();
        let dep = dag.preds(victim)[0];
        let pi = order.iter().position(|x| *x == victim).unwrap();
        let pj = order.iter().position(|x| *x == dep).unwrap();
        order.swap(pi, pj);
        assert!(dag.validate_order(&order).is_err());
    }

    #[test]
    fn validate_order_rejects_duplicates_and_short_orders() {
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&ring_ag(4), &topo).unwrap();
        let order = dag.topo_order().unwrap();
        assert!(dag.validate_order(&order[..order.len() - 1]).is_err());
        let mut dup = order.clone();
        dup[0] = dup[1];
        assert!(dag.validate_order(&dup).is_err());
    }

    #[test]
    fn inter_node_flag_set() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let cross = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(3) && t.dst == Rank::new(4))
            .unwrap();
        assert!(cross.inter_node);
        let local = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(0) && t.dst == Rank::new(1))
            .unwrap();
        assert!(!local.inter_node);
    }

    #[test]
    fn waw_ordering_for_reductions() {
        // Two reduce deliveries into the same (rank, chunk) at different
        // steps must be ordered.
        let mut b = AlgoBuilder::new("red", OpType::ReduceScatter, 4);
        b.rrc(1, 0, 0, 0); // step 0: rank1 reduces into rank0 chunk0
        b.rrc(2, 0, 1, 0); // step 1: rank2 reduces into rank0 chunk0
        b.rrc(3, 0, 2, 0); // step 2
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let chain = dag.chunk_tasks(ChunkId::new(0));
        assert_eq!(dag.preds(chain[1]), &[chain[0]]);
        assert_eq!(dag.preds(chain[2]), &[chain[1]]);
    }
}
