//! The dependency DAG `G_A = (V_T, E)` of §3.
//!
//! Vertices are transmission tasks; edges are **data dependencies**: task
//! `t2` depends on `t1` when `t2` consumes (or overwrites) the buffer slot
//! `t1` writes. With the DataBuffer abstraction of §4.2 a buffer slot is a
//! `(rank, chunk)` pair, so for each chunk:
//!
//! * **RAW** — a task sending chunk `c` *from* rank `r` depends on the most
//!   recent earlier-step delivery of `c` *into* `r`;
//! * **WAW** — a task delivering `c` into rank `r` depends on the most
//!   recent earlier-step delivery of `c` into `r` (reduce order must follow
//!   algorithm steps).
//!
//! **Communication dependencies** (link conflicts) are *not* edges — they
//! are a symmetric interference relation derived from shared contention
//! resources, exposed via [`DepDag::interferes`] and the per-resource task
//! index. The scheduler consumes both relations.

use crate::error::{IrError, Result};
use crate::task::{Task, TaskId};
use rescc_lang::AlgoSpec;
use rescc_topology::{ChunkId, PathKind, Rank, ResourceId, Topology};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The dependency DAG for one algorithm on one topology.
#[derive(Clone, Debug, PartialEq)]
pub struct DepDag {
    tasks: Vec<Task>,
    /// Data-dependency predecessors of each task.
    preds: Vec<Vec<TaskId>>,
    /// Data-dependency successors of each task.
    succs: Vec<Vec<TaskId>>,
    /// Tasks of each chunk, sorted by step (the per-chunk DAG `G[C]` of
    /// Algorithm 1).
    by_chunk: Vec<Vec<TaskId>>,
    /// Tasks indexed by contention resource.
    by_resource: HashMap<ResourceId, Vec<TaskId>>,
    /// Concurrency limit of each conflict resource: how many tasks can
    /// drive it before a communication dependency (Eq. 1 contention)
    /// arises — the resource's `saturation_tbs`.
    conflict_limit: HashMap<ResourceId, u32>,
    n_chunks: u32,
}

impl DepDag {
    /// Build the DAG from a validated algorithm spec and a topology.
    ///
    /// Fails if the spec's rank count does not match the topology, or if
    /// (defensively) a dependency cycle is detected.
    pub fn build(spec: &AlgoSpec, topo: &Topology) -> Result<Self> {
        Self::build_with_threads(spec, topo, 1)
    }

    /// [`DepDag::build`] with per-chunk dependency analysis fanned out over
    /// `threads` worker threads.
    ///
    /// Every data-dependency edge connects two tasks of the same chunk, so
    /// the per-chunk edge lists are disjoint and can be computed
    /// independently; they are then applied in ascending chunk order, which
    /// reproduces the serial construction exactly — the result is identical
    /// for any thread count.
    pub fn build_with_threads(spec: &AlgoSpec, topo: &Topology, threads: usize) -> Result<Self> {
        if spec.n_ranks() != topo.n_ranks() {
            return Err(IrError::new(format!(
                "algorithm `{}` is for {} ranks but topology `{}` has {}",
                spec.name(),
                spec.n_ranks(),
                topo.name(),
                topo.n_ranks()
            )));
        }

        // Materialize tasks in declaration order.
        let mut tasks = Vec::with_capacity(spec.transfers().len());
        for (i, rec) in spec.transfers().iter().enumerate() {
            let conn = topo.connection(rec.src, rec.dst);
            tasks.push(Task {
                id: TaskId::new(i as u32),
                src: rec.src,
                dst: rec.dst,
                step: rec.step,
                chunk: rec.chunk,
                comm: rec.comm,
                conn: conn.id,
                conflict: conn.conflict,
                path: conn.path,
                inter_node: matches!(conn.kind, PathKind::Inter { .. }),
            });
        }

        let n = tasks.len();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let n_chunks = spec.n_chunks();
        let mut by_chunk: Vec<Vec<TaskId>> = vec![Vec::new(); n_chunks as usize];
        for t in &tasks {
            by_chunk[t.chunk.index()].push(t.id);
        }
        for chunk_tasks in &mut by_chunk {
            chunk_tasks.sort_by_key(|id| (tasks[id.index()].step, *id));
        }

        // Data dependencies, per chunk: track the latest delivery into each
        // rank's slot of this chunk, step by step. The per-chunk edge lists
        // are disjoint (both endpoints of every edge move the same chunk),
        // so chunks can be analysed in parallel; applying the lists in
        // ascending chunk order keeps preds/succs bit-identical to the
        // serial construction.
        let chunk_edges: Vec<Vec<(TaskId, TaskId)>> = if threads <= 1 || by_chunk.len() <= 1 {
            by_chunk
                .iter()
                .map(|chunk_tasks| edges_for_chunk(&tasks, chunk_tasks))
                .collect()
        } else {
            let mut out: Vec<Vec<(TaskId, TaskId)>> = vec![Vec::new(); by_chunk.len()];
            let workers = threads.min(by_chunk.len());
            let stride = by_chunk.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (slots, chunks) in out.chunks_mut(stride).zip(by_chunk.chunks(stride)) {
                    let tasks = &tasks;
                    scope.spawn(move || {
                        for (slot, chunk_tasks) in slots.iter_mut().zip(chunks) {
                            *slot = edges_for_chunk(tasks, chunk_tasks);
                        }
                    });
                }
            });
            out
        };
        for edges in &chunk_edges {
            for &(from, to) in edges {
                add_edge(&mut preds, &mut succs, from, to);
            }
        }

        // Resource index for communication dependencies.
        let mut by_resource: HashMap<ResourceId, Vec<TaskId>> = HashMap::new();
        let mut conflict_limit: HashMap<ResourceId, u32> = HashMap::new();
        for t in &tasks {
            for r in t.conflict.iter() {
                by_resource.entry(r).or_default().push(t.id);
                if let Entry::Vacant(slot) = conflict_limit.entry(r) {
                    let params = topo
                        .resource_params(r)
                        .map_err(|e| IrError::new(e.to_string()))?;
                    slot.insert(params.saturation_tbs.max(1));
                }
            }
        }

        let dag = Self {
            tasks,
            preds,
            succs,
            by_chunk,
            by_resource,
            conflict_limit,
            n_chunks,
        };
        // Steps strictly increase along edges, so cycles are impossible by
        // construction — but validate anyway (defence in depth).
        dag.topo_order()?;
        Ok(dag)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Look up a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Data-dependency predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.index()]
    }

    /// Data-dependency successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.index()]
    }

    /// Number of chunks (== ranks).
    pub fn n_chunks(&self) -> u32 {
        self.n_chunks
    }

    /// The per-chunk DAG `G[C]`: tasks of `chunk` sorted by step.
    pub fn chunk_tasks(&self, chunk: ChunkId) -> &[TaskId] {
        &self.by_chunk[chunk.index()]
    }

    /// Tasks that occupy contention resource `res`.
    pub fn resource_tasks(&self, res: ResourceId) -> &[TaskId] {
        self.by_resource.get(&res).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All resources any task occupies.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.by_resource.keys().copied()
    }

    /// Communication dependency: do the two tasks share a contention
    /// resource (and would therefore contend if run concurrently)?
    pub fn interferes(&self, a: TaskId, b: TaskId) -> bool {
        let ta = &self.tasks[a.index()];
        let tb = &self.tasks[b.index()];
        ta.conflict.intersects(&tb.conflict)
    }

    /// How many concurrent tasks conflict resource `res` admits before
    /// contention arises (its `saturation_tbs`).
    pub fn conflict_limit(&self, res: ResourceId) -> u32 {
        self.conflict_limit.get(&res).copied().unwrap_or(1)
    }

    /// A topological order of the data-dependency DAG (Kahn's algorithm).
    /// Returns an error when a cycle exists.
    pub fn topo_order(&self) -> Result<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg: Vec<u32> = vec![0; n];
        for p in &self.preds {
            // indeg of a node = number of its predecessors
            let _ = p;
        }
        for (i, p) in self.preds.iter().enumerate() {
            indeg[i] = p.len() as u32;
        }
        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId::new)
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &s in &self.succs[id.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(IrError::new(format!(
                "dependency cycle: only {}/{} tasks orderable",
                order.len(),
                n
            )));
        }
        Ok(order)
    }

    /// Verify that `order` is a valid execution order (every task appears
    /// exactly once, after all of its predecessors). Used to validate
    /// scheduler output in tests and debug builds.
    pub fn validate_order(&self, order: &[TaskId]) -> Result<()> {
        let n = self.tasks.len();
        if order.len() != n {
            return Err(IrError::new(format!(
                "order covers {}/{} tasks",
                order.len(),
                n
            )));
        }
        let mut pos = vec![usize::MAX; n];
        for (i, id) in order.iter().enumerate() {
            if id.index() >= n {
                return Err(IrError::new(format!("unknown task {id}")));
            }
            if pos[id.index()] != usize::MAX {
                return Err(IrError::new(format!("task {id} appears twice")));
            }
            pos[id.index()] = i;
        }
        for (i, p) in self.preds.iter().enumerate() {
            for dep in p {
                if pos[dep.index()] > pos[i] {
                    return Err(IrError::new(format!(
                        "task t{i} scheduled before its dependency {dep}"
                    )));
                }
            }
        }
        Ok(())
    }
}

fn add_edge(preds: &mut [Vec<TaskId>], succs: &mut [Vec<TaskId>], from: TaskId, to: TaskId) {
    debug_assert_ne!(from, to);
    if !preds[to.index()].contains(&from) {
        preds[to.index()].push(from);
        succs[from.index()].push(to);
    }
}

/// RAW/WAW edges of one chunk's task chain, in discovery order.
///
/// `last_write[rank]` holds all tasks of the most recent writing step that
/// delivered this chunk into `rank`. Several same-step reductions may write
/// one slot (commutative), and later readers must wait for every one of
/// them. Steps are processed as groups: deliveries of the current step must
/// not appear as predecessors of same-step reads (the DSL's total order is
/// strict between steps only).
fn edges_for_chunk(tasks: &[Task], chunk_tasks: &[TaskId]) -> Vec<(TaskId, TaskId)> {
    let mut edges = Vec::new();
    let mut last_write: HashMap<Rank, Vec<TaskId>> = HashMap::new();
    let mut i = 0;
    while i < chunk_tasks.len() {
        let step = tasks[chunk_tasks[i].index()].step;
        let mut j = i;
        while j < chunk_tasks.len() && tasks[chunk_tasks[j].index()].step == step {
            j += 1;
        }
        let group = &chunk_tasks[i..j];
        // Reads (the send side) and overwrites both depend on every latest
        // earlier-step write.
        for &tid in group {
            let t = tasks[tid.index()];
            if let Some(ws) = last_write.get(&t.src) {
                for &w in ws {
                    edges.push((w, tid));
                }
            }
            if let Some(ws) = last_write.get(&t.dst) {
                for &w in ws {
                    if w != tid {
                        edges.push((w, tid));
                    }
                }
            }
        }
        // Commit this step's writes, replacing any older step's.
        let mut fresh: HashMap<Rank, Vec<TaskId>> = HashMap::new();
        for &tid in group {
            let t = tasks[tid.index()];
            fresh.entry(t.dst).or_default().push(tid);
        }
        for (rank, writers) in fresh {
            last_write.insert(rank, writers);
        }
        i = j;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};

    fn ring_ag(n: u32) -> AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            let peer = (r + 1) % n;
            for step in 0..n - 1 {
                b.recv(r, peer, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_dag_has_chain_per_chunk() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        assert_eq!(dag.len(), 8 * 7);
        // Each chunk has a linear chain: 7 tasks, task k depends on k-1.
        for c in 0..8u32 {
            let tasks = dag.chunk_tasks(ChunkId::new(c));
            assert_eq!(tasks.len(), 7);
            assert!(dag.preds(tasks[0]).is_empty());
            for w in tasks.windows(2) {
                assert_eq!(dag.preds(w[1]), &[w[0]]);
            }
        }
    }

    #[test]
    fn topo_order_valid() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let order = dag.topo_order().unwrap();
        dag.validate_order(&order).unwrap();
    }

    #[test]
    fn rank_count_mismatch_rejected() {
        let topo = Topology::a100(1, 4);
        let err = DepDag::build(&ring_ag(8), &topo).unwrap_err();
        assert!(err.to_string().contains("ranks"));
    }

    #[test]
    fn interference_follows_topology_resources() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        // Two sends out of the same rank interfere (shared GPU TX port).
        let same_src: Vec<TaskId> = dag
            .tasks()
            .iter()
            .filter(|t| t.src == Rank::new(0))
            .map(|t| t.id)
            .collect();
        assert!(same_src.len() >= 2);
        assert!(dag.interferes(same_src[0], same_src[1]));
        // Ring neighbours with disjoint endpoints do not interfere.
        let t01 = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(0) && t.dst == Rank::new(1))
            .unwrap();
        let t23 = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(2) && t.dst == Rank::new(3))
            .unwrap();
        assert!(!dag.interferes(t01.id, t23.id));
    }

    #[test]
    fn validate_order_catches_violations() {
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&ring_ag(4), &topo).unwrap();
        let mut order = dag.topo_order().unwrap();
        // Find an edge and swap its endpoints' positions.
        let victim = (0..dag.len() as u32)
            .map(TaskId::new)
            .find(|id| !dag.preds(*id).is_empty())
            .unwrap();
        let dep = dag.preds(victim)[0];
        let pi = order.iter().position(|x| *x == victim).unwrap();
        let pj = order.iter().position(|x| *x == dep).unwrap();
        order.swap(pi, pj);
        assert!(dag.validate_order(&order).is_err());
    }

    #[test]
    fn validate_order_rejects_duplicates_and_short_orders() {
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&ring_ag(4), &topo).unwrap();
        let order = dag.topo_order().unwrap();
        assert!(dag.validate_order(&order[..order.len() - 1]).is_err());
        let mut dup = order.clone();
        dup[0] = dup[1];
        assert!(dag.validate_order(&dup).is_err());
    }

    #[test]
    fn inter_node_flag_set() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let cross = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(3) && t.dst == Rank::new(4))
            .unwrap();
        assert!(cross.inter_node);
        let local = dag
            .tasks()
            .iter()
            .find(|t| t.src == Rank::new(0) && t.dst == Rank::new(1))
            .unwrap();
        assert!(!local.inter_node);
    }

    #[test]
    fn waw_ordering_for_reductions() {
        // Two reduce deliveries into the same (rank, chunk) at different
        // steps must be ordered.
        let mut b = AlgoBuilder::new("red", OpType::ReduceScatter, 4);
        b.rrc(1, 0, 0, 0); // step 0: rank1 reduces into rank0 chunk0
        b.rrc(2, 0, 1, 0); // step 1: rank2 reduces into rank0 chunk0
        b.rrc(3, 0, 2, 0); // step 2
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let chain = dag.chunk_tasks(ChunkId::new(0));
        assert_eq!(dag.preds(chain[1]), &[chain[0]]);
        assert_eq!(dag.preds(chain[2]), &[chain[1]]);
    }
}
