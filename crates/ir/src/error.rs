//! Error type for IR construction and validation.

use std::fmt;

/// Error produced while building or validating the dependency DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrError {
    msg: String,
}

impl IrError {
    /// Create an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR error: {}", self.msg)
    }
}

impl std::error::Error for IrError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IrError>;
