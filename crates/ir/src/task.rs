//! Transmission tasks — the vertices of the dependency DAG.

use rescc_lang::{CommType, TransferRec};
use rescc_topology::{ChunkId, ConnectionId, Rank, ResourceSet, Step};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task inside its [`DepDag`](crate::DepDag).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Construct from a raw index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index, usable for arena lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A transmission task `t(e, d)` of §3: one chunk transfer between GPU
/// peers, annotated with the connection it uses and the contention
/// resources of that connection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task index in the DAG.
    pub id: TaskId,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Logical algorithm step.
    pub step: Step,
    /// The chunk moved.
    pub chunk: ChunkId,
    /// Receive semantics.
    pub comm: CommType,
    /// The connection (ordered pair) used.
    pub conn: ConnectionId,
    /// Conflict resources (the communication-dependency domain of §3).
    pub conflict: ResourceSet,
    /// All capacity resources the path traverses (fluid sharing in the
    /// simulator; superset of `conflict`).
    pub path: ResourceSet,
    /// Whether the path crosses servers (slower α, lower bandwidth).
    pub inter_node: bool,
}

impl Task {
    /// The original `TransferRec` this task came from.
    pub fn rec(&self) -> TransferRec {
        TransferRec {
            src: self.src,
            dst: self.dst,
            step: self.step,
            chunk: self.chunk,
            comm: self.comm,
        }
    }
}
