//! DAG metrics: critical path, width, and per-link serial load — the
//! quantities that bound any schedule's completion time from below.
//!
//! For a single micro-batch with per-task cost `c(t)`:
//!
//! * no schedule can finish before the **critical path** (longest
//!   cost-weighted chain of data dependencies), and
//! * no schedule can finish before the **busiest conflict resource**
//!   drains its serial load `Σ c(t) / saturation`.
//!
//! The test suite uses [`lower_bound_ns`] as a soundness anchor: every
//! simulated completion must dominate it.

use crate::dag::DepDag;
use crate::task::Task;
use rescc_topology::ResourceId;
use std::collections::HashMap;

/// Cost-weighted critical path length through the data-dependency DAG.
pub fn critical_path_ns(dag: &DepDag, cost_ns: impl Fn(&Task) -> f64) -> f64 {
    // topo_order yields every dependency before its dependents.
    let order = dag.topo_order().expect("DAG is acyclic by construction");
    let mut finish = vec![0.0f64; dag.len()];
    let mut best = 0.0f64;
    for id in order {
        let t = dag.task(id);
        let start = dag
            .preds(id)
            .iter()
            .map(|p| finish[p.index()])
            .fold(0.0, f64::max);
        finish[id.index()] = start + cost_ns(t);
        best = best.max(finish[id.index()]);
    }
    best
}

/// Serial load per conflict resource: `Σ cost / saturation`, maximized.
pub fn bottleneck_resource_ns(dag: &DepDag, cost_ns: impl Fn(&Task) -> f64) -> f64 {
    let mut load: HashMap<ResourceId, f64> = HashMap::new();
    for t in dag.tasks() {
        for r in t.conflict.iter() {
            *load.entry(r).or_insert(0.0) += cost_ns(t);
        }
    }
    load.into_iter()
        .map(|(r, l)| l / dag.conflict_limit(r).max(1) as f64)
        .fold(0.0, f64::max)
}

/// A lower bound on any single-micro-batch completion:
/// `max(critical path, bottleneck resource)`.
pub fn lower_bound_ns(dag: &DepDag, cost_ns: impl Fn(&Task) -> f64 + Copy) -> f64 {
    critical_path_ns(dag, cost_ns).max(bottleneck_resource_ns(dag, cost_ns))
}

/// Maximum antichain-ish width proxy: the largest number of tasks sharing
/// one step (an upper bound on useful parallelism per algorithm step).
pub fn max_step_width(dag: &DepDag) -> usize {
    let mut per_step: HashMap<u32, usize> = HashMap::new();
    for t in dag.tasks() {
        *per_step.entry(t.step.0).or_insert(0) += 1;
    }
    per_step.into_values().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn chain_dag(n: u32) -> DepDag {
        let mut b = AlgoBuilder::new("chain", OpType::AllGather, n);
        for i in 0..n - 1 {
            b.recv(i, i + 1, i, 0);
        }
        DepDag::build(&b.build().unwrap(), &Topology::a100(1, n)).unwrap()
    }

    #[test]
    fn chain_critical_path_is_sum() {
        let dag = chain_dag(4);
        let cp = critical_path_ns(&dag, |_| 10.0);
        assert!((cp - 30.0).abs() < 1e-9); // 3 hops × 10
    }

    #[test]
    fn parallel_tasks_do_not_stack() {
        // Four independent transfers: critical path = one task.
        let mut b = AlgoBuilder::new("par", OpType::AllGather, 8);
        for i in 0..4u32 {
            b.recv(2 * i, 2 * i + 1, 0, 2 * i);
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 8)).unwrap();
        assert!((critical_path_ns(&dag, |_| 7.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_counts_saturation() {
        // Five transfers on one pair channel (saturation 4): serial load
        // 5×c shared by 4 lanes.
        let mut b = AlgoBuilder::new("hot", OpType::AllGather, 8);
        for c in 0..5u32 {
            b.recv(0, 1, 0, c);
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 8)).unwrap();
        let bn = bottleneck_resource_ns(&dag, |_| 4.0);
        assert!((bn - 5.0 * 4.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn width() {
        let dag = chain_dag(4);
        assert_eq!(max_step_width(&dag), 1);
    }
}
