//! Micro-batch planning.
//!
//! §2.1: the chunk moved by one primitive invocation is a small fraction of
//! the data being synchronized, so the backend splits the buffer into
//! micro-batches and executes the algorithm's transfer pattern once per
//! micro-batch. The *execution granularity* — how invocations of different
//! micro-batches interleave — is what distinguishes algorithm-level,
//! stage-level and ResCCL's task-level execution.

use serde::{Deserialize, Serialize};

/// The micro-batch decomposition of one collective call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatchPlan {
    /// Bytes of the whole per-rank buffer being synchronized.
    pub buffer_bytes: u64,
    /// Number of chunks the buffer is partitioned into (== nRanks).
    pub n_chunks: u32,
    /// Bytes one primitive invocation moves (the transfer-chunk size,
    /// 1 MB in the paper's CCL config).
    pub chunk_bytes: u64,
    /// Number of micro-batches `n`.
    pub n_micro_batches: u32,
}

impl MicroBatchPlan {
    /// Plan micro-batches for a `buffer_bytes`-sized per-rank buffer over
    /// `n_chunks` chunks with `chunk_bytes` per invocation.
    ///
    /// Each logical chunk holds `buffer_bytes / n_chunks` bytes and is
    /// moved in `ceil(chunk_len / chunk_bytes)` invocations — that count is
    /// the number of micro-batches. Small buffers yield a single
    /// micro-batch (with a proportionally smaller chunk), reproducing the
    /// paper's observation that small messages offer fewer scheduling
    /// opportunities.
    pub fn plan(buffer_bytes: u64, n_chunks: u32, chunk_bytes: u64) -> Self {
        assert!(buffer_bytes > 0, "empty buffer");
        assert!(n_chunks > 0, "need at least one chunk");
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let chunk_len = (buffer_bytes / n_chunks as u64).max(1);
        let n_micro_batches = chunk_len.div_ceil(chunk_bytes).max(1);
        Self {
            buffer_bytes,
            n_chunks,
            chunk_bytes: chunk_len.min(chunk_bytes),
            n_micro_batches: n_micro_batches.min(u32::MAX as u64) as u32,
        }
    }

    /// Bytes moved by one invocation in micro-batch `mb` (the final
    /// micro-batch may be short).
    pub fn invocation_bytes(&self, mb: u32) -> u64 {
        debug_assert!(mb < self.n_micro_batches);
        let chunk_len = (self.buffer_bytes / self.n_chunks as u64).max(1);
        if mb + 1 < self.n_micro_batches {
            self.chunk_bytes
        } else {
            let consumed = self.chunk_bytes * (self.n_micro_batches as u64 - 1);
            (chunk_len - consumed).max(1)
        }
    }

    /// Total bytes a single chunk contributes across all micro-batches.
    pub fn chunk_total_bytes(&self) -> u64 {
        (self.buffer_bytes / self.n_chunks as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_buffer_many_micro_batches() {
        // 1 GiB over 16 chunks with 1 MiB invocations: 64 MiB per chunk
        // => 64 micro-batches.
        let p = MicroBatchPlan::plan(1 << 30, 16, 1 << 20);
        assert_eq!(p.n_micro_batches, 64);
        assert_eq!(p.invocation_bytes(0), 1 << 20);
        assert_eq!(p.invocation_bytes(63), 1 << 20);
    }

    #[test]
    fn small_buffer_single_micro_batch() {
        // 8 MiB over 16 chunks: 512 KiB per chunk < 1 MiB invocation
        // => one micro-batch of 512 KiB.
        let p = MicroBatchPlan::plan(8 << 20, 16, 1 << 20);
        assert_eq!(p.n_micro_batches, 1);
        assert_eq!(p.invocation_bytes(0), 512 << 10);
    }

    #[test]
    fn ragged_tail() {
        // chunk_len = 2.5 MiB => 3 micro-batches: 1 MiB, 1 MiB, 0.5 MiB.
        let p = MicroBatchPlan::plan(40 << 20, 16, 1 << 20);
        assert_eq!(p.n_micro_batches, 3);
        assert_eq!(p.invocation_bytes(0), 1 << 20);
        assert_eq!(p.invocation_bytes(2), 512 << 10);
    }

    #[test]
    fn totals_are_consistent() {
        let p = MicroBatchPlan::plan(100 << 20, 8, 1 << 20);
        let sum: u64 = (0..p.n_micro_batches).map(|m| p.invocation_bytes(m)).sum();
        assert_eq!(sum, p.chunk_total_bytes());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn invocations_always_partition_the_chunk(
                buffer in 1u64..(8 << 30),
                n_chunks in 1u32..64,
                chunk_shift in 10u32..24,
            ) {
                let chunk_bytes = 1u64 << chunk_shift;
                let p = MicroBatchPlan::plan(buffer, n_chunks, chunk_bytes);
                prop_assert!(p.n_micro_batches >= 1);
                let sum: u64 =
                    (0..p.n_micro_batches).map(|m| p.invocation_bytes(m)).sum();
                prop_assert_eq!(sum, p.chunk_total_bytes());
                for m in 0..p.n_micro_batches {
                    let b = p.invocation_bytes(m);
                    prop_assert!(b >= 1);
                    prop_assert!(b <= chunk_bytes.max(1));
                }
            }
        }
    }
}
