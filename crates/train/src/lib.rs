//! # rescc-train
//!
//! End-to-end distributed-training throughput model (§5.5 / Fig. 13):
//! Megatron-style GPT-3 (tensor parallel) and T5 (data parallel) training
//! whose collective times come from the simulated CCL backends, including
//! the SM-contention coupling between communication TB footprint and
//! compute throughput.
//!
//! ```no_run
//! use rescc_train::{train_throughput, CclChoice, ModelConfig, ParallelConfig, TrainConfig};
//!
//! let report = train_throughput(
//!     &ModelConfig::gpt3("6.7B").unwrap(),
//!     &ParallelConfig::gpt3(2, 16),
//!     CclChoice::Resccl,
//!     &TrainConfig::default(),
//! ).unwrap();
//! println!("{:.1} samples/s", report.samples_per_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod sim;

pub use model::{Family, ModelConfig, ParallelConfig, UnknownModelSize};
pub use sim::{plan_cache_stats, train_throughput, CclChoice, TrainConfig, TrainReport};
