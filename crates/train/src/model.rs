//! Model and parallelism configurations for the end-to-end evaluation
//! (§5.5): GPT-3 variants trained with tensor parallelism and T5 variants
//! trained with data parallelism, exactly the Fig. 13 matrix.

use serde::{Deserialize, Serialize};

/// Error produced when a model preset selector is not one of the Fig. 13
/// configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownModelSize {
    /// The family whose preset table was consulted.
    pub family: Family,
    /// The selector the caller passed.
    pub size: String,
    /// The valid selectors for that family.
    pub expected: &'static str,
}

impl std::fmt::Display for UnknownModelSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let family = match self.family {
            Family::Gpt3 => "GPT-3",
            Family::T5 => "T5",
        };
        write!(
            f,
            "unknown {family} size {} (use {})",
            self.size, self.expected
        )
    }
}

impl std::error::Error for UnknownModelSize {}

/// Model family — determines the parallelism strategy of §5.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// GPT-3 decoder models, trained with tensor parallelism.
    Gpt3,
    /// T5 encoder–decoder models, trained with data parallelism.
    T5,
}

/// A transformer model configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name ("GPT-3 6.7B").
    pub name: String,
    /// Family.
    pub family: Family,
    /// Total parameters.
    pub params: u64,
    /// Transformer layers (decoder layers for GPT-3; enc+dec for T5).
    pub n_layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Sequence length per sample.
    pub seq_len: u32,
}

impl ModelConfig {
    /// GPT-3 variants of Fig. 13. Accepts "6.7B", "13B", "22B", "45B".
    pub fn gpt3(size: &str) -> Result<Self, UnknownModelSize> {
        let (params, n_layers, hidden) = match size {
            "6.7B" => (6_700_000_000u64, 32u32, 4096u32),
            "13B" => (13_000_000_000, 40, 5120),
            "22B" => (22_000_000_000, 44, 6144),
            "45B" => (45_000_000_000, 48, 8192),
            other => {
                return Err(UnknownModelSize {
                    family: Family::Gpt3,
                    size: other.to_string(),
                    expected: "6.7B/13B/22B/45B",
                })
            }
        };
        Ok(Self {
            name: format!("GPT-3 {size}"),
            family: Family::Gpt3,
            params,
            n_layers,
            hidden,
            seq_len: 1024,
        })
    }

    /// T5 variants of Fig. 13. Accepts "220M", "770M", "3B".
    pub fn t5(size: &str) -> Result<Self, UnknownModelSize> {
        let (params, n_layers, hidden) = match size {
            "220M" => (220_000_000u64, 24u32, 768u32),
            "770M" => (770_000_000, 48, 1024),
            "3B" => (3_000_000_000, 48, 2048),
            other => {
                return Err(UnknownModelSize {
                    family: Family::T5,
                    size: other.to_string(),
                    expected: "220M/770M/3B",
                })
            }
        };
        Ok(Self {
            name: format!("T5 {size}"),
            family: Family::T5,
            params,
            n_layers,
            hidden,
            seq_len: 512,
        })
    }

    /// Training FLOPs per token (forward + backward ≈ 6 × params).
    pub fn flops_per_token(&self) -> f64 {
        6.0 * self.params as f64
    }
}

/// Distributed parallelism configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Tensor-parallel group size (GPUs inside one node).
    pub tp: u32,
    /// Pipeline-parallel stage count (an extension beyond the paper's
    /// TP/DP evaluation; 1 = disabled).
    pub pp: u32,
    /// Data-parallel replica count.
    pub dp: u32,
    /// Global batch size (samples per iteration).
    pub global_batch: u32,
    /// Pipeline micro-batches per iteration (only meaningful with pp > 1).
    pub pipeline_micro_batches: u32,
}

impl ParallelConfig {
    /// The paper's GPT-3 setting: TP = 8, DP = nodes, batch per Table 2.
    pub fn gpt3(n_nodes: u32, global_batch: u32) -> Self {
        Self {
            tp: 8,
            pp: 1,
            dp: n_nodes,
            global_batch,
            pipeline_micro_batches: 1,
        }
    }

    /// The paper's T5 setting: pure data parallelism over all GPUs.
    pub fn t5(n_gpus: u32, global_batch: u32) -> Self {
        Self {
            tp: 1,
            pp: 1,
            dp: n_gpus,
            global_batch,
            pipeline_micro_batches: 1,
        }
    }

    /// A 3D-parallel setting (TP × PP × DP) with `m` pipeline micro-batches
    /// — the standard Megatron extension beyond the paper's evaluation.
    pub fn three_d(tp: u32, pp: u32, dp: u32, global_batch: u32, m: u32) -> Self {
        assert!(tp >= 1 && pp >= 1 && dp >= 1 && m >= 1);
        Self {
            tp,
            pp,
            dp,
            global_batch,
            pipeline_micro_batches: m,
        }
    }

    /// Total GPUs in the job.
    pub fn n_gpus(&self) -> u32 {
        self.tp * self.pp * self.dp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        let m = ModelConfig::gpt3("6.7B").unwrap();
        assert_eq!(m.family, Family::Gpt3);
        assert!(m.params > 6_000_000_000);
        let t = ModelConfig::t5("3B").unwrap();
        assert_eq!(t.family, Family::T5);
        assert!(t.hidden >= 1024);
    }

    #[test]
    fn unknown_size_is_a_typed_error() {
        let err = ModelConfig::gpt3("9000B").unwrap_err();
        assert_eq!(err.family, Family::Gpt3);
        assert_eq!(err.size, "9000B");
        assert!(err.to_string().contains("unknown GPT-3 size 9000B"));
        let err = ModelConfig::t5("11B").unwrap_err();
        assert_eq!(err.family, Family::T5);
        assert!(err.to_string().contains("220M/770M/3B"));
    }

    #[test]
    fn parallel_config_gpu_count() {
        assert_eq!(ParallelConfig::gpt3(4, 32).n_gpus(), 32);
        assert_eq!(ParallelConfig::t5(16, 16).n_gpus(), 16);
    }
}
