//! End-to-end training iteration model.
//!
//! Fig. 13's mechanism has two couplings between the CCL backend and
//! training throughput, and this model reproduces both:
//!
//! 1. **Communication on the critical path** — tensor-parallel activation
//!    AllReduces are exposed (4 per layer per iteration); data-parallel
//!    gradient AllReduce overlaps with the backward pass up to an overlap
//!    window. Collective times come from the *simulated backends*, so the
//!    backend differences of §5.2 propagate here.
//! 2. **SM contention** — communication TBs occupy SMs that computation
//!    cannot use. During overlapped communication, compute slows by the
//!    fraction of SMs held by the backend's TBs — ResCCL's smaller TB
//!    footprint (§5.4) directly buys compute throughput.

use crate::model::{ModelConfig, ParallelConfig};
use rescc_algos::{hm_allreduce, nccl_rings_allreduce};
use rescc_backends::{Backend, MscclBackend, NcclBackend, RunReport};
use rescc_core::{CacheStats, Compiler, PlanCache};
use rescc_ir::MicroBatchPlan;
use rescc_lang::AlgoSpec;
use rescc_sim::{SimConfig, SimResult};
use rescc_topology::Topology;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Process-global compiled-plan cache for the ResCCL path. A training loop
/// issues the same collectives (same algorithm, topology and micro-batch
/// shape) every iteration, so only the first iteration compiles; every
/// later one is a fingerprint lookup.
static PLAN_CACHE: OnceLock<PlanCache> = OnceLock::new();

/// Counters of the training model's plan cache (hits, misses, entries).
pub fn plan_cache_stats() -> CacheStats {
    PLAN_CACHE.get_or_init(PlanCache::new).stats()
}

/// Run one ResCCL collective through the plan cache. The compiled artifact
/// is identical to what `RescclBackend::default()` builds per call
/// (state-based allocation, HPDS, direct kernels), so cached dispatch
/// changes cost, not results.
fn resccl_cached_run(
    spec: &AlgoSpec,
    topo: &Topology,
    buffer_bytes: u64,
    chunk_bytes: u64,
) -> SimResult<RunReport> {
    let cache = PLAN_CACHE.get_or_init(PlanCache::new);
    let mb = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk_bytes);
    let plan = cache.get_or_compile(&Compiler::new(), spec, topo, &mb)?;
    let sim = plan.run_with(
        buffer_bytes,
        chunk_bytes,
        &SimConfig::default().without_validation(),
    )?;
    Ok(RunReport {
        backend: "resccl".to_string(),
        algo: spec.name().to_string(),
        buffer_bytes,
        total_tbs: plan.alloc.total_tbs(),
        max_rank_tbs: plan.alloc.max_rank_tbs(),
        certificate_undercut: plan
            .makespan_floor_ns(buffer_bytes, chunk_bytes)
            .map(|floor| sim.undercuts_floor(floor)),
        sim,
        cache: Some(cache.stats()),
        recovery: None,
        obs: None,
    })
}

/// Which CCL backend Megatron links against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CclChoice {
    /// Native Megatron: NCCL with ring algorithms.
    Nccl,
    /// Megatron + MSCCL running the custom HM algorithms.
    Msccl,
    /// Megatron + ResCCL running the custom HM algorithms.
    Resccl,
}

impl CclChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CclChoice::Nccl => "nccl",
            CclChoice::Msccl => "msccl",
            CclChoice::Resccl => "resccl",
        }
    }
}

/// Hardware and overlap assumptions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Effective per-GPU compute throughput (FLOP/s) after kernel
    /// efficiency — A100 bf16 peak 312 TFLOP/s at ≈45% MFU.
    pub gpu_flops: f64,
    /// SMs per GPU (A100: 108).
    pub sms_per_gpu: u32,
    /// Fraction of the backward pass usable to hide DP communication.
    pub overlap_window_frac: f64,
    /// Chunk size for the simulated collectives (bytes).
    pub chunk_bytes: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            gpu_flops: 140e12,
            sms_per_gpu: 108,
            overlap_window_frac: 0.5,
            chunk_bytes: 4 << 20,
        }
    }
}

/// Pipeline-parallel timing: the classic 1F1B schedule fills and drains
/// `pp − 1` stage slots around `m` micro-batches, and every stage boundary
/// forwards activations point-to-point each micro-batch (and gradients on
/// the way back).
fn pipeline_terms(model: &ModelConfig, par: &ParallelConfig, compute_s: f64) -> (f64, f64) {
    if par.pp <= 1 {
        return (compute_s, 0.0);
    }
    let m = par.pipeline_micro_batches.max(1) as f64;
    let pp = par.pp as f64;
    // Per-stage compute of one micro-batch, then fill/drain bubble.
    let stage_micro = compute_s / (pp * m);
    let pipelined_compute = (m + pp - 1.0) * stage_micro * pp / pp; // (m+pp-1) slots
                                                                    // Activation P2P per boundary per micro-batch, forward + backward,
                                                                    // over the inter-node fabric.
    let topo = Topology::a100(2.max(par.pp), 1);
    let conn = topo.connection(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
    let batch_per_replica = (par.global_batch / par.dp).max(1) as u64;
    let act_bytes =
        (batch_per_replica as f64 / m) as u64 * model.seq_len as u64 * model.hidden as u64 * 2;
    let p2p_s = conn.serial_cost_ns(act_bytes.max(1)) * 1e-9;
    let p2p_total = 2.0 * (pp - 1.0) * m * p2p_s / m; // amortized per slot chain
    (pipelined_compute, p2p_total)
}

/// Breakdown of one training iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Backend name.
    pub backend: String,
    /// Pure compute time per iteration, seconds.
    pub compute_s: f64,
    /// Exposed tensor-parallel communication per iteration, seconds.
    pub tp_comm_s: f64,
    /// Exposed (non-overlapped) data-parallel communication, seconds.
    pub dp_exposed_s: f64,
    /// Extra compute time caused by SM contention during overlapped
    /// communication, seconds.
    pub contention_s: f64,
    /// Total iteration time, seconds.
    pub iter_s: f64,
    /// Training throughput, samples per second.
    pub samples_per_s: f64,
}

/// Simulate the throughput of one (model, parallelism, backend) cell of
/// Fig. 13.
pub fn train_throughput(
    model: &ModelConfig,
    par: &ParallelConfig,
    ccl: CclChoice,
    cfg: &TrainConfig,
) -> SimResult<TrainReport> {
    // ---- Compute -------------------------------------------------------
    let tokens = par.global_batch as u64 * model.seq_len as u64;
    let total_flops = model.flops_per_token() * tokens as f64;
    // Work splits over TP within a replica and DP across replicas.
    let flops_per_gpu = total_flops / par.n_gpus() as f64;
    let compute_s = flops_per_gpu / cfg.gpu_flops;

    // ---- Collectives ---------------------------------------------------
    // NCCL/MSCCL model per-call lazy compilation; ResCCL dispatches through
    // the process-global plan cache (offline compilation, Fig. 5).
    let backend: Option<Box<dyn Backend>> = match ccl {
        CclChoice::Nccl => Some(Box::new(NcclBackend::default())),
        CclChoice::Msccl => Some(Box::new(MscclBackend::default())),
        CclChoice::Resccl => None,
    };
    let run = |spec: &AlgoSpec, topo: &Topology, bytes: u64| -> SimResult<RunReport> {
        match &backend {
            Some(b) => b.run_unchecked(spec, topo, bytes, cfg.chunk_bytes),
            None => resccl_cached_run(spec, topo, bytes, cfg.chunk_bytes),
        }
    };
    let algo_for = |n_nodes: u32, gpn: u32| match ccl {
        // Native Megatron/NCCL runs its standard multi-ring AllReduce (one
        // ring per NIC); the custom-algorithm backends run the HM AllReduce
        // of Appendix A.
        CclChoice::Nccl => nccl_rings_allreduce(n_nodes, gpn, (gpn / 2).max(1)),
        CclChoice::Msccl | CclChoice::Resccl => hm_allreduce(n_nodes, gpn),
    };

    // Tensor-parallel activation AllReduce: 4 per layer per iteration
    // (2 forward + 2 backward), over the intra-node TP group.
    let (tp_comm_s, tp_tbs_per_gpu) = if par.tp > 1 {
        let tp_topo = Topology::a100(1, par.tp);
        let batch_per_replica = (par.global_batch / par.dp).max(1) as u64;
        let act_bytes = batch_per_replica * model.seq_len as u64 * model.hidden as u64 * 2;
        let spec = algo_for(1, par.tp);
        let rep = run(&spec, &tp_topo, act_bytes.max(1 << 20))?;
        let per_call_s = rep.sim.completion_ns * 1e-9;
        let calls = 4.0 * model.n_layers as f64;
        (per_call_s * calls, rep.max_rank_tbs as u32)
    } else {
        (0.0, 0)
    };

    // Data-parallel gradient AllReduce. For TP jobs the 8 TP ranks run 8
    // parallel group-AllReduces whose aggregate traffic over the NICs is
    // that of one cluster-wide AllReduce of the full (TP-sharded) gradient,
    // so we simulate the collective on the whole cluster — which also
    // engages the NIC-sharing contention the backends differ on.
    let (dp_comm_s, dp_tbs_per_gpu) = if par.dp > 1 {
        let (nodes, gpn) = if par.tp > 1 {
            (par.dp, par.tp)
        } else {
            (par.dp.div_ceil(8).max(1), par.dp.min(8))
        };
        let dp_topo = Topology::a100(nodes, gpn);
        let grad_bytes = (model.params as f64 * 2.0 / par.tp as f64) as u64;
        let spec = algo_for(nodes, gpn);
        let rep = run(&spec, &dp_topo, grad_bytes.max(1 << 20))?;
        (rep.sim.completion_ns * 1e-9, rep.max_rank_tbs as u32)
    } else {
        (0.0, 0)
    };

    // ---- Pipeline parallelism (extension) -------------------------------
    let (compute_s, pp_comm_s) = pipeline_terms(model, par, compute_s);

    // ---- Overlap and SM contention --------------------------------------
    let overlap_window = cfg.overlap_window_frac * compute_s;
    let overlapped = dp_comm_s.min(overlap_window);
    let dp_exposed_s = dp_comm_s - overlapped;
    // While communication overlaps compute, its TBs steal SMs.
    let comm_tbs = tp_tbs_per_gpu.max(dp_tbs_per_gpu) as f64;
    let sm_frac = (comm_tbs / cfg.sms_per_gpu as f64).min(0.9);
    let contention_s = overlapped * sm_frac / (1.0 - sm_frac);

    let iter_s = compute_s + contention_s + tp_comm_s + dp_exposed_s + pp_comm_s;
    Ok(TrainReport {
        model: model.name.clone(),
        backend: ccl.name().to_string(),
        compute_s,
        tp_comm_s,
        dp_exposed_s,
        contention_s,
        iter_s,
        samples_per_s: par.global_batch as f64 / iter_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_throughput_orders_backends() {
        // Fig. 13(a): ResCCL > native NCCL and > MSCCL variant.
        let model = ModelConfig::gpt3("6.7B").unwrap();
        let par = ParallelConfig::gpt3(2, 16);
        let cfg = TrainConfig::default();
        let r = train_throughput(&model, &par, CclChoice::Resccl, &cfg).unwrap();
        let n = train_throughput(&model, &par, CclChoice::Nccl, &cfg).unwrap();
        let m = train_throughput(&model, &par, CclChoice::Msccl, &cfg).unwrap();
        assert!(
            r.samples_per_s > n.samples_per_s,
            "resccl {} <= nccl {}",
            r.samples_per_s,
            n.samples_per_s
        );
        assert!(
            r.samples_per_s > m.samples_per_s,
            "resccl {} <= msccl {}",
            r.samples_per_s,
            m.samples_per_s
        );
    }

    #[test]
    fn t5_throughput_orders_backends() {
        let model = ModelConfig::t5("770M").unwrap();
        let par = ParallelConfig::t5(16, 16);
        let cfg = TrainConfig::default();
        let r = train_throughput(&model, &par, CclChoice::Resccl, &cfg).unwrap();
        let n = train_throughput(&model, &par, CclChoice::Nccl, &cfg).unwrap();
        assert!(r.samples_per_s > n.samples_per_s);
    }

    #[test]
    fn iteration_time_decomposes() {
        let model = ModelConfig::gpt3("6.7B").unwrap();
        let par = ParallelConfig::gpt3(2, 16);
        let rep =
            train_throughput(&model, &par, CclChoice::Resccl, &TrainConfig::default()).unwrap();
        let sum = rep.compute_s + rep.contention_s + rep.tp_comm_s + rep.dp_exposed_s;
        assert!((rep.iter_s - sum).abs() < 1e-12);
        assert!(rep.compute_s > 0.0 && rep.tp_comm_s > 0.0);
    }

    #[test]
    fn pipeline_parallelism_extension() {
        // 3D parallel: same GPU count, PP splits stages. With few pipeline
        // micro-batches the fill/drain bubble hurts; with many it fades.
        let model = ModelConfig::gpt3("13B").unwrap();
        let cfg = TrainConfig::default();
        let flat = ParallelConfig::gpt3(4, 32);
        let deep_few = ParallelConfig::three_d(8, 2, 2, 32, 2);
        let deep_many = ParallelConfig::three_d(8, 2, 2, 32, 16);
        let t_flat = train_throughput(&model, &flat, CclChoice::Resccl, &cfg).unwrap();
        let t_few = train_throughput(&model, &deep_few, CclChoice::Resccl, &cfg).unwrap();
        let t_many = train_throughput(&model, &deep_many, CclChoice::Resccl, &cfg).unwrap();
        assert!(
            t_many.samples_per_s > t_few.samples_per_s,
            "more pipeline micro-batches must shrink the bubble: {} !> {}",
            t_many.samples_per_s,
            t_few.samples_per_s
        );
        assert!(t_flat.samples_per_s > 0.0 && t_few.samples_per_s > 0.0);
    }

    #[test]
    fn repeated_iterations_hit_the_plan_cache() {
        let model = ModelConfig::gpt3("6.7B").unwrap();
        let par = ParallelConfig::gpt3(2, 16);
        let cfg = TrainConfig::default();
        let a = train_throughput(&model, &par, CclChoice::Resccl, &cfg).unwrap();
        let mid = plan_cache_stats();
        let b = train_throughput(&model, &par, CclChoice::Resccl, &cfg).unwrap();
        let after = plan_cache_stats();
        // The second identical iteration issues one TP and one DP
        // collective, both already compiled (other tests sharing the
        // process cache can only add further hits, never remove them).
        assert!(
            after.hits >= mid.hits + 2,
            "expected 2 more cache hits: {mid:?} -> {after:?}"
        );
        assert_eq!(a, b, "cached dispatch must not change results");
    }

    #[test]
    fn bigger_models_are_slower() {
        let par = ParallelConfig::gpt3(4, 32);
        let cfg = TrainConfig::default();
        let small = train_throughput(
            &ModelConfig::gpt3("6.7B").unwrap(),
            &par,
            CclChoice::Resccl,
            &cfg,
        )
        .unwrap();
        let big = train_throughput(
            &ModelConfig::gpt3("45B").unwrap(),
            &par,
            CclChoice::Resccl,
            &cfg,
        )
        .unwrap();
        assert!(small.samples_per_s > big.samples_per_s);
    }
}
