//! Residual-plan construction — the partial-progress half of fault
//! recovery.
//!
//! When a run aborts, the engine's [`FaultFrontier`] names exactly which
//! `(task, micro-batch)` invocations completed. Restarting from scratch
//! throws that work away; [`Compiler::residual_plan`] instead compiles the
//! *remainder*:
//!
//! 1. **Prune** — tasks whose every micro-batch invocation completed are
//!    removed from the DAG ([`DepDag::residual`]), which re-roots the
//!    surviving chains at the frontier.
//! 2. **Recompile** — scheduling and lowering re-run on the residual DAG
//!    (the pruned shape changes priorities and TB shapes), and the
//!    sanitize lints re-run via [`rescc_analyze::analyze_residual`].
//!    Dead-transfer coverage comes from RA008, which replays the
//!    completed prefix from the fault frontier before judging the
//!    surviving transfers (plain RA004 would mis-replay a plan whose
//!    chunk histories start mid-flight).
//! 3. **Resume state** — a [`ResumeState`] carries the still-incomplete
//!    tasks' finished micro-batches plus the ordered buffer replay that
//!    reconstructs everything the aborted run already moved.
//! 4. **Provenance** — before the plan is handed back, a static per-chunk
//!    value replay proves that *replayed prefix + residual remainder*
//!    reaches the collective's postcondition in every micro-batch, i.e.
//!    that resuming is byte-equivalent to a fault-free run.

use crate::{phase_counters, CompiledPlan, Compiler, LintGate, PhaseTimings, SchedulerChoice};
use rescc_alloc::TbAllocation;
use rescc_analyze::{analyze_residual, AnalysisInput, AnalysisReport, ResidualContext};
use rescc_ir::{DepDag, TaskId};
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_lang::CommType;
use rescc_sched::{hpds_with_threads, round_robin_with_threads};
use rescc_sim::{
    expected_final, initial_value, ChunkValue, FaultFrontier, ReplayOp, ResumeState, SimError,
    SimResult,
};
use rescc_topology::ChunkId;
use std::time::Instant;

/// The compiled remainder of a faulted run: a [`CompiledPlan`] over the
/// unfinished tasks plus the [`ResumeState`] that makes running it
/// equivalent to finishing the original run.
#[derive(Clone, Debug)]
pub struct ResidualPlan {
    /// The residual plan (fully-completed tasks pruned, chains re-rooted,
    /// scheduling/lowering/sanitize re-run on the remainder).
    pub plan: CompiledPlan,
    /// Resume state to run the plan with
    /// ([`SimConfig::with_resume`](rescc_sim::SimConfig::with_resume)):
    /// completed micro-batches of surviving tasks plus the buffer replay
    /// of everything the aborted run finished.
    pub resume: ResumeState,
    /// Map from residual task index to the original plan's [`TaskId`],
    /// for translating later frontiers back into the original id space.
    pub orig_ids: Vec<TaskId>,
}

impl ResidualPlan {
    /// Fraction of the original run's invocations the resume skips.
    pub fn carried_fraction(&self, frontier: &FaultFrontier) -> f64 {
        frontier.fraction_complete()
    }

    /// Translate a frontier captured while *running this residual plan*
    /// back into the original plan's id space, so successive faults can be
    /// accumulated ([`FaultFrontier::union`]) against one baseline.
    pub fn frontier_to_original(
        &self,
        residual: &FaultFrontier,
        original_n_tasks: u32,
    ) -> FaultFrontier {
        let mut out = FaultFrontier::new(original_n_tasks, residual.n_mb, residual.at_ns);
        for (ri, oid) in self.orig_ids.iter().enumerate() {
            for mb in 0..residual.n_mb {
                if residual.is_done(ri as u32, mb) {
                    out.mark(oid.0, mb);
                }
            }
        }
        out
    }
}

impl Compiler {
    /// Compile the residual plan for a faulted run: prune the frontier's
    /// fully-completed tasks, re-schedule and re-lower the remainder, re-run
    /// the sanitize lints, build the resume state, and statically verify
    /// provenance (replayed prefix + remainder ≡ the full collective).
    ///
    /// The returned plan targets the *same* topology as `cached` — mask the
    /// health first (via [`Compiler::recompile_delta`]) when the fault was
    /// permanent, then build the residual from the recompiled plan.
    ///
    /// Provenance verification mirrors the static-verify policy of
    /// [`Compiler::compile_spec`]: it runs when [`Compiler::verify`] is set
    /// and the group has at most 256 ranks (the simulator's runtime data
    /// check still covers larger groups).
    pub fn residual_plan(
        &self,
        cached: &CompiledPlan,
        frontier: &FaultFrontier,
    ) -> SimResult<ResidualPlan> {
        let threads = self.threads.max(1);
        let mut timings = PhaseTimings::default();
        let n_tasks = cached.dag.len() as u32;
        if frontier.n_tasks != n_tasks {
            return Err(SimError::InvalidConfig(format!(
                "frontier covers {} tasks, plan has {n_tasks}",
                frontier.n_tasks
            )));
        }

        let t0 = Instant::now();
        let keep: Vec<bool> = (0..n_tasks).map(|t| !frontier.task_fully_done(t)).collect();
        let (dag, orig_ids) = cached
            .dag
            .residual(&keep, &cached.topo)
            .map_err(|e| SimError::new(e.to_string()))?;
        phase_counters::bump(&phase_counters::ANALYSIS);
        timings.analysis = t0.elapsed();

        // Resume state: completed micro-batches of surviving tasks in the
        // residual id space, plus the replay of *every* completed
        // invocation (pruned tasks included) in per-chunk dependency
        // order — buffer effects never cross chunks, so per-chunk order is
        // exactly the order the engine produced them in.
        let n_mb = frontier.n_mb;
        let mut resume = ResumeState::new(dag.len() as u32, n_mb);
        let mut new_id = vec![u32::MAX; cached.dag.len()];
        for (ri, oid) in orig_ids.iter().enumerate() {
            new_id[oid.index()] = ri as u32;
        }
        for c in 0..cached.dag.n_chunks() {
            for &tid in cached.dag.chunk_tasks(ChunkId::new(c)) {
                let task = cached.dag.task(tid);
                for mb in 0..n_mb {
                    if !frontier.is_done(tid.0, mb) {
                        continue;
                    }
                    resume.replay.push(ReplayOp {
                        src: task.src.0,
                        dst: task.dst.0,
                        chunk: task.chunk.0,
                        mb,
                        reduce: task.comm == CommType::Rrc,
                    });
                    if new_id[tid.index()] != u32::MAX {
                        resume.mark_done(new_id[tid.index()], mb);
                    }
                }
            }
        }

        let t0 = Instant::now();
        let schedule = match self.scheduler {
            SchedulerChoice::Hpds => hpds_with_threads(&dag, threads),
            SchedulerChoice::RoundRobin => round_robin_with_threads(&dag, threads),
        };
        schedule.validate(&dag).map_err(SimError::SchedulerBug)?;
        phase_counters::bump(&phase_counters::SCHEDULING);
        timings.scheduling = t0.elapsed();

        let t0 = Instant::now();
        let alloc = TbAllocation::state_based_with_threads(&dag, &schedule, threads);
        alloc
            .validate(&dag, &schedule)
            .map_err(SimError::AllocationBug)?;
        let program = KernelProgram::generate_with_threads(
            cached.spec.name(),
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
            threads,
        );
        program.validate(&dag).map_err(SimError::LoweringBug)?;
        phase_counters::bump(&phase_counters::LOWERING);
        timings.lowering = t0.elapsed();

        let t0 = Instant::now();
        let diagnostics = if self.lint_gate == LintGate::Off {
            AnalysisReport::default()
        } else {
            let completed: Vec<bool> = keep.iter().map(|&k| !k).collect();
            let report = analyze_residual(
                &AnalysisInput {
                    spec: &cached.spec,
                    dag: &dag,
                    schedule: &schedule,
                    alloc: &alloc,
                    program: &program,
                    topo: &cached.topo,
                },
                &self.lint_config,
                &ResidualContext {
                    orig_dag: &cached.dag,
                    orig_ids: &orig_ids,
                    completed: &completed,
                },
            );
            phase_counters::bump(&phase_counters::SANITIZE);
            if self.lint_gate == LintGate::Deny && report.has_errors() {
                return Err(SimError::new(format!(
                    "sanitize: residual plan rejected by lint gate\n{}",
                    report.render_human()
                )));
            }
            report
        };
        timings.sanitize = t0.elapsed();

        if self.verify && cached.spec.n_ranks() <= 256 {
            verify_provenance(cached, &dag, &resume)?;
        }

        let plan = CompiledPlan {
            topo: cached.topo.clone(),
            spec: cached.spec.clone(),
            op: cached.op,
            n_chunks: cached.n_chunks,
            dag,
            schedule,
            alloc,
            program,
            timings,
            diagnostics,
        };
        Ok(ResidualPlan {
            plan,
            resume,
            orig_ids,
        })
    }
}

/// Statically prove frontier + residual ≡ full run: per micro-batch,
/// replay the completed prefix's buffer effects and then the residual
/// tasks' (in per-chunk dependency order) over the collective's initial
/// values, and check every rank/chunk slot reaches the postcondition.
fn verify_provenance(
    cached: &CompiledPlan,
    residual: &DepDag,
    resume: &ResumeState,
) -> SimResult<()> {
    let n_ranks = cached.spec.n_ranks();
    let n_chunks = cached.dag.n_chunks();
    let op = cached.op;
    for mb in 0..resume.n_mb {
        let mut buf: Vec<ChunkValue> = (0..n_ranks)
            .flat_map(|r| (0..n_chunks).map(move |c| initial_value(op, n_ranks, r, c)))
            .collect();
        let apply = |src: u32, dst: u32, chunk: u32, reduce: bool, buf: &mut Vec<ChunkValue>| {
            let s = (src * n_chunks + chunk) as usize;
            let d = (dst * n_chunks + chunk) as usize;
            let v = buf[s].clone();
            if reduce {
                buf[d].reduce_from(&v);
            } else {
                buf[d].copy_from(&v);
            }
        };
        for rop in resume.replay.iter().filter(|o| o.mb == mb) {
            apply(rop.src, rop.dst, rop.chunk, rop.reduce, &mut buf);
        }
        for c in 0..n_chunks {
            for &tid in residual.chunk_tasks(ChunkId::new(c)) {
                if resume.is_done(tid.0, mb) {
                    continue;
                }
                let t = residual.task(tid);
                apply(
                    t.src.0,
                    t.dst.0,
                    t.chunk.0,
                    t.comm == CommType::Rrc,
                    &mut buf,
                );
            }
        }
        for r in 0..n_ranks {
            for c in 0..n_chunks {
                if let Some(exp) = expected_final(op, n_ranks, r, c) {
                    if buf[(r * n_chunks + c) as usize] != exp {
                        return Err(SimError::new(format!(
                            "residual provenance violated: rank {r} chunk {c} \
                             micro-batch {mb} would not reach the collective's \
                             final value — frontier and residual disagree"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_algos::hm_allreduce;
    use rescc_topology::Topology;

    fn frontier_at(plan: &CompiledPlan, n_mb: u32, fraction: f64) -> FaultFrontier {
        // Deterministic synthetic frontier: complete a downward-closed
        // prefix of each chunk chain across all micro-batches, plus the
        // first micro-batch of the next task in the chain.
        let mut f = FaultFrontier::new(plan.dag.len() as u32, n_mb, 1_000_000);
        for c in 0..plan.dag.n_chunks() {
            let chain = plan.dag.chunk_tasks(ChunkId::new(c));
            let full = ((chain.len() as f64) * fraction) as usize;
            for (i, tid) in chain.iter().enumerate() {
                if i < full {
                    for mb in 0..n_mb {
                        f.mark(tid.0, mb);
                    }
                } else if i == full && n_mb > 1 {
                    f.mark(tid.0, 0);
                }
            }
        }
        f
    }

    #[test]
    fn residual_plan_prunes_verifies_and_finishes_the_run() {
        let topo = Topology::a100(2, 4);
        let compiler = Compiler::new();
        let plan = compiler.compile_spec(&hm_allreduce(2, 4), &topo).unwrap();
        let buffer: u64 = 16 << 20;
        let chunk: u64 = 1 << 20;
        let n_mb = (buffer / (plan.n_chunks as u64 * chunk)).max(1) as u32;
        let frontier = frontier_at(&plan, n_mb, 0.5);
        assert!(frontier.fraction_complete() > 0.3);

        let residual = compiler.residual_plan(&plan, &frontier).unwrap();
        assert!(residual.plan.dag.len() < plan.dag.len(), "must prune");
        assert_eq!(residual.orig_ids.len(), residual.plan.dag.len());

        let base = plan.run(buffer, chunk).unwrap();
        let cfg = rescc_sim::SimConfig::default().with_resume(residual.resume.clone());
        let rep = residual.plan.run_with(buffer, chunk, &cfg).unwrap();
        assert_eq!(rep.data_valid, Some(true));
        assert!(
            rep.completion_ns < base.completion_ns,
            "residual {} must finish sooner than full {}",
            rep.completion_ns,
            base.completion_ns
        );
    }

    #[test]
    fn residual_plan_rejects_mismatched_frontier() {
        let topo = Topology::a100(1, 4);
        let compiler = Compiler::new();
        let plan = compiler
            .compile_spec(&rescc_algos::ring_allgather(4), &topo)
            .unwrap();
        let bad = FaultFrontier::new(3, 2, 0);
        assert!(compiler.residual_plan(&plan, &bad).is_err());
    }

    #[test]
    fn residual_frontier_translates_back_to_original_ids() {
        let topo = Topology::a100(1, 8);
        let compiler = Compiler::new();
        let plan = compiler
            .compile_spec(&rescc_algos::ring_allgather(8), &topo)
            .unwrap();
        let frontier = frontier_at(&plan, 2, 0.4);
        let residual = compiler.residual_plan(&plan, &frontier).unwrap();
        // A second fault mid-residual: mark the first residual task done.
        let mut f2 = FaultFrontier::new(residual.plan.dag.len() as u32, 2, 500);
        f2.mark(0, 0);
        f2.mark(0, 1);
        let mapped = residual.frontier_to_original(&f2, plan.dag.len() as u32);
        assert_eq!(mapped.completed(), 2);
        assert!(mapped.task_fully_done(residual.orig_ids[0].0));
        // Union with the first frontier accumulates progress (the mapped
        // task may already have some micro-batches done in the original).
        let orig = residual.orig_ids[0].0;
        let fresh = (0..2).filter(|&mb| !frontier.is_done(orig, mb)).count() as u64;
        let mut acc = frontier.clone();
        assert!(acc.union(&mapped));
        assert_eq!(acc.completed(), frontier.completed() + fresh);
    }
}
