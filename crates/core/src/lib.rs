//! # rescc-core
//!
//! The public facade of the ResCCL backend: a four-phase offline compiler
//! (the workflow of Fig. 5 / Fig. 10(a)) that turns an algorithm — ResCCLang
//! source or a validated [`AlgoSpec`] — into an executable lightweight
//! kernel program, plus the plumbing to run the result on the simulated
//! cluster and to emit the generated pseudo-CUDA.
//!
//! Phases (timed individually, matching the Fig. 10(a) breakdown):
//!
//! 1. **Parsing** — DSL text → AST → validated `AlgoSpec`,
//! 2. **Analysis** — `AlgoSpec` → dependency DAG (`G_A`),
//! 3. **Scheduling** — HPDS (or round-robin) → task pipeline,
//! 4. **Lowering** — TB allocation + kernel generation,
//! 5. **Sanitize** — cross-phase static analysis (`rescc-analyze` lints
//!    RA001–RA005) over the finished artifact stack, gated by
//!    [`LintGate`] (deny by default: `Error`-severity findings fail the
//!    compile).
//!
//! ```
//! use rescc_core::Compiler;
//! use rescc_topology::Topology;
//! use rescc_algos::hm_allreduce;
//!
//! let topo = Topology::a100(2, 4);
//! let plan = Compiler::new().compile_spec(&hm_allreduce(2, 4), &topo).unwrap();
//! let report = plan.run(64 << 20, 1 << 20).unwrap();
//! assert_eq!(report.data_valid, Some(true));
//! println!("compiled in {:?}, ran at {:.1} GB/s",
//!     plan.timings.total(), report.algo_bandwidth_gbps(64 << 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod residual;

pub use cache::{
    plan_cost_bytes, plan_fingerprint, CacheEvent, CacheEventKind, CacheStats, PlanCache,
    SingleMutexPlanCache, DEFAULT_JOURNAL_CAPACITY, SHARD_COUNT,
};
pub use residual::ResidualPlan;

use rescc_alloc::TbAllocation;
use rescc_analyze::{analyze, analyze_rerouted, AnalysisConfig, AnalysisInput, AnalysisReport};
use rescc_ir::{DepDag, MicroBatchPlan};
use rescc_kernel::{emit_all, ExecMode, KernelProgram, LoopOrder};
use rescc_lang::{eval, parse, verify_collective_with_threads, AlgoSpec, OpType};
use rescc_sched::{hpds_with_threads, round_robin_with_threads, Schedule};
use rescc_sim::{simulate, SimConfig, SimError, SimReport, SimResult};
use rescc_topology::{Topology, TopologyHealth};
use std::time::{Duration, Instant};

/// Process-wide counters of compile-phase executions.
///
/// Every [`Compiler`] increments these as it runs its phases; they exist so
/// callers (and tests) can prove a cached dispatch skipped compilation
/// entirely rather than merely being fast. Counters only ever increase;
/// compare [`snapshot`](phase_counters::snapshot)s taken around the section
/// under scrutiny.
pub mod phase_counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static PARSING: AtomicU64 = AtomicU64::new(0);
    pub(crate) static ANALYSIS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static SCHEDULING: AtomicU64 = AtomicU64::new(0);
    pub(crate) static LOWERING: AtomicU64 = AtomicU64::new(0);
    pub(crate) static SANITIZE: AtomicU64 = AtomicU64::new(0);

    /// How many times each compile phase has run in this process.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct PhaseCounts {
        /// Parsing-phase executions (DSL text compiles only).
        pub parsing: u64,
        /// Analysis-phase executions (verify + DAG construction).
        pub analysis: u64,
        /// Scheduling-phase executions.
        pub scheduling: u64,
        /// Lowering-phase executions.
        pub lowering: u64,
        /// Sanitize-phase executions (static analysis over the artifact).
        pub sanitize: u64,
    }

    impl PhaseCounts {
        /// Sum over all phases.
        pub fn total(&self) -> u64 {
            self.parsing + self.analysis + self.scheduling + self.lowering + self.sanitize
        }

        /// Per-phase difference against an earlier snapshot. Saturates at
        /// zero per phase: snapshots taken concurrently with other
        /// compiling threads can be mutually out of order, and a
        /// wrapped-around u64 would turn a harmless race into an absurd
        /// count.
        pub fn since(&self, earlier: &PhaseCounts) -> PhaseCounts {
            PhaseCounts {
                parsing: self.parsing.saturating_sub(earlier.parsing),
                analysis: self.analysis.saturating_sub(earlier.analysis),
                scheduling: self.scheduling.saturating_sub(earlier.scheduling),
                lowering: self.lowering.saturating_sub(earlier.lowering),
                sanitize: self.sanitize.saturating_sub(earlier.sanitize),
            }
        }
    }

    /// Read the current counters.
    pub fn snapshot() -> PhaseCounts {
        PhaseCounts {
            parsing: PARSING.load(Ordering::Relaxed),
            analysis: ANALYSIS.load(Ordering::Relaxed),
            scheduling: SCHEDULING.load(Ordering::Relaxed),
            lowering: LOWERING.load(Ordering::Relaxed),
            sanitize: SANITIZE.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Scheduler selection for the compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerChoice {
    /// Hierarchical priority-based dynamic scheduling (Algorithm 1).
    #[default]
    Hpds,
    /// Round-robin (the Fig. 10(b) baseline).
    RoundRobin,
}

/// Wall-clock duration of each compiler phase (Fig. 10(a)).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// DSL text → AST → validated spec. Zero when compiling from a spec.
    pub parsing: Duration,
    /// Spec → dependency DAG.
    pub analysis: Duration,
    /// DAG → task pipeline (HPDS / RR).
    pub scheduling: Duration,
    /// Pipeline → TB allocation → kernel program.
    pub lowering: Duration,
    /// Static analysis over the finished artifact stack. Zero when the
    /// lint gate is [`LintGate::Off`].
    pub sanitize: Duration,
}

impl PhaseTimings {
    /// End-to-end compile time.
    pub fn total(&self) -> Duration {
        self.parsing + self.analysis + self.scheduling + self.lowering + self.sanitize
    }

    /// The phases in pipeline order with their stable names, for
    /// observability consumers that render one span per phase.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("parsing", self.parsing),
            ("analysis", self.analysis),
            ("scheduling", self.scheduling),
            ("lowering", self.lowering),
            ("sanitize", self.sanitize),
        ]
    }
}

/// What the compiler does with the sanitize phase's findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Skip the sanitize phase entirely.
    Off,
    /// Run the lints and attach the report, but never fail the compile.
    Warn,
    /// Run the lints; `Error`-severity findings fail the compile. `Warn`
    /// findings are attached to the plan but do not fail it.
    #[default]
    Deny,
}

/// The ResCCL offline compiler.
#[derive(Clone, Debug)]
pub struct Compiler {
    /// Scheduler to use.
    pub scheduler: SchedulerChoice,
    /// Statically verify the algorithm implements its declared collective
    /// during the Analysis phase. On by default; automatically skipped
    /// above 256 ranks, where the symbolic state (O(ranks³)) would dominate
    /// compile memory — the simulator's runtime check still covers those.
    pub verify: bool,
    /// Worker threads for the embarrassingly-parallel phases: per-chunk
    /// static verification, per-chunk dependency analysis, and per-rank
    /// kernel lowering. The output is bit-identical for any value; 1
    /// (the default) compiles fully serially.
    pub threads: usize,
    /// What to do with the sanitize phase's findings (deny by default).
    pub lint_gate: LintGate,
    /// Tunables for the sanitize phase's lints.
    pub lint_config: AnalysisConfig,
}

impl Default for Compiler {
    fn default() -> Self {
        Self {
            scheduler: SchedulerChoice::default(),
            verify: true,
            threads: 1,
            lint_gate: LintGate::default(),
            lint_config: AnalysisConfig::default(),
        }
    }
}

impl Compiler {
    /// A compiler with the default (HPDS) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use the round-robin scheduler instead of HPDS.
    pub fn with_round_robin(mut self) -> Self {
        self.scheduler = SchedulerChoice::RoundRobin;
        self
    }

    /// Fan the parallel compile phases out over `threads` worker threads
    /// (0 is treated as 1). Output is identical for any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the sanitize-phase gate (deny / warn / off).
    pub fn with_lint_gate(mut self, gate: LintGate) -> Self {
        self.lint_gate = gate;
        self
    }

    /// Compile ResCCLang source text for `topo`.
    pub fn compile_source(&self, source: &str, topo: &Topology) -> SimResult<CompiledPlan> {
        let t0 = Instant::now();
        let program = parse(source).map_err(|e| SimError::new(e.to_string()))?;
        let spec = eval(&program).map_err(|e| SimError::new(e.to_string()))?;
        phase_counters::bump(&phase_counters::PARSING);
        let parsing = t0.elapsed();
        let mut plan = self.compile_spec(&spec, topo)?;
        plan.timings.parsing = parsing;
        Ok(plan)
    }

    /// Compile a validated algorithm spec for `topo`.
    pub fn compile_spec(&self, spec: &AlgoSpec, topo: &Topology) -> SimResult<CompiledPlan> {
        let mut timings = PhaseTimings::default();

        let threads = self.threads.max(1);

        let t0 = Instant::now();
        if self.verify && spec.n_ranks() <= 256 {
            verify_collective_with_threads(spec, threads)
                .map_err(|e| SimError::new(e.to_string()))?;
        }
        let dag = DepDag::build_with_threads(spec, topo, threads)
            .map_err(|e| SimError::new(e.to_string()))?;
        phase_counters::bump(&phase_counters::ANALYSIS);
        timings.analysis = t0.elapsed();

        let t0 = Instant::now();
        let schedule = match self.scheduler {
            SchedulerChoice::Hpds => hpds_with_threads(&dag, threads),
            SchedulerChoice::RoundRobin => round_robin_with_threads(&dag, threads),
        };
        schedule.validate(&dag).map_err(SimError::SchedulerBug)?;
        phase_counters::bump(&phase_counters::SCHEDULING);
        timings.scheduling = t0.elapsed();

        let t0 = Instant::now();
        let alloc = TbAllocation::state_based_with_threads(&dag, &schedule, threads);
        alloc
            .validate(&dag, &schedule)
            .map_err(SimError::AllocationBug)?;
        let program = KernelProgram::generate_with_threads(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
            threads,
        );
        program.validate(&dag).map_err(SimError::LoweringBug)?;
        phase_counters::bump(&phase_counters::LOWERING);
        timings.lowering = t0.elapsed();

        let t0 = Instant::now();
        let diagnostics = if self.lint_gate == LintGate::Off {
            AnalysisReport::default()
        } else {
            let report = analyze(
                &AnalysisInput {
                    spec,
                    dag: &dag,
                    schedule: &schedule,
                    alloc: &alloc,
                    program: &program,
                    topo,
                },
                &self.lint_config,
            );
            phase_counters::bump(&phase_counters::SANITIZE);
            if self.lint_gate == LintGate::Deny && report.has_errors() {
                return Err(SimError::new(format!(
                    "sanitize: plan rejected by lint gate\n{}",
                    report.render_human()
                )));
            }
            report
        };
        timings.sanitize = t0.elapsed();

        Ok(CompiledPlan {
            topo: topo.clone(),
            spec: spec.clone(),
            op: spec.op(),
            n_chunks: spec.n_chunks(),
            dag,
            schedule,
            alloc,
            program,
            timings,
            diagnostics,
        })
    }

    /// Incrementally recompile a cached plan for a changed topology health
    /// mask — the fault-recovery fast path.
    ///
    /// A full [`compile_spec`](Self::compile_spec) after a fault repeats
    /// every phase even though the algorithm, the topology shape, and
    /// almost every route are unchanged. This entry point reuses the cached
    /// artifacts instead:
    ///
    /// 1. **Identity** — if `health` equals the cached plan's mask, the
    ///    cached plan *is* the answer (returned as a clone, no phase
    ///    re-runs).
    /// 2. **Reroute** — [`DepDag::reroute`] re-resolves each task's route
    ///    against the masked topology and reports the *dirty* set: tasks
    ///    whose contention resources actually changed. Dependency edges are
    ///    topology-independent, so the DAG's adjacency is reused outright.
    /// 3. **Splice (fast path)** — if no task went dirty, or the cached
    ///    schedule still validates with the rerouted conflict sets (loads
    ///    under saturation in every sub-pipeline), the schedule is kept.
    ///    TB allocation and kernel generation read only each task's
    ///    endpoints and chunk — never its route — so the cached allocation
    ///    and program are byte-valid as-is and are spliced unchanged.
    /// 4. **Reschedule (slow path)** — otherwise scheduling and lowering
    ///    re-run (threaded, per [`Self::with_threads`]) on the rerouted
    ///    DAG.
    ///
    /// The sanitize phase re-runs in **every** non-identity case (subject
    /// to [`LintGate::Off`]): splicing must not skip the lints, or a
    /// spliced plan routing over a masked resource would sail through
    /// where a full compile would be denied. On the splice path the re-run
    /// is itself incremental ([`rescc_analyze::analyze_rerouted`]): the
    /// DAG adjacency, task tuples, schedule, and program are identical to
    /// the cached plan's, so the routing-insensitive lints (RA001, RA002,
    /// RA004, RA006) splice their cached diagnostics through and only the
    /// route-reading ones — RA003 on the dirtied sub-pipelines, RA005,
    /// and RA007 (whose α–β–γ certificate depends on per-route
    /// parameters) — re-run.
    ///
    /// Phase counters reflect what actually ran: `scheduling`/`lowering`
    /// bump only on the slow path, `sanitize` on every non-identity call
    /// with the gate on, and `parsing`/`analysis` never (verification and
    /// DAG construction are not repeated).
    pub fn recompile_delta(
        &self,
        cached: &CompiledPlan,
        health: &TopologyHealth,
    ) -> SimResult<CompiledPlan> {
        let threads = self.threads.max(1);
        let mut timings = PhaseTimings::default();

        if cached.topo.health() == health {
            let mut plan = cached.clone();
            plan.timings = timings;
            return Ok(plan);
        }

        let t0 = Instant::now();
        let degraded = cached.topo.clone().with_health(health.clone());
        let (dag, dirty) = cached
            .dag
            .reroute(&degraded)
            .map_err(|e| SimError::new(e.to_string()))?;
        timings.analysis = t0.elapsed();

        let t0 = Instant::now();
        // `keep` carries the dirty sub-pipeline indices when the cached
        // schedule stays feasible (rule 3 rechecked only where conflict
        // sets moved — structure cannot break under a reroute), `None`
        // when the reroute oversubscribed one and a real reschedule is due.
        let keep: Option<Vec<u32>> = if dirty.is_empty() {
            Some(Vec::new())
        } else {
            cached.schedule.revalidate_dirty(&dag, &dirty).ok()
        };
        let (schedule, alloc, program) = if keep.is_some() {
            // Lowering is route-independent: `lower_rank` and the TB
            // allocator read only task endpoints, chunks, and schedule
            // positions, all unchanged — the cached artifacts stay valid.
            timings.scheduling = t0.elapsed();
            (
                cached.schedule.clone(),
                cached.alloc.clone(),
                cached.program.clone(),
            )
        } else {
            let schedule = match self.scheduler {
                SchedulerChoice::Hpds => hpds_with_threads(&dag, threads),
                SchedulerChoice::RoundRobin => round_robin_with_threads(&dag, threads),
            };
            schedule.validate(&dag).map_err(SimError::SchedulerBug)?;
            phase_counters::bump(&phase_counters::SCHEDULING);
            timings.scheduling = t0.elapsed();

            let t0 = Instant::now();
            let alloc = TbAllocation::state_based_with_threads(&dag, &schedule, threads);
            alloc
                .validate(&dag, &schedule)
                .map_err(SimError::AllocationBug)?;
            let program = KernelProgram::generate_with_threads(
                cached.spec.name(),
                &dag,
                &alloc,
                LoopOrder::SlotMajor,
                ExecMode::DirectKernel,
                threads,
            );
            program.validate(&dag).map_err(SimError::LoweringBug)?;
            phase_counters::bump(&phase_counters::LOWERING);
            timings.lowering = t0.elapsed();
            (schedule, alloc, program)
        };

        let t0 = Instant::now();
        let diagnostics = if self.lint_gate == LintGate::Off {
            AnalysisReport::default()
        } else {
            let analysis_input = AnalysisInput {
                spec: &cached.spec,
                dag: &dag,
                schedule: &schedule,
                alloc: &alloc,
                program: &program,
                topo: &degraded,
            };
            let report = if let Some(dirty_sps) = &keep {
                // Spliced plan: structure identical to the cached one, only
                // routes differ — the routing-sensitive lints re-run (RA003
                // scoped to the dirty sub-pipelines), the rest splice their
                // cached verdicts.
                analyze_rerouted(
                    &analysis_input,
                    &self.lint_config,
                    &cached.diagnostics,
                    dirty_sps,
                )
            } else {
                analyze(&analysis_input, &self.lint_config)
            };
            phase_counters::bump(&phase_counters::SANITIZE);
            if self.lint_gate == LintGate::Deny && report.has_errors() {
                return Err(SimError::new(format!(
                    "sanitize: plan rejected by lint gate\n{}",
                    report.render_human()
                )));
            }
            report
        };
        timings.sanitize = t0.elapsed();

        Ok(CompiledPlan {
            topo: degraded,
            spec: cached.spec.clone(),
            op: cached.op,
            n_chunks: cached.n_chunks,
            dag,
            schedule,
            alloc,
            program,
            timings,
            diagnostics,
        })
    }
}

/// A fully-compiled, executable collective plan.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// The topology the plan was compiled for.
    pub topo: Topology,
    /// The validated algorithm the plan implements. Kept so incremental
    /// recompiles ([`Compiler::recompile_delta`]) can re-run the sanitize
    /// phase without the caller having to retain the spec separately.
    pub spec: AlgoSpec,
    /// The collective operator implemented.
    pub op: OpType,
    /// Chunks per rank.
    pub n_chunks: u32,
    /// The dependency DAG.
    pub dag: DepDag,
    /// The HPDS/RR task pipeline.
    pub schedule: Schedule,
    /// The state-based TB allocation.
    pub alloc: TbAllocation,
    /// The generated lightweight kernel program.
    pub program: KernelProgram,
    /// Per-phase compile timings.
    pub timings: PhaseTimings,
    /// Sanitize-phase findings. Empty when the plan is clean or the lint
    /// gate was [`LintGate::Off`]; under [`LintGate::Warn`] this may carry
    /// `Error`-severity findings the gate let through.
    pub diagnostics: AnalysisReport,
}

impl CompiledPlan {
    /// Run the plan: synchronize `buffer_bytes` per rank moving
    /// `chunk_bytes` per invocation, with data validation on.
    pub fn run(&self, buffer_bytes: u64, chunk_bytes: u64) -> SimResult<SimReport> {
        self.run_with(buffer_bytes, chunk_bytes, &SimConfig::default())
    }

    /// Run with a custom simulator configuration.
    pub fn run_with(
        &self,
        buffer_bytes: u64,
        chunk_bytes: u64,
        config: &SimConfig,
    ) -> SimResult<SimReport> {
        let plan = MicroBatchPlan::plan(buffer_bytes, self.n_chunks, chunk_bytes);
        simulate(&self.topo, &self.dag, &self.program, &plan, self.op, config)
    }

    /// Emit the generated pseudo-CUDA kernels for all ranks.
    pub fn emit_kernels(&self) -> String {
        emit_all(&self.program)
    }

    /// The α–β–γ makespan lower bound certified by the sanitize phase for
    /// a run over `buffer_bytes` at `chunk_bytes` per invocation:
    /// `max(critical-path α-chain, bottleneck-link bytes·β)`. No run of
    /// this plan — degraded, jittered, or contended — can legitimately
    /// finish faster; a [`SimReport`] undercutting it indicates a cost
    /// model or engine bug. `None` when the lint gate was off (the
    /// sanitize phase never ran, so nothing was certified).
    pub fn makespan_floor_ns(&self, buffer_bytes: u64, chunk_bytes: u64) -> Option<f64> {
        let mb = MicroBatchPlan::plan(buffer_bytes, self.n_chunks, chunk_bytes);
        self.diagnostics
            .certificate()
            .map(|c| c.lower_bound_ns(mb.chunk_total_bytes()))
    }

    /// Total TBs the plan launches.
    pub fn total_tbs(&self) -> usize {
        self.alloc.total_tbs()
    }

    /// Whether two plans are the same compiled artifact: identical DAG,
    /// schedule, TB allocation and kernel program for the same operator,
    /// chunking, and topology shape. Phase timings are deliberately
    /// ignored — they are measurement metadata, not part of the artifact.
    /// Used to assert that parallel compilation is bit-identical to serial.
    pub fn semantic_eq(&self, other: &Self) -> bool {
        self.op == other.op
            && self.n_chunks == other.n_chunks
            && self.topo.name() == other.topo.name()
            && self.topo.spec() == other.topo.spec()
            && self.dag == other.dag
            && self.schedule == other.schedule
            && self.alloc == other.alloc
            && self.program == other.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_algos::{hm_allreduce, ring_allgather_source};

    #[test]
    fn compile_from_source_and_run() {
        let topo = Topology::a100(1, 8);
        let plan = Compiler::new()
            .compile_source(&ring_allgather_source(8), &topo)
            .unwrap();
        assert!(plan.timings.parsing > Duration::ZERO);
        assert_eq!(plan.dag.len(), 56);
        let rep = plan.run(64 << 20, 1 << 20).unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn compile_spec_times_all_phases() {
        let topo = Topology::a100(2, 8);
        let plan = Compiler::new()
            .compile_spec(&hm_allreduce(2, 8), &topo)
            .unwrap();
        assert_eq!(plan.timings.parsing, Duration::ZERO);
        assert!(plan.timings.total() > Duration::ZERO);
        assert!(plan.total_tbs() > 0);
    }

    #[test]
    fn emitted_kernels_cover_all_ranks() {
        let topo = Topology::a100(2, 4);
        let plan = Compiler::new()
            .compile_spec(&hm_allreduce(2, 4), &topo)
            .unwrap();
        let cuda = plan.emit_kernels();
        for r in 0..8 {
            assert!(cuda.contains(&format!("resccl_kernel_r{r}")));
        }
    }

    #[test]
    fn round_robin_compiler_variant() {
        let topo = Topology::a100(2, 4);
        let plan = Compiler::new()
            .with_round_robin()
            .compile_spec(&hm_allreduce(2, 4), &topo)
            .unwrap();
        assert_eq!(plan.schedule.policy, "rr");
        let rep = plan.run(16 << 20, 1 << 20).unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn statically_broken_collective_is_rejected_before_scheduling() {
        use rescc_lang::{AlgoBuilder, OpType};
        let topo = Topology::a100(1, 4);
        let mut b = AlgoBuilder::new("broken", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0); // only one chunk ever moves
        let err = Compiler::new()
            .compile_spec(&b.build().unwrap(), &topo)
            .unwrap_err();
        assert!(err.to_string().contains("does not implement"), "{err}");
    }

    #[test]
    fn verification_can_be_disabled() {
        use rescc_lang::{AlgoBuilder, OpType};
        let topo = Topology::a100(1, 4);
        let mut b = AlgoBuilder::new("partial", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0);
        let mut compiler = Compiler::new();
        compiler.verify = false;
        // Compiles (the runtime check would still catch it when run).
        compiler.compile_spec(&b.build().unwrap(), &topo).unwrap();
    }

    #[test]
    fn sanitize_phase_runs_and_is_clean_on_seed_algorithms() {
        let before = phase_counters::snapshot();
        let topo = Topology::a100(2, 4);
        let plan = Compiler::new()
            .compile_spec(&hm_allreduce(2, 4), &topo)
            .unwrap();
        assert!(
            plan.diagnostics.is_clean(),
            "{}",
            plan.diagnostics.render_human()
        );
        let delta = phase_counters::snapshot().since(&before);
        assert_eq!(delta.sanitize, 1);
    }

    #[test]
    fn certificate_floor_is_never_undercut_by_the_engine() {
        use rescc_algos::{dbtree_allreduce, ring_allgather};
        let buffer: u64 = 16 << 20;
        let chunk: u64 = 1 << 20;
        let cases: Vec<(rescc_lang::AlgoSpec, Topology)> = vec![
            (hm_allreduce(2, 4), Topology::a100(2, 4)),
            (ring_allgather(8), Topology::a100(1, 8)),
            (dbtree_allreduce(8), Topology::a100(2, 4)),
        ];
        for (spec, topo) in cases {
            let plan = Compiler::new().compile_spec(&spec, &topo).unwrap();
            let floor = plan
                .makespan_floor_ns(buffer, chunk)
                .expect("lint gate on => certificate present");
            assert!(floor > 0.0, "{}: degenerate floor {floor}", spec.name());
            let rep = plan.run(buffer, chunk).unwrap();
            assert!(
                !rep.undercuts_floor(floor),
                "{}: run finished at {} ns, under its certified floor {} ns",
                spec.name(),
                rep.completion_ns,
                floor
            );
        }
    }

    #[test]
    fn lint_gate_off_skips_sanitize() {
        let before = phase_counters::snapshot();
        let topo = Topology::a100(2, 4);
        let plan = Compiler::new()
            .with_lint_gate(LintGate::Off)
            .compile_spec(&hm_allreduce(2, 4), &topo)
            .unwrap();
        assert!(plan.diagnostics.is_clean());
        let delta = phase_counters::snapshot().since(&before);
        assert_eq!(delta.sanitize, 0);
    }

    #[test]
    fn lint_gate_denies_plan_routed_over_dead_resource() {
        use rescc_topology::{NicId, TopologyHealth};
        // Mask a NIC direction on a single-NIC topology: the router has no
        // healthy alternative and falls back to the dead resource, which
        // RA005 must catch and the deny gate must refuse.
        let healthy = Topology::a100(2, 2);
        let nic = healthy.nic_tx(NicId::new(0));
        let mut mask = TopologyHealth::healthy();
        mask.mask(nic);
        let degraded = Topology::a100(2, 2).with_health(mask);
        let spec = hm_allreduce(2, 2);
        match Compiler::new().compile_spec(&spec, &degraded) {
            Err(e) => assert!(e.to_string().contains("RA005"), "{e}"),
            // If the router found a healthy reroute the plan is sound and
            // the gate rightly lets it through.
            Ok(plan) => assert!(plan.diagnostics.is_clean()),
        }
        // Warn gate always yields a plan, carrying whatever was found.
        let plan = Compiler::new()
            .with_lint_gate(LintGate::Warn)
            .compile_spec(&spec, &degraded)
            .unwrap();
        let _ = plan.diagnostics.render_human();
    }

    #[test]
    fn phase_counts_since_saturates_instead_of_wrapping() {
        use phase_counters::PhaseCounts;
        // A snapshot raced from another compiling thread can be "newer"
        // than the nominally later one; the difference must clamp to zero,
        // not wrap to u64::MAX.
        let earlier = PhaseCounts {
            parsing: 5,
            analysis: 2,
            scheduling: 0,
            lowering: 7,
            sanitize: 1,
        };
        let later = PhaseCounts {
            parsing: 4,
            analysis: 3,
            scheduling: 0,
            lowering: 7,
            sanitize: 2,
        };
        let d = later.since(&earlier);
        assert_eq!(d.parsing, 0);
        assert_eq!(d.analysis, 1);
        assert_eq!(d.scheduling, 0);
        assert_eq!(d.lowering, 0);
        assert_eq!(d.sanitize, 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn recompile_delta_with_unchanged_health_is_byte_equivalent() {
        let topo = Topology::a100(2, 4);
        let compiler = Compiler::new();
        let plan = compiler.compile_spec(&hm_allreduce(2, 4), &topo).unwrap();
        let before = phase_counters::snapshot();
        let delta = compiler.recompile_delta(&plan, plan.topo.health()).unwrap();
        assert!(delta.semantic_eq(&plan));
        // Identity path: no phase re-ran, not even sanitize.
        assert_eq!(phase_counters::snapshot().since(&before).total(), 0);
    }

    #[test]
    fn recompile_delta_splices_schedule_for_survivable_intra_fault() {
        use rescc_topology::{Rank, TopologyHealth};
        let topo = Topology::a100(1, 8);
        let compiler = Compiler::new();
        let plan = compiler.compile_spec(&hm_allreduce(1, 8), &topo).unwrap();
        // Mask one intra-node pair channel: the router relays through a
        // third rank, and the extra load fits under the NVLink saturation,
        // so the cached schedule must be spliced, not rebuilt.
        let mut health = TopologyHealth::healthy();
        health.mask(topo.pair_chan(Rank::new(0), Rank::new(1)));
        let before = phase_counters::snapshot();
        let delta = compiler.recompile_delta(&plan, &health).unwrap();
        let ran = phase_counters::snapshot().since(&before);
        assert_eq!(delta.schedule, plan.schedule, "schedule must be reused");
        assert_eq!(delta.program, plan.program, "lowering is route-independent");
        assert_eq!(ran.scheduling, 0, "fast path must not reschedule");
        assert_eq!(ran.lowering, 0, "fast path must not re-lower");
        assert_eq!(ran.sanitize, 1, "sanitize must re-run on the splice");
        assert_eq!(delta.topo.health(), &health);
        assert!(
            delta.diagnostics.is_clean(),
            "{}",
            delta.diagnostics.render_human()
        );
        // The spliced plan still runs and validates its data.
        let rep = delta.run(16 << 20, 1 << 20).unwrap();
        assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn recompile_delta_denies_unroutable_fault() {
        use rescc_topology::{NicId, TopologyHealth};
        // Single NIC per node: masking its TX leaves no healthy route, the
        // reroute falls back to the dead resource, and the spliced plan
        // must be rejected by the same RA005 deny gate a full compile hits.
        let topo = Topology::a100(2, 2);
        let compiler = Compiler::new();
        let plan = compiler.compile_spec(&hm_allreduce(2, 2), &topo).unwrap();
        let mut health = TopologyHealth::healthy();
        health.mask(topo.nic_tx(NicId::new(0)));
        let err = compiler.recompile_delta(&plan, &health).unwrap_err();
        assert!(err.to_string().contains("RA005"), "{err}");
    }

    #[test]
    fn bad_source_is_rejected() {
        let topo = Topology::a100(1, 4);
        let err = Compiler::new()
            .compile_source("def Broken(:\n", &topo)
            .unwrap_err();
        assert!(err.to_string().contains("error"));
    }
}
