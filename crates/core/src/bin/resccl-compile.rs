//! `resccl-compile` — the offline compiler as a command-line tool.
//!
//! ```text
//! resccl-compile <algorithm.rcl> [options]
//!
//!   --nodes <N>        servers in the cluster            (default 2)
//!   --gpus <G>         GPUs per server                   (default 8)
//!   --fabric <a100|v100>                                 (default a100)
//!   --scheduler <hpds|rr>                                (default hpds)
//!   --emit-kernels     print the generated pseudo-CUDA
//!   --run <BYTES>      simulate one collective of this buffer size
//!   --chunk <BYTES>    transfer chunk size               (default 1048576)
//!   --gantt            with --run: print a sender-activity timeline
//! ```
//!
//! Example:
//!
//! ```sh
//! cargo run --release -p rescc-core --bin resccl-compile -- \
//!     my_allreduce.rcl --nodes 2 --gpus 8 --run 268435456 --gantt
//! ```

use rescc_core::{Compiler, SchedulerChoice};
use rescc_sim::{render_gantt, BottleneckReport, SimConfig};
use rescc_topology::Topology;
use std::process::ExitCode;

struct Args {
    source_path: String,
    nodes: u32,
    gpus: u32,
    fabric: String,
    scheduler: SchedulerChoice,
    emit_kernels: bool,
    run_bytes: Option<u64>,
    chunk_bytes: u64,
    gantt: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        source_path: String::new(),
        nodes: 2,
        gpus: 8,
        fabric: "a100".into(),
        scheduler: SchedulerChoice::Hpds,
        emit_kernels: false,
        run_bytes: None,
        chunk_bytes: 1 << 20,
        gantt: false,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => {
                args.nodes = next_val(&mut it, "--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--gpus" => {
                args.gpus = next_val(&mut it, "--gpus")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--fabric" => args.fabric = next_val(&mut it, "--fabric")?,
            "--scheduler" => {
                args.scheduler = match next_val(&mut it, "--scheduler")?.as_str() {
                    "hpds" => SchedulerChoice::Hpds,
                    "rr" => SchedulerChoice::RoundRobin,
                    other => return Err(format!("unknown scheduler `{other}` (hpds|rr)")),
                }
            }
            "--emit-kernels" => args.emit_kernels = true,
            "--run" => {
                args.run_bytes = Some(
                    next_val(&mut it, "--run")?
                        .parse()
                        .map_err(|e| format!("--run: {e}"))?,
                )
            }
            "--chunk" => {
                args.chunk_bytes = next_val(&mut it, "--chunk")?
                    .parse()
                    .map_err(|e| format!("--chunk: {e}"))?
            }
            "--gantt" => args.gantt = true,
            "--help" | "-h" => {
                return Err(
                    "usage: resccl-compile <algorithm.rcl> [--nodes N] [--gpus G] \
                            [--fabric a100|v100] [--scheduler hpds|rr] [--emit-kernels] \
                            [--run BYTES] [--chunk BYTES] [--gantt]"
                        .into(),
                )
            }
            path if !path.starts_with('-') && args.source_path.is_empty() => {
                args.source_path = path.to_string();
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.source_path.is_empty() {
        return Err("missing <algorithm.rcl> source path (try --help)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let source = match std::fs::read_to_string(&args.source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.source_path);
            return ExitCode::FAILURE;
        }
    };

    let topo = match args.fabric.as_str() {
        "a100" => Topology::a100(args.nodes, args.gpus),
        "v100" => Topology::v100(args.nodes, args.gpus),
        other => {
            eprintln!("unknown fabric `{other}` (a100|v100)");
            return ExitCode::FAILURE;
        }
    };

    let compiler = Compiler {
        scheduler: args.scheduler,
        ..Compiler::new()
    };
    let plan = match compiler.compile_source(&source, &topo) {
        Ok(p) => p,
        Err(e) => {
            // Re-parse for a caret diagnostic when the failure is syntactic.
            match rescc_lang::parse(&source) {
                Err(lang_err) => eprint!(
                    "{}",
                    rescc_lang::render_diagnostic(&lang_err, &source, &args.source_path)
                ),
                Ok(_) => eprintln!("compilation failed: {e}"),
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "compiled `{}` for {}: {} tasks, {} sub-pipelines, {} TBs",
        args.source_path,
        topo.name(),
        plan.dag.len(),
        plan.schedule.sub_pipelines.len(),
        plan.total_tbs(),
    );
    println!(
        "phases: parsing {:?}, analysis {:?}, scheduling {:?}, lowering {:?}, \
         sanitize {:?} (total {:?})",
        plan.timings.parsing,
        plan.timings.analysis,
        plan.timings.scheduling,
        plan.timings.lowering,
        plan.timings.sanitize,
        plan.timings.total(),
    );

    if args.emit_kernels {
        println!("\n{}", plan.emit_kernels());
    }

    if let Some(buffer) = args.run_bytes {
        let mut cfg = SimConfig::default();
        if args.gantt {
            cfg = cfg.with_trace();
        }
        match plan.run_with(buffer, args.chunk_bytes, &cfg) {
            Ok(report) => {
                println!(
                    "\nrun: {} bytes in {:.3} ms -> {:.2} GB/s algbw, \
                     {} invocations over {} micro-batches, data {}",
                    buffer,
                    report.completion_ns / 1e6,
                    report.algo_bandwidth_gbps(buffer),
                    report.n_invocations,
                    report.n_micro_batches,
                    match report.data_valid {
                        Some(true) => "VERIFIED",
                        Some(false) => "CORRUPT",
                        None => "unchecked",
                    },
                );
                println!(
                    "TBs: avg utilization {:.1}%, max idle {:.1}%",
                    100.0 * report.avg_comm_ratio(),
                    100.0 * report.max_idle_ratio(),
                );
                if let Some((res, ratio)) = BottleneckReport::from_report(&report).bottleneck() {
                    println!(
                        "bottleneck: resource res{res} active {:.1}% of the run",
                        100.0 * ratio
                    );
                }
                if args.gantt {
                    println!("\nsender activity (one row per rank):");
                    print!("{}", render_gantt(&report.trace, topo.n_ranks(), 64));
                }
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
