//! `rescc-lint` — run the cross-phase static analysis (lints RA001–RA008)
//! over compiled plans, without executing anything.
//!
//! ```text
//! rescc-lint <algorithm.rcl> [options]     lint one DSL source
//! rescc-lint --all [options]               lint the seed algorithm library
//!                                          across the Table 3 topologies
//!
//!   --nodes <N>        servers in the cluster            (default 2)
//!   --gpus <G>         GPUs per server                   (default 8)
//!   --fabric <a100|v100>                                 (default a100)
//!   --scheduler <hpds|rr>                                (default hpds)
//!   --tb-budget <N>    per-rank TB budget for RA003      (default 64)
//!   --json             machine-readable output (stable schema)
//!   --explain          expand counterexample paths and the α–β–γ cost
//!                      certificate under each human-readable report
//!   --deny-warnings    exit nonzero on warnings too
//! ```
//!
//! Exit status is nonzero when any linted plan carries an `Error`-severity
//! finding (or any finding at all under `--deny-warnings`), or when a plan
//! fails to compile.
//!
//! JSON schema (append-only; one entry per linted plan; the `report`
//! object — including per-diagnostic `path` arrays and the plan's
//! `certificate` — is documented in DESIGN.md §12):
//!
//! ```json
//! {"plans": [{"algo": "hm-ar-2x8", "topology": "a100-2x8",
//!             "report": {"diagnostics": [...], "errors": 0, "warnings": 0,
//!                        "certificate": {...}}}],
//!  "errors": 0, "warnings": 0}
//! ```
//!
//! Compile failures appear as `{"algo": ..., "topology": ...,
//! "compile_error": "..."}` entries and count as errors.

use rescc_core::{CompiledPlan, Compiler, LintGate, SchedulerChoice};
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;
use std::process::ExitCode;

struct Args {
    source_path: Option<String>,
    all: bool,
    nodes: u32,
    gpus: u32,
    fabric: String,
    scheduler: SchedulerChoice,
    tb_budget: u32,
    json: bool,
    explain: bool,
    deny_warnings: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        source_path: None,
        all: false,
        nodes: 2,
        gpus: 8,
        fabric: "a100".into(),
        scheduler: SchedulerChoice::Hpds,
        tb_budget: 64,
        json: false,
        explain: false,
        deny_warnings: false,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => args.all = true,
            "--nodes" => {
                args.nodes = next_val(&mut it, "--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--gpus" => {
                args.gpus = next_val(&mut it, "--gpus")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--fabric" => args.fabric = next_val(&mut it, "--fabric")?,
            "--scheduler" => {
                args.scheduler = match next_val(&mut it, "--scheduler")?.as_str() {
                    "hpds" => SchedulerChoice::Hpds,
                    "rr" => SchedulerChoice::RoundRobin,
                    other => return Err(format!("unknown scheduler `{other}` (hpds|rr)")),
                }
            }
            "--tb-budget" => {
                args.tb_budget = next_val(&mut it, "--tb-budget")?
                    .parse()
                    .map_err(|e| format!("--tb-budget: {e}"))?
            }
            "--json" => args.json = true,
            "--explain" => args.explain = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--help" | "-h" => {
                return Err(
                    "usage: rescc-lint <algorithm.rcl> | --all  [--nodes N] [--gpus G] \
                     [--fabric a100|v100] [--scheduler hpds|rr] [--tb-budget N] \
                     [--json] [--explain] [--deny-warnings]"
                        .into(),
                )
            }
            path if !path.starts_with('-') && args.source_path.is_none() => {
                args.source_path = Some(path.to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.source_path.is_none() && !args.all {
        return Err("need an <algorithm.rcl> source path or --all (try --help)".into());
    }
    if args.source_path.is_some() && args.all {
        return Err("--all and a source path are mutually exclusive".into());
    }
    Ok(args)
}

/// The seed algorithm library for one topology shape.
fn seed_suite(nodes: u32, g: u32) -> Vec<AlgoSpec> {
    use rescc_algos as algos;
    let n = nodes * g;
    let mut suite = vec![
        algos::hm_allgather(nodes, g),
        algos::hm_reduce_scatter(nodes, g),
        algos::hm_allreduce(nodes, g),
        algos::ring_allgather(n),
        algos::ring_reduce_scatter(n),
        algos::ring_allreduce(n),
        algos::nccl_rings_allreduce(nodes, g, 2),
    ];
    if n.is_power_of_two() {
        suite.push(algos::recursive_doubling_allgather(n));
        suite.push(algos::recursive_halving_reduce_scatter(n));
        suite.push(algos::recursive_halving_doubling_allreduce(n));
        suite.push(algos::dbtree_allreduce(n));
    }
    suite
}

/// One linted plan, ready for rendering. The whole plan is kept (not just
/// its report) so `--explain` can resolve counterexample path nodes back
/// to their task tuples.
struct Outcome {
    algo: String,
    topology: String,
    result: Result<Box<CompiledPlan>, String>,
}

impl Outcome {
    fn n_errors(&self) -> usize {
        match &self.result {
            Ok(plan) => plan.diagnostics.n_errors(),
            Err(_) => 1,
        }
    }

    fn n_warnings(&self) -> usize {
        match &self.result {
            Ok(plan) => plan.diagnostics.n_warnings(),
            Err(_) => 0,
        }
    }
}

fn lint_spec(compiler: &Compiler, spec: &AlgoSpec, topo: &Topology) -> Outcome {
    Outcome {
        algo: spec.name().to_string(),
        topology: topo.name().to_string(),
        result: compiler
            .compile_spec(spec, topo)
            .map(Box::new)
            .map_err(|e| e.to_string()),
    }
}

fn render_json(outcomes: &[Outcome]) -> String {
    let mut out = String::from("{\"plans\": [");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"algo\": \"{}\", \"topology\": \"{}\", ",
            o.algo, o.topology
        ));
        match &o.result {
            Ok(plan) => out.push_str(&format!("\"report\": {}}}", plan.diagnostics.to_json())),
            Err(e) => out.push_str(&format!(
                "\"compile_error\": \"{}\"}}",
                e.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )),
        }
    }
    let errors: usize = outcomes.iter().map(Outcome::n_errors).sum();
    let warnings: usize = outcomes.iter().map(Outcome::n_warnings).sum();
    out.push_str(&format!(
        "], \"errors\": {errors}, \"warnings\": {warnings}}}"
    ));
    out
}

/// `--explain`: expand each diagnostic's counterexample path into the
/// concrete task tuples behind the node ids, and render the plan's
/// certified makespan floor.
fn render_explain(plan: &CompiledPlan) -> String {
    let mut out = String::new();
    for d in plan.diagnostics.diagnostics() {
        if d.path.is_empty() {
            continue;
        }
        out.push_str(&format!("  {} counterexample path:\n", d.code.as_str()));
        for &t in &d.path {
            if (t as usize) < plan.dag.len() {
                let task = plan.dag.task(rescc_ir::TaskId::new(t));
                out.push_str(&format!(
                    "    t{t}: {} -> {} chunk c{} step {} ({:?})\n",
                    task.src, task.dst, task.chunk.0, task.step.0, task.comm
                ));
            } else {
                out.push_str(&format!("    t{t}: (outside this plan's task space)\n"));
            }
        }
    }
    if let Some(c) = plan.diagnostics.certificate() {
        out.push_str(&format!(
            "  certified makespan floor: max(α-chain {:.0} ns, res{} drain: \
             {} task(s) x chunk_bytes x {:.4} ns/B)\n",
            c.alpha_chain_ns,
            c.bottleneck_resource,
            c.bottleneck_tasks,
            c.bottleneck_beta_ns_per_byte
        ));
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Warn gate: always produce the plan and its report — this tool *is*
    // the gate, and decides the exit status itself.
    let mut compiler = Compiler {
        scheduler: args.scheduler,
        ..Compiler::new()
    }
    .with_lint_gate(LintGate::Warn);
    compiler.lint_config.tb_budget_per_rank = args.tb_budget;

    let mut outcomes: Vec<Outcome> = Vec::new();

    if let Some(path) = &args.source_path {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let topo = match args.fabric.as_str() {
            "a100" => Topology::a100(args.nodes, args.gpus),
            "v100" => Topology::v100(args.nodes, args.gpus),
            other => {
                eprintln!("unknown fabric `{other}` (a100|v100)");
                return ExitCode::FAILURE;
            }
        };
        let result = compiler
            .compile_source(&source, &topo)
            .map(Box::new)
            .map_err(|e| e.to_string());
        outcomes.push(Outcome {
            algo: path.clone(),
            topology: topo.name().to_string(),
            result,
        });
    } else {
        for i in 1..=4 {
            let topo = Topology::table3_topo(i).expect("table 3 preset");
            let spec = topo.spec();
            for algo in seed_suite(spec.n_nodes, spec.gpus_per_node) {
                outcomes.push(lint_spec(&compiler, &algo, &topo));
            }
        }
    }

    let errors: usize = outcomes.iter().map(Outcome::n_errors).sum();
    let warnings: usize = outcomes.iter().map(Outcome::n_warnings).sum();

    if args.json {
        println!("{}", render_json(&outcomes));
    } else {
        for o in &outcomes {
            match &o.result {
                Ok(plan) if plan.diagnostics.is_clean() => {
                    println!("{} on {}: clean", o.algo, o.topology);
                    if args.explain {
                        print!("{}", render_explain(plan));
                    }
                }
                Ok(plan) => {
                    println!("{} on {}:", o.algo, o.topology);
                    print!("{}", plan.diagnostics.render_human());
                    if args.explain {
                        print!("{}", render_explain(plan));
                    }
                }
                Err(e) => println!("{} on {}: compile error: {e}", o.algo, o.topology),
            }
        }
        println!(
            "{} plan(s) linted, {errors} error(s), {warnings} warning(s)",
            outcomes.len()
        );
    }

    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
