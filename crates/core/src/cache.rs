//! Content-addressed cache of compiled plans.
//!
//! Compiling an algorithm is orders of magnitude slower than dispatching
//! it, and training loops issue the *same* collective (same algorithm,
//! same topology, same micro-batch shape) thousands of times. [`PlanCache`]
//! memoizes [`CompiledPlan`]s behind a content fingerprint so only the
//! first call of each distinct configuration pays for Analysis, Scheduling
//! and Lowering; subsequent calls are a hash lookup plus an `Arc` clone.
//!
//! The fingerprint covers everything the compiled artifact depends on:
//!
//! * the full algorithm spec (name, operator, ranks, chunks, and every
//!   transfer tuple),
//! * the topology (name, cluster shape, all fabric cost parameters, and
//!   the health mask — a plan compiled around a dead link must never alias
//!   the healthy plan),
//! * the micro-batch plan *shape* (logical chunks, per-invocation chunk
//!   bytes, invocation count) — buffer sizes that produce the same shape
//!   share an entry,
//! * the compiler options that change output (scheduler choice and the
//!   verify flag). The thread count is deliberately excluded: parallel
//!   compilation is bit-identical to serial, so it must not split entries.
//!
//! Anything that changes one of these — a different chunking, another
//! topology, a tweaked fabric parameter — changes the key and misses.

use crate::{CompiledPlan, Compiler, LintGate, SchedulerChoice};
use rescc_ir::MicroBatchPlan;
use rescc_lang::{AlgoSpec, CommType, OpType};
use rescc_sim::SimResult;
use rescc_topology::{LinkParams, Topology};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal entries retained by default. Long-running training loops
/// dispatch millions of times; the journal exists for observability tails,
/// not full history, so it is bounded and drops its oldest entries first.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Snapshot of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dispatches served from the cache.
    pub hits: u64,
    /// Dispatches that had to compile.
    pub misses: u64,
    /// Distinct plans currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of dispatches served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One recorded cache lookup, in dispatch order.
///
/// The journal is the cache's event log for observability consumers: a
/// deterministic record of which fingerprints were dispatched and
/// whether each dispatch compiled, independent of wall-clock timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEvent {
    /// Position in dispatch order (0-based; assigned under the journal
    /// lock, so concurrent dispatches get distinct consecutive numbers).
    pub seq: u64,
    /// The plan fingerprint that was looked up.
    pub fingerprint: u64,
    /// Whether the lookup was served from the cache.
    pub hit: bool,
}

/// A thread-safe memo table from plan fingerprints to compiled plans.
///
/// ```
/// use rescc_core::{Compiler, PlanCache};
/// use rescc_ir::MicroBatchPlan;
/// use rescc_topology::Topology;
/// use rescc_algos::hm_allreduce;
///
/// let cache = PlanCache::new();
/// let compiler = Compiler::new();
/// let topo = Topology::a100(2, 4);
/// let spec = hm_allreduce(2, 4);
/// let mb = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 1 << 20);
/// let first = cache.get_or_compile(&compiler, &spec, &topo, &mb).unwrap();
/// let second = cache.get_or_compile(&compiler, &spec, &topo, &mb).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<u64, Arc<CompiledPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    journal: Mutex<Journal>,
}

/// Bounded dispatch journal: a ring that keeps the most recent
/// `capacity` events and counts what it sheds.
#[derive(Debug)]
struct Journal {
    ring: VecDeque<CacheEvent>,
    capacity: usize,
    /// Next global sequence number (total events ever recorded).
    next_seq: u64,
    /// Events shed from the front of the ring.
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self {
            ring: VecDeque::new(),
            capacity: DEFAULT_JOURNAL_CAPACITY,
            next_seq: 0,
            dropped: 0,
        }
    }
}

impl PlanCache {
    /// An empty cache with the default journal capacity
    /// ([`DEFAULT_JOURNAL_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` journal events (0
    /// disables journaling entirely; every event counts as dropped).
    pub fn with_journal_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache
            .journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .capacity = capacity;
        cache
    }

    /// Lock the map, recovering from poisoning. Entries are only ever
    /// whole `Arc<CompiledPlan>`s inserted after a successful compile, so
    /// a panic in another thread cannot leave a half-written entry —
    /// inheriting the map is always safe.
    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<CompiledPlan>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Return the cached plan for this configuration, compiling (and
    /// caching) it on first sight.
    ///
    /// Compilation runs outside the map lock, so a cold-cache thundering
    /// herd compiles concurrently rather than serializing; the results are
    /// identical, and the last insert wins.
    pub fn get_or_compile(
        &self,
        compiler: &Compiler,
        spec: &AlgoSpec,
        topo: &Topology,
        mb: &MicroBatchPlan,
    ) -> SimResult<Arc<CompiledPlan>> {
        let key = plan_fingerprint(compiler, spec, topo, mb);
        if let Some(hit) = self.map().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record(key, true);
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(compiler.compile_spec(spec, topo)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map().insert(key, Arc::clone(&compiled));
        self.record(key, false);
        Ok(compiled)
    }

    /// Insert a plan compiled outside the cache — e.g. a delta-recompiled
    /// plan for a degraded topology (see `Compiler::recompile_delta`) —
    /// under its [`plan_fingerprint`] key, so later dispatches against the
    /// same degraded configuration hit. Replaces any existing entry.
    pub fn insert(&self, fingerprint: u64, plan: Arc<CompiledPlan>) {
        self.map().insert(fingerprint, plan);
    }

    fn record(&self, fingerprint: u64, hit: bool) {
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let seq = journal.next_seq;
        journal.next_seq += 1;
        if journal.capacity == 0 {
            journal.dropped += 1;
            return;
        }
        if journal.ring.len() == journal.capacity {
            journal.ring.pop_front();
            journal.dropped += 1;
        }
        journal.ring.push_back(CacheEvent {
            seq,
            fingerprint,
            hit,
        });
    }

    /// Snapshot of the *retained* dispatch journal, oldest first (one
    /// [`CacheEvent`] per [`get_or_compile`](Self::get_or_compile) call).
    /// When more than the configured capacity have been dispatched, the
    /// oldest events are gone — `seq` numbers stay globally consecutive,
    /// so a gap before the first retained event is visible as
    /// `journal()[0].seq == dropped_events()`.
    pub fn journal(&self) -> Vec<CacheEvent> {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .copied()
            .collect()
    }

    /// Number of journal events currently retained (at most the configured
    /// capacity; cheaper than cloning the journal).
    pub fn journal_len(&self) -> usize {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .len()
    }

    /// Journal events shed to the bounded ring so far. Total dispatches
    /// ever journaled = `dropped_events() + journal_len()`.
    pub fn dropped_events(&self) -> u64 {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }

    /// Dispatches served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Dispatches that compiled so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.map().len(),
        }
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.map().clear();
    }
}

/// The content fingerprint keying [`PlanCache`] entries (FNV-1a, 64-bit).
pub fn plan_fingerprint(
    compiler: &Compiler,
    spec: &AlgoSpec,
    topo: &Topology,
    mb: &MicroBatchPlan,
) -> u64 {
    let mut h = Fnv::new();

    // Compiler options that change the artifact.
    h.u32(match compiler.scheduler {
        SchedulerChoice::Hpds => 0,
        SchedulerChoice::RoundRobin => 1,
    });
    h.u32(compiler.verify as u32);
    // The lint gate changes whether a plan exists at all (deny) and what
    // diagnostics ride on it, so gated and ungated plans must not alias.
    h.u32(match compiler.lint_gate {
        LintGate::Off => 0,
        LintGate::Warn => 1,
        LintGate::Deny => 2,
    });
    h.u32(compiler.lint_config.tb_budget_per_rank);

    // Algorithm spec.
    h.str(spec.name());
    h.u32(match spec.op() {
        OpType::AllGather => 0,
        OpType::AllReduce => 1,
        OpType::ReduceScatter => 2,
    });
    h.u32(spec.n_ranks());
    h.u32(spec.n_chunks());
    h.u64(spec.transfers().len() as u64);
    for t in spec.transfers() {
        h.u32(t.src.0);
        h.u32(t.dst.0);
        h.u32(t.step.0);
        h.u32(t.chunk.0);
        h.u32(match t.comm {
            CommType::Recv => 0,
            CommType::Rrc => 1,
        });
    }

    // Topology: shape and every fabric cost parameter.
    h.str(topo.name());
    let s = topo.spec();
    h.u32(s.n_nodes);
    h.u32(s.gpus_per_node);
    h.u32(s.nics_per_node);
    let f = topo.fabric();
    for link in [&f.intra, &f.port, &f.inter] {
        h.link(link);
    }
    h.f64(f.cross_rack_extra_ns);
    h.u32(f.servers_per_rack);
    // Health mask: recompiling around a dead resource must produce a
    // distinct entry.
    h.u64(topo.health().dead().len() as u64);
    for r in topo.health().dead() {
        h.u32(r.0);
    }

    // Micro-batch plan shape (not the raw buffer size: two buffers with
    // the same chunking and invocation count share a plan).
    h.u32(mb.n_chunks);
    h.u64(mb.chunk_bytes);
    h.u32(mb.n_micro_batches);

    h.finish()
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn link(&mut self, l: &LinkParams) {
        self.f64(l.alpha_ns);
        self.f64(l.beta_ns_per_byte);
        self.f64(l.gamma_ns);
        self.f64(l.tb_bw_bytes_per_ns);
        self.u32(l.saturation_tbs);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_algos::{hm_allgather, hm_allreduce};

    fn mb(buffer: u64, chunks: u32) -> MicroBatchPlan {
        MicroBatchPlan::plan(buffer, chunks, 1 << 20)
    }

    #[test]
    fn identical_configuration_hits() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let a = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        let b = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn changed_chunking_misses() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let coarse = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 1 << 20);
        let fine = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 512 << 10);
        cache
            .get_or_compile(&compiler, &spec, &topo, &coarse)
            .unwrap();
        cache
            .get_or_compile(&compiler, &spec, &topo, &fine)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn changed_topology_or_algorithm_misses() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let ar = hm_allreduce(2, 4);
        let plan = mb(64 << 20, ar.n_chunks());
        cache
            .get_or_compile(&compiler, &ar, &Topology::a100(2, 4), &plan)
            .unwrap();
        // Same shape, different fabric.
        cache
            .get_or_compile(&compiler, &ar, &Topology::v100(2, 4), &plan)
            .unwrap();
        // Same topology, different algorithm.
        let ag = hm_allgather(2, 4);
        let plan_ag = mb(64 << 20, ag.n_chunks());
        cache
            .get_or_compile(&compiler, &ag, &Topology::a100(2, 4), &plan_ag)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 3,
                entries: 3
            }
        );
    }

    #[test]
    fn masked_topology_fingerprints_distinctly() {
        use rescc_topology::{Rank, TopologyHealth};
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let compiler = Compiler::new();
        let healthy = Topology::a100(2, 4);
        let chan = healthy.pair_chan(Rank::new(0), Rank::new(1));
        let mut mask = TopologyHealth::healthy();
        mask.mask(chan);
        let degraded = Topology::a100(2, 4).with_health(mask);
        assert_ne!(
            plan_fingerprint(&compiler, &spec, &healthy, &plan),
            plan_fingerprint(&compiler, &spec, &degraded, &plan)
        );
        // An explicit empty mask is the healthy fingerprint.
        let empty = Topology::a100(2, 4).with_health(TopologyHealth::healthy());
        assert_eq!(
            plan_fingerprint(&compiler, &spec, &healthy, &plan),
            plan_fingerprint(&compiler, &spec, &empty, &plan)
        );
    }

    #[test]
    fn journal_records_dispatches_in_order() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        assert_eq!(cache.journal_len(), 0);
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        let journal = cache.journal();
        assert_eq!(journal.len(), 2);
        let fp = plan_fingerprint(&compiler, &spec, &topo, &plan);
        assert_eq!(
            journal[0],
            CacheEvent {
                seq: 0,
                fingerprint: fp,
                hit: false
            }
        );
        assert_eq!(
            journal[1],
            CacheEvent {
                seq: 1,
                fingerprint: fp,
                hit: true
            }
        );
    }

    #[test]
    fn journal_is_a_bounded_ring() {
        let cache = PlanCache::with_journal_capacity(3);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let plan = mb(16 << 20, spec.n_chunks());
        for _ in 0..5 {
            cache
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
        }
        assert_eq!(cache.journal_len(), 3, "ring must stay at capacity");
        assert_eq!(cache.dropped_events(), 2);
        let journal = cache.journal();
        // Oldest retained first, globally consecutive seq numbers, and the
        // gap before the first retained event equals the drop count.
        assert_eq!(
            journal.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(journal[0].seq, cache.dropped_events());
        // Stats are unaffected by journal truncation.
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_journal_drops_everything() {
        let cache = PlanCache::with_journal_capacity(0);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let plan = mb(16 << 20, spec.n_chunks());
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert_eq!(cache.journal_len(), 0);
        assert!(cache.journal().is_empty());
        assert_eq!(cache.dropped_events(), 1);
    }

    #[test]
    fn inserted_plan_is_served_on_next_dispatch() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let compiled = Arc::new(compiler.compile_spec(&spec, &topo).unwrap());
        let fp = plan_fingerprint(&compiler, &spec, &topo, &plan);
        cache.insert(fp, Arc::clone(&compiled));
        let served = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert!(Arc::ptr_eq(&served, &compiled));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn fingerprint_ignores_thread_count() {
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let serial = Compiler::new();
        let parallel = Compiler::new().with_threads(8);
        assert_eq!(
            plan_fingerprint(&serial, &spec, &topo, &plan),
            plan_fingerprint(&parallel, &spec, &topo, &plan)
        );
    }
}
