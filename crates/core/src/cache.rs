//! Content-addressed, sharded, concurrency-safe cache of compiled plans —
//! the plan service behind every dispatcher.
//!
//! Compiling an algorithm is orders of magnitude slower than dispatching
//! it, and training loops issue the *same* collective (same algorithm,
//! same topology, same micro-batch shape) thousands of times — across
//! many streams and many communicators at once. [`PlanCache`] memoizes
//! [`CompiledPlan`]s behind a content fingerprint so only the first call
//! of each distinct configuration pays for Analysis, Scheduling and
//! Lowering; every subsequent call, from any thread, is a hash lookup
//! plus an `Arc` clone.
//!
//! Concurrency architecture (DESIGN.md §13):
//!
//! * **Sharding** — entries live in [`SHARD_COUNT`] independent shards
//!   selected by a mixed fingerprint, so dispatches of distinct plans
//!   touch distinct locks.
//! * **Read-mostly hit path** — each shard's map sits behind an
//!   `RwLock`; a hit takes only the *shared* lock (never exclusive), so
//!   concurrent warm dispatches of any number of threads proceed in
//!   parallel. Recency for eviction is stamped through an atomic on the
//!   entry, not by mutating the map.
//! * **Singleflight** — concurrent cold dispatches of the *same*
//!   fingerprint are deduplicated: the first thread compiles, the rest
//!   block on a shard-local in-flight table and are handed the leader's
//!   artifact. Exactly one miss is counted per actual compile; the
//!   waiters count as coalesced hits.
//! * **Bounded memory** — an optional byte budget
//!   ([`with_byte_budget`](PlanCache::with_byte_budget)) triggers
//!   cost-aware LRU eviction at insert time. Plans are charged by task /
//!   program size ([`plan_cost_bytes`]); the entry being inserted is
//!   never its own victim, so a just-inserted degraded plan survives for
//!   the watchdog that produced it.
//! * **Per-shard journal rings** — dispatch-order journaling is a
//!   bounded ring per shard; [`journal`](PlanCache::journal) merges the
//!   rings by globally-assigned `seq`, so concurrent dispatches stay
//!   attributable and ordered.
//!
//! The fingerprint covers everything the compiled artifact depends on:
//!
//! * the full algorithm spec (name, operator, ranks, chunks, and every
//!   transfer tuple),
//! * the topology (name, cluster shape, all fabric cost parameters, and
//!   the health mask — a plan compiled around a dead link must never alias
//!   the healthy plan),
//! * the micro-batch plan *shape* (logical chunks, per-invocation chunk
//!   bytes, invocation count) — buffer sizes that produce the same shape
//!   share an entry,
//! * the compiler options that change output (scheduler choice and the
//!   verify flag). The thread count is deliberately excluded: parallel
//!   compilation is bit-identical to serial, so it must not split entries.
//!
//! Anything that changes one of these — a different chunking, another
//! topology, a tweaked fabric parameter — changes the key and misses.

use crate::{CompiledPlan, Compiler, LintGate, SchedulerChoice};
use rescc_ir::MicroBatchPlan;
use rescc_lang::{AlgoSpec, CommType, OpType};
use rescc_sim::SimResult;
use rescc_topology::{LinkParams, Topology};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Journal entries retained **per shard** by default. Long-running
/// training loops dispatch millions of times; the journal exists for
/// observability tails, not full history, so each shard's ring is bounded
/// and drops its oldest entries first.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Number of cache shards (fixed, power of two). Dispatches of distinct
/// fingerprints land on independent locks with probability
/// `1 − 1/SHARD_COUNT`.
pub const SHARD_COUNT: usize = 16;

/// Snapshot of a cache's counters.
///
/// Each shard updates its counters and its entry/byte accounting inside
/// one critical section, so a snapshot is **coherent per shard**: the
/// identity `entries == misses + inserts − evictions` holds exactly for
/// every shard's contribution (eviction counts cover budget evictions,
/// replacements, and [`clear`](PlanCache::clear)). Across shards the
/// snapshot is a sum of per-shard snapshots taken in shard order — each
/// internally consistent, mutually skewed by at most the dispatches that
/// landed between the reads. Because the identity is linear, it holds for
/// the summed snapshot too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dispatches served from the cache (includes `coalesced`).
    pub hits: u64,
    /// Dispatches that actually compiled. With singleflight dedup this
    /// counts *compiles*, not cold arrivals: concurrent requesters of an
    /// in-flight fingerprint land in `coalesced`, not here.
    pub misses: u64,
    /// The subset of `hits` that were served by waiting on another
    /// thread's in-flight compile of the same fingerprint.
    pub coalesced: u64,
    /// Plans installed via [`PlanCache::insert`] (degraded-plan inserts
    /// from watchdog recovery; includes replacements of existing keys).
    pub inserts: u64,
    /// Distinct plans currently cached.
    pub entries: usize,
    /// Entries removed: cost-budget LRU evictions, replacements of an
    /// existing key, and entries dropped by [`PlanCache::clear`].
    pub evictions: u64,
    /// Estimated bytes currently charged to resident plans
    /// ([`plan_cost_bytes`]).
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Fraction of dispatches served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What a journaled cache event records about its dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEventKind {
    /// Served from the resident map on the shared-lock fast path.
    Hit,
    /// This dispatch compiled and published the plan.
    Miss,
    /// Served by waiting on another dispatch's in-flight compile of the
    /// same fingerprint (singleflight).
    Coalesced,
    /// A plan was installed or replaced via [`PlanCache::insert`] —
    /// e.g. a degraded plan from watchdog recovery. Not a dispatch.
    Insert,
}

/// One recorded cache event, in dispatch order.
///
/// The journal is the cache's event log for observability consumers: a
/// deterministic record of which fingerprints were dispatched (or
/// explicitly inserted) and whether each dispatch compiled, independent
/// of wall-clock timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEvent {
    /// Position in global dispatch order (0-based; assigned from one
    /// cache-wide counter inside the owning shard's critical section, so
    /// concurrent dispatches get distinct numbers and each shard's ring
    /// is seq-sorted).
    pub seq: u64,
    /// The plan fingerprint that was looked up or inserted.
    pub fingerprint: u64,
    /// How the event was served.
    pub kind: CacheEventKind,
}

impl CacheEvent {
    /// Whether the dispatch was served without compiling (a map hit or a
    /// coalesced wait on another thread's compile).
    pub fn is_hit(&self) -> bool {
        matches!(self.kind, CacheEventKind::Hit | CacheEventKind::Coalesced)
    }
}

/// A resident entry: the plan, its byte charge, and an atomically
/// stamped recency so the hit path never needs the exclusive map lock.
#[derive(Debug)]
struct CacheSlot {
    plan: Arc<CompiledPlan>,
    cost: u64,
    last_used: AtomicU64,
}

/// Rendezvous for one in-flight compile: the leader fills `done` and
/// notifies; followers wait. Shared out of the shard's in-flight table.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<SimResult<Arc<CompiledPlan>>>>,
    cv: Condvar,
}

impl Inflight {
    fn wait(&self) -> SimResult<Arc<CompiledPlan>> {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while done.is_none() {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        done.as_ref().expect("filled").clone()
    }

    fn fill(&self, result: SimResult<Arc<CompiledPlan>>) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.cv.notify_all();
    }
}

/// Counters, entry accounting, and the journal ring of one shard — all
/// mutated under one mutex so snapshots cannot tear (the satellite bug
/// this replaces: hits/misses atomics and `map.len()` were read under no
/// common lock).
#[derive(Debug)]
struct ShardState {
    hits: u64,
    misses: u64,
    coalesced: u64,
    inserts: u64,
    evictions: u64,
    entries: usize,
    resident_bytes: u64,
    ring: VecDeque<CacheEvent>,
    capacity: usize,
    dropped: u64,
}

impl ShardState {
    fn new(capacity: usize) -> Self {
        Self {
            hits: 0,
            misses: 0,
            coalesced: 0,
            inserts: 0,
            evictions: 0,
            entries: 0,
            resident_bytes: 0,
            ring: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    fn record(&mut self, ev: CacheEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            coalesced: self.coalesced,
            inserts: self.inserts,
            entries: self.entries,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
        }
    }
}

#[derive(Debug)]
struct Shard {
    map: RwLock<HashMap<u64, CacheSlot>>,
    state: Mutex<ShardState>,
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            state: Mutex::new(ShardState::new(capacity)),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Lock order: `map` may be acquired while holding `inflight`;
    /// `state` may be acquired while holding `map`; nothing is acquired
    /// while holding `state`. All three recover from poisoning — entries
    /// are only ever whole values written inside a critical section, so
    /// inheriting the structures is always safe.
    fn state(&self) -> std::sync::MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn read_map(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u64, CacheSlot>> {
        self.map.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<u64, CacheSlot>> {
        self.map.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A thread-safe, sharded memo table from plan fingerprints to compiled
/// plans, with singleflight compile dedup and optional cost-bounded LRU
/// eviction. Designed to be shared: wrap it in an `Arc` and hand it to
/// any number of dispatching threads or `Communicator`s.
///
/// ```
/// use rescc_core::{Compiler, PlanCache};
/// use rescc_ir::MicroBatchPlan;
/// use rescc_topology::Topology;
/// use rescc_algos::hm_allreduce;
///
/// let cache = PlanCache::new();
/// let compiler = Compiler::new();
/// let topo = Topology::a100(2, 4);
/// let spec = hm_allreduce(2, 4);
/// let mb = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 1 << 20);
/// let first = cache.get_or_compile(&compiler, &spec, &topo, &mb).unwrap();
/// let second = cache.get_or_compile(&compiler, &spec, &topo, &mb).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Shard>,
    /// Global dispatch-order sequence, shared by every shard's journal.
    next_seq: AtomicU64,
    /// Global recency clock for LRU stamps (bumped on every hit/insert).
    clock: AtomicU64,
    /// Total byte budget, split evenly across shards; `None` = unbounded.
    byte_budget: Option<u64>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache with the default per-shard journal capacity
    /// ([`DEFAULT_JOURNAL_CAPACITY`]) and unbounded memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` journal events per
    /// shard (0 disables journaling entirely; every event counts as
    /// dropped). Total retention is at most `SHARD_COUNT × capacity`;
    /// each shard's stream is individually contiguous, so after merging,
    /// a gap in `seq` marks events another shard (or this one) shed.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| Shard::new(capacity)).collect(),
            next_seq: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            byte_budget: None,
        }
    }

    /// Bound resident plan memory to roughly `bytes` (charged via
    /// [`plan_cost_bytes`], split evenly across shards). When a shard
    /// overflows its slice of the budget, least-recently-used entries are
    /// evicted at insert time — never the entry being inserted, so a
    /// just-published plan (e.g. a degraded plan a resuming watchdog is
    /// about to dispatch) always survives its own insert even if it alone
    /// exceeds the budget.
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    fn shard_budget(&self) -> Option<u64> {
        self.byte_budget.map(|b| b / SHARD_COUNT as u64)
    }

    fn shard(&self, fingerprint: u64) -> &Shard {
        // Fibonacci mix, then take the top bits: FNV's low bits carry the
        // last-hashed bytes' structure, the mixed high bits do not.
        let mixed = fingerprint.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 60) as usize & (SHARD_COUNT - 1)]
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Shared-lock lookup: returns the plan and stamps recency without
    /// ever taking an exclusive lock.
    fn try_hit(&self, shard: &Shard, fingerprint: u64) -> Option<Arc<CompiledPlan>> {
        let map = shard.read_map();
        map.get(&fingerprint).map(|slot| {
            slot.last_used.store(self.stamp(), Ordering::Relaxed);
            Arc::clone(&slot.plan)
        })
    }

    /// Count and journal a served dispatch on its shard.
    fn record_served(&self, shard: &Shard, fingerprint: u64, kind: CacheEventKind) -> CacheEvent {
        let mut st = shard.state();
        match kind {
            CacheEventKind::Hit => st.hits += 1,
            CacheEventKind::Coalesced => {
                st.hits += 1;
                st.coalesced += 1;
            }
            CacheEventKind::Miss | CacheEventKind::Insert => {
                unreachable!("publishes go through publish()")
            }
        }
        let ev = CacheEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            fingerprint,
            kind,
        };
        st.record(ev);
        ev
    }

    /// Install `plan` under `fingerprint`, evict over budget, and update
    /// counters + journal in one coherent critical section. `kind` is
    /// [`CacheEventKind::Miss`] for a compile publish,
    /// [`CacheEventKind::Insert`] for an explicit insert.
    fn publish(
        &self,
        shard: &Shard,
        fingerprint: u64,
        plan: Arc<CompiledPlan>,
        kind: CacheEventKind,
    ) -> CacheEvent {
        let cost = plan_cost_bytes(&plan);
        let mut map = shard.write_map();
        let replaced = map.insert(
            fingerprint,
            CacheSlot {
                plan,
                cost,
                last_used: AtomicU64::new(self.stamp()),
            },
        );
        let mut evicted = Vec::new();
        if let Some(budget) = self.shard_budget() {
            let mut total: u64 = map.values().map(|s| s.cost).sum();
            while total > budget && map.len() > 1 {
                // Cost-aware LRU: evict the stalest entry that is not the
                // one just inserted. Ties break on the fingerprint so
                // replays evict deterministically.
                let victim = map
                    .iter()
                    .filter(|(k, _)| **k != fingerprint)
                    .map(|(k, s)| (s.last_used.load(Ordering::Relaxed), *k))
                    .min();
                match victim {
                    Some((_, k)) => {
                        let slot = map.remove(&k).expect("victim came from this map");
                        total -= slot.cost;
                        evicted.push(slot.cost);
                    }
                    None => break,
                }
            }
        }
        // State updates while still holding the map write lock: entry
        // count, byte charge, and counters move together.
        let mut st = shard.state();
        match kind {
            CacheEventKind::Miss => st.misses += 1,
            CacheEventKind::Insert => st.inserts += 1,
            _ => unreachable!("serves go through record_served()"),
        }
        if let Some(old) = replaced {
            st.evictions += 1;
            st.resident_bytes -= old.cost;
        } else {
            st.entries += 1;
        }
        st.resident_bytes += cost;
        for c in &evicted {
            st.evictions += 1;
            st.entries -= 1;
            st.resident_bytes -= c;
        }
        debug_assert_eq!(st.entries, map.len());
        let ev = CacheEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            fingerprint,
            kind,
        };
        st.record(ev);
        ev
    }

    /// Return the cached plan for this configuration, compiling (and
    /// caching) it on first sight. See
    /// [`get_or_compile_traced`](Self::get_or_compile_traced) for the
    /// variant that also returns this dispatch's journal event.
    pub fn get_or_compile(
        &self,
        compiler: &Compiler,
        spec: &AlgoSpec,
        topo: &Topology,
        mb: &MicroBatchPlan,
    ) -> SimResult<Arc<CompiledPlan>> {
        self.get_or_compile_traced(compiler, spec, topo, mb)
            .map(|(plan, _)| plan)
    }

    /// [`get_or_compile`](Self::get_or_compile), additionally returning
    /// the [`CacheEvent`] journaled for **this** dispatch — the handle an
    /// observability consumer needs to attribute its own dispatch without
    /// reading the shared journal (whose tail belongs to whichever thread
    /// dispatched last).
    pub fn get_or_compile_traced(
        &self,
        compiler: &Compiler,
        spec: &AlgoSpec,
        topo: &Topology,
        mb: &MicroBatchPlan,
    ) -> SimResult<(Arc<CompiledPlan>, CacheEvent)> {
        let key = plan_fingerprint(compiler, spec, topo, mb);
        self.get_or_compile_keyed(key, || compiler.compile_spec(spec, topo))
    }

    /// The service fast path: dispatch by a precomputed fingerprint.
    ///
    /// `fingerprint` must come from [`plan_fingerprint`] for the
    /// configuration `compile` builds — callers that dispatch the same
    /// shape repeatedly (a training loop, a communicator) compute it once
    /// and skip re-hashing the spec on every call. `compile` runs at most
    /// once across all concurrent callers of this fingerprint
    /// (singleflight): the leader compiles with no cache lock held,
    /// concurrent requesters block on the shard's in-flight table and
    /// are handed the leader's artifact as [`CacheEventKind::Coalesced`]
    /// hits. A failed compile is propagated to every waiter and cached
    /// nowhere, so the next dispatch retries.
    pub fn get_or_compile_keyed(
        &self,
        fingerprint: u64,
        compile: impl FnOnce() -> SimResult<CompiledPlan>,
    ) -> SimResult<(Arc<CompiledPlan>, CacheEvent)> {
        let shard = self.shard(fingerprint);
        if let Some(plan) = self.try_hit(shard, fingerprint) {
            let ev = self.record_served(shard, fingerprint, CacheEventKind::Hit);
            return Ok((plan, ev));
        }

        enum Role {
            Leader(Arc<Inflight>),
            Follower(Arc<Inflight>),
            Hit(Arc<CompiledPlan>),
        }
        let role = {
            let mut inflight = shard.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = inflight.get(&fingerprint) {
                Role::Follower(Arc::clone(slot))
            } else if let Some(plan) = self.try_hit(shard, fingerprint) {
                // Published between our fast-path miss and taking the
                // in-flight lock: a plain hit after all.
                Role::Hit(plan)
            } else {
                let slot = Arc::new(Inflight::default());
                inflight.insert(fingerprint, Arc::clone(&slot));
                Role::Leader(slot)
            }
        };

        match role {
            Role::Hit(plan) => {
                let ev = self.record_served(shard, fingerprint, CacheEventKind::Hit);
                Ok((plan, ev))
            }
            Role::Follower(slot) => {
                let plan = slot.wait()?;
                let ev = self.record_served(shard, fingerprint, CacheEventKind::Coalesced);
                Ok((plan, ev))
            }
            Role::Leader(slot) => {
                // Ensure the in-flight entry never outlives this call:
                // if `compile` panics, waiters are released with an error
                // and the next dispatch elects a fresh leader instead of
                // blocking forever.
                struct Unpark<'a> {
                    shard: &'a Shard,
                    fingerprint: u64,
                    slot: &'a Inflight,
                    result: Option<SimResult<Arc<CompiledPlan>>>,
                }
                impl Drop for Unpark<'_> {
                    fn drop(&mut self) {
                        self.slot.fill(self.result.take().unwrap_or_else(|| {
                            Err(rescc_sim::SimError::new(
                                "plan cache: in-flight compile panicked",
                            ))
                        }));
                        self.shard
                            .inflight
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .remove(&self.fingerprint);
                    }
                }
                let mut unpark = Unpark {
                    shard,
                    fingerprint,
                    slot: &slot,
                    result: None,
                };
                // Compile with no cache lock held: cold compiles of
                // *distinct* fingerprints run fully in parallel.
                match compile() {
                    Ok(plan) => {
                        let plan = Arc::new(plan);
                        let ev = self.publish(
                            shard,
                            fingerprint,
                            Arc::clone(&plan),
                            CacheEventKind::Miss,
                        );
                        unpark.result = Some(Ok(Arc::clone(&plan)));
                        drop(unpark);
                        Ok((plan, ev))
                    }
                    Err(e) => {
                        unpark.result = Some(Err(e.clone()));
                        drop(unpark);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Insert a plan compiled outside the cache — e.g. a delta-recompiled
    /// plan for a degraded topology (see `Compiler::recompile_delta`) —
    /// under its [`plan_fingerprint`] key, so later dispatches against the
    /// same degraded configuration hit. Replaces any existing entry, and
    /// journals a [`CacheEventKind::Insert`] event: explicit inserts are
    /// part of the deterministic record of which fingerprints were made
    /// dispatchable, exactly like misses.
    pub fn insert(&self, fingerprint: u64, plan: Arc<CompiledPlan>) {
        let shard = self.shard(fingerprint);
        self.publish(shard, fingerprint, plan, CacheEventKind::Insert);
    }

    /// Whether a plan is currently resident for `fingerprint` (no journal
    /// event, no recency bump — a diagnostic peek).
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.shard(fingerprint)
            .read_map()
            .contains_key(&fingerprint)
    }

    /// Snapshot of the *retained* dispatch journal, merged across shards
    /// and sorted by global `seq` (one [`CacheEvent`] per
    /// [`get_or_compile`](Self::get_or_compile) call or
    /// [`insert`](Self::insert)). Each shard keeps a bounded ring of its
    /// own most recent events; when more than a ring's capacity landed on
    /// one shard, that shard's oldest events are gone — `seq` numbers
    /// stay globally unique and ordered, so drops appear as gaps.
    pub fn journal(&self) -> Vec<CacheEvent> {
        let mut out: Vec<CacheEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.state().ring.iter().copied().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Number of journal events currently retained across all shards
    /// (cheaper than cloning the journal).
    pub fn journal_len(&self) -> usize {
        self.shards.iter().map(|s| s.state().ring.len()).sum()
    }

    /// Journal events shed to the bounded per-shard rings so far. Total
    /// events ever journaled = `dropped_events() + journal_len()`.
    pub fn dropped_events(&self) -> u64 {
        self.shards.iter().map(|s| s.state().dropped).sum()
    }

    /// Dispatches served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.state().hits).sum()
    }

    /// Dispatches that compiled so far.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.state().misses).sum()
    }

    /// Counter snapshot — coherent per shard, summed across shards (see
    /// [`CacheStats`] for the exact guarantee).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.state().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.coalesced += s.coalesced;
            total.inserts += s.inserts;
            total.entries += s.entries;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }

    /// Drop every cached plan. Hit/miss counters and the journal are
    /// kept; the dropped entries are counted as evictions so the
    /// [`CacheStats`] identity keeps holding.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map = shard.write_map();
            let mut st = shard.state();
            st.evictions += map.len() as u64;
            st.entries = 0;
            st.resident_bytes = 0;
            map.clear();
        }
    }
}

/// Estimated resident cost of a compiled plan, in bytes — the charge
/// [`PlanCache::with_byte_budget`] evicts against. A deterministic
/// size-model (tasks, kernel slots, spec transfers, fixed overhead)
/// rather than a true allocator measurement, so budgets behave
/// identically across platforms and replays.
pub fn plan_cost_bytes(plan: &CompiledPlan) -> u64 {
    let tasks = plan.dag.len() as u64;
    let slots = plan.program.total_slots() as u64;
    let transfers = plan.spec.transfers().len() as u64;
    4096 + tasks * 160 + slots * 48 + transfers * 24
}

/// The pre-sharding cache: one mutex around one map, kept verbatim as the
/// **reference oracle** for the `plan-service` benchmark (BENCH_service.
/// json compares the sharded hit path against this under contention) and
/// for differential tests. Faithfully preserves the old concurrency
/// behavior, bugs included: concurrent cold dispatches of the same
/// fingerprint each compile ("last insert wins") and each count a miss.
/// Do not use in new code — this is a measurement baseline.
#[derive(Debug, Default)]
pub struct SingleMutexPlanCache {
    map: Mutex<HashMap<u64, Arc<CompiledPlan>>>,
    journal: Mutex<VecDeque<CacheEvent>>,
    hits: AtomicU64,
    misses: AtomicU64,
    next_seq: AtomicU64,
}

impl SingleMutexPlanCache {
    /// An empty reference cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Old-architecture dispatch by precomputed fingerprint: exclusive
    /// map lock on every lookup, duplicate concurrent compiles of one
    /// fingerprint, last insert wins.
    pub fn get_or_compile_keyed(
        &self,
        fingerprint: u64,
        compile: impl FnOnce() -> SimResult<CompiledPlan>,
    ) -> SimResult<Arc<CompiledPlan>> {
        if let Some(hit) = self
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fingerprint)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record(fingerprint, CacheEventKind::Hit);
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(compile()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fingerprint, Arc::clone(&compiled));
        self.record(fingerprint, CacheEventKind::Miss);
        Ok(compiled)
    }

    /// Old-architecture full dispatch (fingerprint computed per call).
    pub fn get_or_compile(
        &self,
        compiler: &Compiler,
        spec: &AlgoSpec,
        topo: &Topology,
        mb: &MicroBatchPlan,
    ) -> SimResult<Arc<CompiledPlan>> {
        let key = plan_fingerprint(compiler, spec, topo, mb);
        self.get_or_compile_keyed(key, || compiler.compile_spec(spec, topo))
    }

    fn record(&self, fingerprint: u64, kind: CacheEventKind) {
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if journal.len() == DEFAULT_JOURNAL_CAPACITY {
            journal.pop_front();
        }
        journal.push_back(CacheEvent {
            seq,
            fingerprint,
            kind,
        });
    }

    /// Counter snapshot in the shared [`CacheStats`] shape (the fields
    /// the old cache never had stay zero). Subject to the tearing the
    /// sharded cache fixed: hits/misses/entries are read under no common
    /// lock.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap_or_else(|e| e.into_inner()).len(),
            ..CacheStats::default()
        }
    }
}

/// The content fingerprint keying [`PlanCache`] entries (FNV-1a, 64-bit).
pub fn plan_fingerprint(
    compiler: &Compiler,
    spec: &AlgoSpec,
    topo: &Topology,
    mb: &MicroBatchPlan,
) -> u64 {
    let mut h = Fnv::new();

    // Compiler options that change the artifact.
    h.u32(match compiler.scheduler {
        SchedulerChoice::Hpds => 0,
        SchedulerChoice::RoundRobin => 1,
    });
    h.u32(compiler.verify as u32);
    // The lint gate changes whether a plan exists at all (deny) and what
    // diagnostics ride on it, so gated and ungated plans must not alias.
    h.u32(match compiler.lint_gate {
        LintGate::Off => 0,
        LintGate::Warn => 1,
        LintGate::Deny => 2,
    });
    h.u32(compiler.lint_config.tb_budget_per_rank);

    // Algorithm spec.
    h.str(spec.name());
    h.u32(match spec.op() {
        OpType::AllGather => 0,
        OpType::AllReduce => 1,
        OpType::ReduceScatter => 2,
    });
    h.u32(spec.n_ranks());
    h.u32(spec.n_chunks());
    h.u64(spec.transfers().len() as u64);
    for t in spec.transfers() {
        h.u32(t.src.0);
        h.u32(t.dst.0);
        h.u32(t.step.0);
        h.u32(t.chunk.0);
        h.u32(match t.comm {
            CommType::Recv => 0,
            CommType::Rrc => 1,
        });
    }

    // Topology: shape and every fabric cost parameter.
    h.str(topo.name());
    let s = topo.spec();
    h.u32(s.n_nodes);
    h.u32(s.gpus_per_node);
    h.u32(s.nics_per_node);
    let f = topo.fabric();
    for link in [&f.intra, &f.port, &f.inter] {
        h.link(link);
    }
    h.f64(f.cross_rack_extra_ns);
    h.u32(f.servers_per_rack);
    // Health mask: recompiling around a dead resource must produce a
    // distinct entry.
    h.u64(topo.health().dead().len() as u64);
    for r in topo.health().dead() {
        h.u32(r.0);
    }

    // Micro-batch plan shape (not the raw buffer size: two buffers with
    // the same chunking and invocation count share a plan).
    h.u32(mb.n_chunks);
    h.u64(mb.chunk_bytes);
    h.u32(mb.n_micro_batches);

    h.finish()
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn link(&mut self, l: &LinkParams) {
        self.f64(l.alpha_ns);
        self.f64(l.beta_ns_per_byte);
        self.f64(l.gamma_ns);
        self.f64(l.tb_bw_bytes_per_ns);
        self.u32(l.saturation_tbs);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_algos::{hm_allgather, hm_allreduce};

    fn mb(buffer: u64, chunks: u32) -> MicroBatchPlan {
        MicroBatchPlan::plan(buffer, chunks, 1 << 20)
    }

    #[test]
    fn identical_configuration_hits() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let a = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        let b = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.coalesced, stats.inserts, stats.evictions), (0, 0, 0));
        assert_eq!(stats.resident_bytes, plan_cost_bytes(&a));
    }

    #[test]
    fn changed_chunking_misses() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let coarse = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 1 << 20);
        let fine = MicroBatchPlan::plan(64 << 20, spec.n_chunks(), 512 << 10);
        cache
            .get_or_compile(&compiler, &spec, &topo, &coarse)
            .unwrap();
        cache
            .get_or_compile(&compiler, &spec, &topo, &fine)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn changed_topology_or_algorithm_misses() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let ar = hm_allreduce(2, 4);
        let plan = mb(64 << 20, ar.n_chunks());
        cache
            .get_or_compile(&compiler, &ar, &Topology::a100(2, 4), &plan)
            .unwrap();
        // Same shape, different fabric.
        cache
            .get_or_compile(&compiler, &ar, &Topology::v100(2, 4), &plan)
            .unwrap();
        // Same topology, different algorithm.
        let ag = hm_allgather(2, 4);
        let plan_ag = mb(64 << 20, ag.n_chunks());
        cache
            .get_or_compile(&compiler, &ag, &Topology::a100(2, 4), &plan_ag)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 3));
    }

    #[test]
    fn masked_topology_fingerprints_distinctly() {
        use rescc_topology::{Rank, TopologyHealth};
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let compiler = Compiler::new();
        let healthy = Topology::a100(2, 4);
        let chan = healthy.pair_chan(Rank::new(0), Rank::new(1));
        let mut mask = TopologyHealth::healthy();
        mask.mask(chan);
        let degraded = Topology::a100(2, 4).with_health(mask);
        assert_ne!(
            plan_fingerprint(&compiler, &spec, &healthy, &plan),
            plan_fingerprint(&compiler, &spec, &degraded, &plan)
        );
        // An explicit empty mask is the healthy fingerprint.
        let empty = Topology::a100(2, 4).with_health(TopologyHealth::healthy());
        assert_eq!(
            plan_fingerprint(&compiler, &spec, &healthy, &plan),
            plan_fingerprint(&compiler, &spec, &empty, &plan)
        );
    }

    #[test]
    fn journal_records_dispatches_in_order() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        assert_eq!(cache.journal_len(), 0);
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        let journal = cache.journal();
        assert_eq!(journal.len(), 2);
        let fp = plan_fingerprint(&compiler, &spec, &topo, &plan);
        assert_eq!(
            journal[0],
            CacheEvent {
                seq: 0,
                fingerprint: fp,
                kind: CacheEventKind::Miss
            }
        );
        assert_eq!(
            journal[1],
            CacheEvent {
                seq: 1,
                fingerprint: fp,
                kind: CacheEventKind::Hit
            }
        );
        assert!(!journal[0].is_hit());
        assert!(journal[1].is_hit());
    }

    #[test]
    fn journal_is_a_bounded_ring() {
        let cache = PlanCache::with_journal_capacity(3);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let plan = mb(16 << 20, spec.n_chunks());
        for _ in 0..5 {
            cache
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
        }
        // One fingerprint → one shard → its ring behaves exactly like the
        // old global ring.
        assert_eq!(cache.journal_len(), 3, "ring must stay at capacity");
        assert_eq!(cache.dropped_events(), 2);
        let journal = cache.journal();
        // Oldest retained first, globally consecutive seq numbers, and the
        // gap before the first retained event equals the drop count.
        assert_eq!(
            journal.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(journal[0].seq, cache.dropped_events());
        // Stats are unaffected by journal truncation.
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_journal_drops_everything() {
        let cache = PlanCache::with_journal_capacity(0);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let plan = mb(16 << 20, spec.n_chunks());
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert_eq!(cache.journal_len(), 0);
        assert!(cache.journal().is_empty());
        assert_eq!(cache.dropped_events(), 1);
    }

    #[test]
    fn inserted_plan_is_served_on_next_dispatch_and_journaled() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let compiled = Arc::new(compiler.compile_spec(&spec, &topo).unwrap());
        let fp = plan_fingerprint(&compiler, &spec, &topo, &plan);
        cache.insert(fp, Arc::clone(&compiled));
        let served = cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        assert!(Arc::ptr_eq(&served, &compiled));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 0, 1));
        // The explicit insert is part of the dispatch record (the old
        // cache silently bypassed the journal here).
        let journal = cache.journal();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal[0].kind, CacheEventKind::Insert);
        assert_eq!(journal[0].fingerprint, fp);
        assert_eq!(journal[1].kind, CacheEventKind::Hit);
        // Replacing the entry journals another insert and counts the
        // displaced entry as evicted, keeping the stats identity.
        cache.insert(fp, Arc::clone(&compiled));
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.evictions, stats.entries), (2, 1, 1));
        assert_eq!(
            stats.entries as u64,
            stats.misses + stats.inserts - stats.evictions
        );
    }

    #[test]
    fn fingerprint_ignores_thread_count() {
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let plan = mb(64 << 20, spec.n_chunks());
        let serial = Compiler::new();
        let parallel = Compiler::new().with_threads(8);
        assert_eq!(
            plan_fingerprint(&serial, &spec, &topo, &plan),
            plan_fingerprint(&parallel, &spec, &topo, &plan)
        );
    }

    #[test]
    fn byte_budget_evicts_lru_but_never_the_newest_entry() {
        // Budget of 1 byte total → every shard's slice rounds to 0, so
        // each publish evicts everything except the entry being inserted.
        let cache = PlanCache::with_journal_capacity(64).with_byte_budget(1);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let mut last_fp = 0;
        for i in 0..6 {
            let plan = MicroBatchPlan::plan(16 << 20, spec.n_chunks(), (1 << 20) + i * 4096);
            cache
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
            last_fp = plan_fingerprint(&compiler, &spec, &topo, &plan);
            // The just-inserted plan always survives its own insert.
            assert!(cache.contains(last_fp));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert!(
            stats.entries <= SHARD_COUNT && stats.evictions > 0,
            "zero budget must evict: {stats:?}"
        );
        assert_eq!(
            stats.entries as u64,
            stats.misses + stats.inserts - stats.evictions
        );
        // An evicted configuration recompiles (counts a fresh miss).
        let first = MicroBatchPlan::plan(16 << 20, spec.n_chunks(), 1 << 20);
        let first_fp = plan_fingerprint(&compiler, &spec, &topo, &first);
        if !cache.contains(first_fp) {
            cache
                .get_or_compile(&compiler, &spec, &topo, &first)
                .unwrap();
            assert_eq!(cache.stats().misses, 7);
        }
        let _ = last_fp;
    }

    #[test]
    fn unbudgeted_cache_never_evicts() {
        let cache = PlanCache::new();
        assert_eq!(cache.byte_budget(), None);
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        for i in 0..4 {
            let plan = MicroBatchPlan::plan(16 << 20, spec.n_chunks(), (1 << 20) + i * 4096);
            cache
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (4, 0));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn clear_counts_dropped_entries_as_evictions() {
        let cache = PlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        let plan = mb(16 << 20, spec.n_chunks());
        cache
            .get_or_compile(&compiler, &spec, &topo, &plan)
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (0, 1));
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(
            stats.entries as u64,
            stats.misses + stats.inserts - stats.evictions
        );
    }

    #[test]
    fn single_mutex_reference_matches_on_serial_traffic() {
        let sharded = PlanCache::new();
        let reference = SingleMutexPlanCache::new();
        let compiler = Compiler::new();
        let topo = Topology::a100(1, 4);
        let spec = hm_allreduce(1, 4);
        for i in [0u64, 1, 0, 2, 1, 0] {
            let plan = MicroBatchPlan::plan(16 << 20, spec.n_chunks(), (1 << 20) + i * 4096);
            let a = sharded
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
            let b = reference
                .get_or_compile(&compiler, &spec, &topo, &plan)
                .unwrap();
            assert!(a.semantic_eq(&b));
        }
        let (s, r) = (sharded.stats(), reference.stats());
        assert_eq!((s.hits, s.misses, s.entries), (r.hits, r.misses, r.entries));
    }
}
