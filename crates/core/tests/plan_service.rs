//! Concurrency property suite for the sharded plan service
//! (`PlanCache`): singleflight dedup, stats/journal coherence, bounded
//! memory, and differential agreement with the single-mutex reference.
//!
//! Every test serializes on one static mutex: the singleflight proofs
//! read the process-wide `phase_counters`, so no other test in this
//! binary may compile concurrently while one runs.

use rescc_algos::hm_allreduce;
use rescc_core::{
    phase_counters, plan_fingerprint, CacheEventKind, Compiler, PlanCache, SingleMutexPlanCache,
};
use rescc_ir::MicroBatchPlan;
use rescc_lang::AlgoSpec;
use rescc_sim::SimError;
use rescc_topology::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A dispatchable configuration; distinct `i` → distinct fingerprint
/// (the micro-batch chunk size is part of the plan key).
struct Config {
    spec: AlgoSpec,
    topo: Topology,
    mb: MicroBatchPlan,
}

fn config(i: u64) -> Config {
    let spec = hm_allreduce(1, 4);
    let mb = MicroBatchPlan::plan(16 << 20, spec.n_chunks(), (1 << 20) + i * 8192);
    Config {
        spec,
        topo: Topology::a100(1, 4),
        mb,
    }
}

fn dispatch(cache: &PlanCache, compiler: &Compiler, c: &Config) -> rescc_core::CacheEvent {
    cache
        .get_or_compile_traced(compiler, &c.spec, &c.topo, &c.mb)
        .expect("dispatch")
        .1
}

/// The satellite-bug regression: K threads racing one cold fingerprint
/// must produce exactly one compile (phase counters), one journaled
/// miss, and K−1 hits — the pre-singleflight cache compiled once per
/// racer ("last insert wins"). The leader's compile is gated so the
/// race is deterministic, not a scheduler accident.
#[test]
fn racing_cold_dispatches_coalesce_to_one_compile() {
    let _g = serial();
    const K: usize = 8;
    let compiler = Compiler::new();
    let c = config(0);
    let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
    let cache = PlanCache::new();
    let compiles = AtomicU64::new(0);
    let gate = Barrier::new(2);
    let (arrived_tx, arrived_rx) = mpsc::channel::<()>();
    let before = phase_counters::snapshot();

    let events = thread::scope(|s| {
        // Leader: its compile blocks on the gate, guaranteeing the other
        // K−1 dispatches arrive while the compile is still in flight.
        let leader = s.spawn(|| {
            cache
                .get_or_compile_keyed(key, || {
                    compiles.fetch_add(1, Ordering::SeqCst);
                    gate.wait();
                    compiler.compile_spec(&c.spec, &c.topo)
                })
                .expect("leader dispatch")
        });
        while compiles.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        let cache = &cache;
        let followers: Vec<_> = (0..K - 1)
            .map(|_| {
                let tx = arrived_tx.clone();
                s.spawn(move || {
                    tx.send(()).unwrap();
                    // A follower's closure runs only if it were elected
                    // leader — impossible while the gated compile holds
                    // the in-flight slot, and unnecessary after it
                    // publishes. Either way: never.
                    cache
                        .get_or_compile_keyed(key, || panic!("duplicate concurrent compile"))
                        .expect("follower dispatch")
                })
            })
            .collect();
        for _ in 0..K - 1 {
            arrived_rx.recv().unwrap();
        }
        // Let the followers reach the in-flight table before releasing
        // the leader's compile.
        thread::sleep(Duration::from_millis(100));
        gate.wait();
        let mut out = vec![leader.join().expect("leader")];
        out.extend(followers.into_iter().map(|f| f.join().expect("follower")));
        out
    });

    let ran = phase_counters::snapshot().since(&before);
    assert_eq!(compiles.load(Ordering::SeqCst), 1, "compile closure reran");
    assert_eq!(
        (ran.scheduling, ran.lowering),
        (1, 1),
        "exactly one compile pipeline must have run: {ran:?}"
    );
    for (plan, _) in &events[1..] {
        assert!(
            Arc::ptr_eq(plan, &events[0].0),
            "all racers must share the leader's artifact"
        );
    }
    let misses = events.iter().filter(|(_, e)| !e.is_hit()).count();
    assert_eq!(misses, 1, "exactly one dispatch may count as the miss");
    let stats = cache.stats();
    assert_eq!((stats.misses, stats.hits), (1, (K - 1) as u64));
    assert!(
        stats.coalesced >= 1 && stats.coalesced <= (K - 1) as u64,
        "gated racers must coalesce: {stats:?}"
    );
    // The journal tells the same story as the counters.
    let journal = cache.journal();
    assert_eq!(journal.len(), K);
    assert_eq!(
        journal
            .iter()
            .filter(|e| e.kind == CacheEventKind::Miss)
            .count(),
        1
    );
    assert!(journal.iter().all(|e| e.fingerprint == key));
}

/// A failed compile is propagated to the caller and cached nowhere, so
/// the next dispatch retries (and can succeed).
#[test]
fn failed_compile_is_propagated_and_not_cached() {
    let _g = serial();
    let compiler = Compiler::new();
    let c = config(0);
    let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
    let cache = PlanCache::new();
    let err = cache
        .get_or_compile_keyed(key, || Err(SimError::new("transient tooling failure")))
        .expect_err("erroring compile must propagate");
    assert!(matches!(err, SimError::InvalidProgram(_)));
    assert!(!cache.contains(key), "failures must not be cached");
    assert_eq!(cache.stats().misses, 0, "failures are not misses");
    let (_, ev) = cache
        .get_or_compile_keyed(key, || compiler.compile_spec(&c.spec, &c.topo))
        .expect("retry must be allowed to succeed");
    assert!(!ev.is_hit());
    assert!(cache.contains(key));
}

/// N threads over mixed hot/cold fingerprints produce exactly the plans
/// a serial compiler produces, and the service's books stay balanced:
/// every dispatch is a hit or a miss, journal seqs are unique, and the
/// stats identity holds.
#[test]
fn mixed_hot_cold_traffic_matches_serial_compiles() {
    let _g = serial();
    const THREADS: usize = 4;
    const OPS: usize = 32;
    const DISTINCT: u64 = 6;
    let compiler = Compiler::new();
    let cache = PlanCache::new();
    let start = Barrier::new(THREADS);

    thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, compiler, start) = (&cache, &compiler, &start);
            s.spawn(move || {
                start.wait();
                for i in 0..OPS {
                    // Interleave so every thread touches every config,
                    // hot (repeated) and cold (first toucher compiles).
                    let c = config(((t + i) as u64) % DISTINCT);
                    dispatch(cache, compiler, &c);
                }
            });
        }
    });

    // Byte-identical artifacts: whatever thread won each compile race,
    // the cached plan equals a fresh serial compile.
    for i in 0..DISTINCT {
        let c = config(i);
        let (cached, ev) = cache
            .get_or_compile_traced(&compiler, &c.spec, &c.topo, &c.mb)
            .expect("post-run dispatch");
        assert!(ev.is_hit(), "config {i} must be resident");
        let serial_plan = compiler.compile_spec(&c.spec, &c.topo).expect("serial");
        assert!(
            cached.semantic_eq(&serial_plan),
            "config {i}: cached plan diverged from serial compile"
        );
    }

    let total = (THREADS * OPS + DISTINCT as usize) as u64;
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, total);
    assert_eq!(stats.misses, DISTINCT, "one compile per distinct config");
    assert_eq!(stats.entries as u64, DISTINCT);
    assert_eq!(
        stats.entries as u64,
        stats.misses + stats.inserts - stats.evictions
    );
    let journal = cache.journal();
    assert_eq!(journal.len(), total as usize);
    let mut seqs: Vec<u64> = journal.iter().map(|e| e.seq).collect();
    let sorted = seqs.windows(2).all(|w| w[0] < w[1]);
    assert!(sorted, "merged journal must be strictly seq-ordered");
    seqs.dedup();
    assert_eq!(seqs.len(), total as usize, "seq numbers must be unique");
}

/// The tearing regression: `stats()` snapshots taken *during* concurrent
/// dispatch must satisfy `entries == misses + inserts − evictions` —
/// each shard updates counters and entry accounting in one critical
/// section, and the identity is linear, so it survives summation. The
/// pre-PR cache bumped `misses` before inserting into the map under a
/// different lock, so a mid-dispatch snapshot could violate this.
#[test]
fn stats_snapshots_stay_coherent_during_dispatch() {
    let _g = serial();
    const WRITERS: usize = 3;
    const OPS: usize = 24;
    let compiler = Compiler::new();
    let cache = PlanCache::new();
    let done = AtomicU64::new(0);

    thread::scope(|s| {
        for t in 0..WRITERS {
            let (cache, compiler, done) = (&cache, &compiler, &done);
            s.spawn(move || {
                for i in 0..OPS {
                    let c = config(((t * OPS + i) as u64) % 8);
                    dispatch(cache, compiler, &c);
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Sampler: hammer snapshots while the writers dispatch.
        let (cache, done) = (&cache, &done);
        s.spawn(move || {
            let mut samples = 0u64;
            while done.load(Ordering::SeqCst) < WRITERS as u64 {
                let st = cache.stats();
                assert_eq!(
                    st.entries as u64,
                    st.misses + st.inserts - st.evictions,
                    "torn snapshot: {st:?}"
                );
                samples += 1;
            }
            assert!(samples > 0);
        });
    });

    let st = cache.stats();
    assert_eq!(st.hits + st.misses, (WRITERS * OPS) as u64);
}

/// Bounded memory: a byte budget caps residency via LRU eviction, the
/// books count every eviction, and the entry being published — including
/// an explicitly inserted degraded plan a resuming watchdog is about to
/// dispatch — is never its own victim. (In-flight compiles cannot be
/// evicted at all: they are not resident until published.)
#[test]
fn byte_budget_evicts_lru_and_spares_fresh_inserts() {
    let _g = serial();
    let compiler = Compiler::new();
    // 1-byte budget → every shard's slice is 0 → maximum pressure.
    let cache = PlanCache::new().with_byte_budget(1);
    for i in 0..10 {
        let c = config(i);
        let (_, ev) = cache
            .get_or_compile_traced(&compiler, &c.spec, &c.topo, &c.mb)
            .expect("dispatch");
        let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
        assert!(!ev.is_hit());
        assert!(
            cache.contains(key),
            "a just-published plan must survive its own insert"
        );
    }
    let st = cache.stats();
    assert!(st.evictions > 0, "budget must have evicted: {st:?}");
    assert_eq!(
        st.entries as u64,
        st.misses + st.inserts - st.evictions,
        "eviction accounting out of balance: {st:?}"
    );

    // A degraded-plan insert under the same pressure: resident
    // immediately after, and journaled as an explicit insert (the pre-PR
    // cache silently bypassed the journal here).
    let c = config(99);
    let degraded = Arc::new(compiler.compile_spec(&c.spec, &c.topo).expect("compile"));
    let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
    cache.insert(key, degraded);
    assert!(
        cache.contains(key),
        "fresh insert evicted out from under us"
    );
    let (_, ev) = cache
        .get_or_compile_traced(&compiler, &c.spec, &c.topo, &c.mb)
        .expect("dispatch of inserted plan");
    assert!(
        ev.is_hit(),
        "the inserted plan must serve the next dispatch"
    );
    assert!(cache
        .journal()
        .iter()
        .any(|e| e.kind == CacheEventKind::Insert && e.fingerprint == key));
}

/// A publish that lands while eviction pressure is active still wins: a
/// gated leader compiles while other traffic evicts everything, and its
/// artifact is resident and served once published.
#[test]
fn in_flight_compile_publishes_despite_eviction_pressure() {
    let _g = serial();
    let compiler = Compiler::new();
    let cache = PlanCache::new().with_byte_budget(1);
    let c = config(0);
    let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
    let entered = AtomicU64::new(0);
    let gate = Barrier::new(2);

    thread::scope(|s| {
        let leader = s.spawn(|| {
            cache
                .get_or_compile_keyed(key, || {
                    entered.fetch_add(1, Ordering::SeqCst);
                    gate.wait();
                    compiler.compile_spec(&c.spec, &c.topo)
                })
                .expect("leader")
        });
        while entered.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        // While the compile is in flight, churn the cache hard.
        for i in 1..8 {
            let other = config(i);
            dispatch(&cache, &compiler, &other);
        }
        gate.wait();
        let (plan, _) = leader.join().expect("leader join");
        let (served, ev) = cache
            .get_or_compile_traced(&compiler, &c.spec, &c.topo, &c.mb)
            .expect("re-dispatch");
        assert!(ev.is_hit(), "published artifact must be resident");
        assert!(Arc::ptr_eq(&plan, &served));
    });
}

/// Zero journal capacity must never panic, resident plans and counters
/// must be unaffected, and every event must be counted as dropped — under
/// concurrency, not just serially.
#[test]
fn zero_capacity_journal_never_panics_under_concurrency() {
    let _g = serial();
    const THREADS: usize = 4;
    const OPS: usize = 16;
    let compiler = Compiler::new();
    let cache = PlanCache::with_journal_capacity(0);
    let start = Barrier::new(THREADS);
    thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, compiler, start) = (&cache, &compiler, &start);
            s.spawn(move || {
                start.wait();
                for i in 0..OPS {
                    let c = config(((t + i) as u64) % 3);
                    dispatch(cache, compiler, &c);
                }
            });
        }
    });
    assert_eq!(cache.journal_len(), 0);
    assert!(cache.journal().is_empty());
    assert_eq!(cache.dropped_events(), (THREADS * OPS) as u64);
    let st = cache.stats();
    assert_eq!(st.hits + st.misses, (THREADS * OPS) as u64);
}

/// Differential oracle: on serial traffic the sharded service and the
/// single-mutex reference agree on every counter and serve semantically
/// identical plans — sharding changes the concurrency envelope, not the
/// cache semantics.
#[test]
fn sharded_service_agrees_with_single_mutex_reference() {
    let _g = serial();
    let compiler = Compiler::new();
    let sharded = PlanCache::new();
    let reference = SingleMutexPlanCache::new();
    for i in [0u64, 1, 2, 0, 1, 3, 0, 4, 2] {
        let c = config(i);
        let key = plan_fingerprint(&compiler, &c.spec, &c.topo, &c.mb);
        let (a, _) = sharded
            .get_or_compile_keyed(key, || compiler.compile_spec(&c.spec, &c.topo))
            .expect("sharded");
        let b = reference
            .get_or_compile_keyed(key, || compiler.compile_spec(&c.spec, &c.topo))
            .expect("reference");
        assert!(a.semantic_eq(&b), "config {i}: artifacts diverged");
    }
    let (s, r) = (sharded.stats(), reference.stats());
    assert_eq!((s.hits, s.misses, s.entries), (r.hits, r.misses, r.entries));
}
