//! Property grid for [`Compiler::recompile_delta`]: every workload ×
//! Table-3 topology × fault site must either produce a *valid* degraded
//! plan (schedule, allocation, and program all re-validate against the
//! rerouted DAG, and the simulator delivers correct data on it) or be
//! denied by the sanitize gate with an RA005 finding. Unchanged-mask
//! deltas must be byte-equivalent to the cached plan without re-running
//! any phase.

use rescc_core::{phase_counters, Compiler};
use rescc_ir::DepDag;
use rescc_lang::AlgoSpec;
use rescc_topology::{NicId, Rank, Topology, TopologyHealth};

const MB: u64 = 1 << 20;

/// The workload axis: one expert, one multi-ring, one synthesized
/// algorithm per topology shape.
fn workloads(topo: &Topology) -> Vec<(&'static str, AlgoSpec)> {
    let (nodes, g) = (topo.n_nodes(), topo.gpus_per_node());
    vec![
        ("hm_allreduce", rescc_algos::hm_allreduce(nodes, g)),
        (
            "nccl_rings_allgather",
            rescc_algos::nccl_rings_allgather(nodes, g, 2),
        ),
        (
            "taccl_like_allgather",
            rescc_algos::taccl_like_allgather(nodes, g),
        ),
    ]
}

/// The fault axis: intra-node NVLink channels at different offsets plus a
/// NIC transmit direction.
fn fault_sites(topo: &Topology) -> Vec<(String, TopologyHealth)> {
    let g = topo.gpus_per_node();
    let mut sites = Vec::new();
    let chan = |a: u32, b: u32| {
        let mut h = TopologyHealth::default();
        h.mask(topo.pair_chan(Rank::new(a), Rank::new(b)));
        (format!("chan({a},{b})"), h)
    };
    sites.push(chan(0, 1));
    sites.push(chan(g - 2, g - 1));
    // A channel on the second node, crossing NIC-sharing pairs.
    sites.push(chan(g, g + 2));
    let mut h = TopologyHealth::default();
    h.mask(topo.nic_tx(NicId::new(0)));
    sites.push(("nic_tx(0)".into(), h));
    sites
}

#[test]
fn unchanged_mask_is_byte_equivalent_across_grid() {
    let compiler = Compiler::new();
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        for (name, spec) in workloads(&topo) {
            let plan = compiler.compile_spec(&spec, &topo).unwrap();
            let before = phase_counters::snapshot();
            let delta = compiler.recompile_delta(&plan, plan.topo.health()).unwrap();
            assert!(
                delta.semantic_eq(&plan),
                "{name} on {}: unchanged-mask delta diverged",
                topo.name()
            );
            assert_eq!(
                phase_counters::snapshot().since(&before).total(),
                0,
                "{name} on {}: identity delta re-ran a phase",
                topo.name()
            );
        }
    }
}

#[test]
fn unchanged_mask_delta_equals_a_full_recompile() {
    // Compilation is deterministic, so for an unchanged mask the delta
    // (which returns the cached plan) must be byte-identical to a fresh
    // full compile against the same degraded topology — including when
    // the cached plan itself already carries a non-empty mask.
    let compiler = Compiler::new();
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        for (name, spec) in workloads(&topo) {
            let mut health = TopologyHealth::default();
            health.mask(topo.pair_chan(Rank::new(0), Rank::new(1)));
            let degraded = topo.clone().with_health(health.clone());
            let Ok(cached) = compiler.compile_spec(&spec, &degraded) else {
                // Workloads with no healthy route under this mask are
                // covered by the RA005 tests.
                continue;
            };
            let delta = compiler.recompile_delta(&cached, &health).unwrap();
            let full = compiler.compile_spec(&spec, &degraded).unwrap();
            assert!(
                delta.semantic_eq(&full),
                "{name} on {}: unchanged-mask delta differs from a full recompile",
                topo.name()
            );
        }
    }
}

#[test]
fn delta_plans_are_valid_or_denied_with_ra005() {
    let compiler = Compiler::new();
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        for (name, spec) in workloads(&topo) {
            let plan = compiler.compile_spec(&spec, &topo).unwrap();
            for (site, health) in fault_sites(&topo) {
                let ctx = format!("{name} on {} with {site}", topo.name());
                match compiler.recompile_delta(&plan, &health) {
                    Ok(delta) => {
                        assert_eq!(delta.topo.health(), &health, "{ctx}: health not applied");
                        delta
                            .schedule
                            .validate(&delta.dag)
                            .unwrap_or_else(|e| panic!("{ctx}: invalid schedule: {e}"));
                        delta
                            .alloc
                            .validate(&delta.dag, &delta.schedule)
                            .unwrap_or_else(|e| panic!("{ctx}: invalid allocation: {e}"));
                        delta
                            .program
                            .validate(&delta.dag)
                            .unwrap_or_else(|e| panic!("{ctx}: invalid program: {e}"));
                        assert!(
                            delta.diagnostics.is_clean(),
                            "{ctx}: delta plan carries diagnostics: {}",
                            delta.diagnostics.render_human()
                        );
                        let report = delta
                            .run(64 * MB, MB)
                            .unwrap_or_else(|e| panic!("{ctx}: sim failed: {e}"));
                        assert_eq!(report.data_valid, Some(true), "{ctx}: wrong data");
                    }
                    Err(e) => {
                        // The only legitimate refusal is the lint gate
                        // catching a route over a masked resource.
                        assert!(
                            e.to_string().contains("RA005"),
                            "{ctx}: denied without an RA005 finding: {e}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn delta_dag_matches_fresh_build_on_degraded_topology() {
    let compiler = Compiler::new();
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        for (name, spec) in workloads(&topo) {
            let plan = compiler.compile_spec(&spec, &topo).unwrap();
            for (site, health) in fault_sites(&topo) {
                let Ok(delta) = compiler.recompile_delta(&plan, &health) else {
                    continue;
                };
                let degraded = topo.clone().with_health(health);
                let fresh = DepDag::build(&spec, &degraded)
                    .unwrap_or_else(|e| panic!("{name} {site}: fresh build failed: {e}"));
                assert_eq!(
                    delta.dag,
                    fresh,
                    "{name} on {} with {site}: rerouted DAG diverges from a fresh build",
                    topo.name()
                );
            }
        }
    }
}

#[test]
fn masking_every_nic_tx_on_a_node_is_denied() {
    let compiler = Compiler::new();
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        let spec = rescc_algos::hm_allreduce(topo.n_nodes(), topo.gpus_per_node());
        let plan = compiler.compile_spec(&spec, &topo).unwrap();
        let mut health = TopologyHealth::default();
        for nic in 0..topo.spec().nics_per_node {
            health.mask(topo.nic_tx(NicId::new(nic)));
        }
        let err = compiler
            .recompile_delta(&plan, &health)
            .expect_err("a node with no transmit NIC cannot host inter-node transfers");
        assert!(
            err.to_string().contains("RA005"),
            "{}: expected an RA005 denial, got: {err}",
            topo.name()
        );
    }
}
