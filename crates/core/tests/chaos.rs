//! Chaos campaign: seeded randomized multi-fault timelines (permanent
//! kills, kill-then-restore outages, flaps, brownouts, stragglers —
//! including faults that land *during* recovery attempts) driven through
//! the full watchdog stack on every workload × Table-3 topology. The
//! properties: the collective either delivers machine-validated data
//! within the watchdog's bounded retry/recompile budgets, or gives up
//! with a typed error; recovery accounting (retries, recompiles, resumes,
//! heals, journal) stays internally consistent; and identical seeds
//! replay byte-identically.

use rescc_backends::{Communicator, RecoveryAction, RecoveryStats, RunReport};
use rescc_lang::OpType;
use rescc_sim::{FaultTimeline, SimError, SimResult};
use rescc_topology::Topology;

const MB: u64 = 1 << 20;

/// The workload axis: one collective per operator the communicator serves.
const OPS: [OpType; 3] = [OpType::AllReduce, OpType::AllGather, OpType::ReduceScatter];

fn issue(comm: &mut Communicator, op: OpType, buffer: u64) -> SimResult<RunReport> {
    match op {
        OpType::AllReduce => comm.all_reduce(buffer),
        OpType::AllGather => comm.all_gather(buffer),
        OpType::ReduceScatter => comm.reduce_scatter(buffer),
    }
}

/// Per-attempt journal and counters must describe the same history:
/// every retry/recompile/heal journals exactly one event whose action
/// tallies match the counters, attempts are issued in order, and resumed
/// dispatches never outnumber the failures that could have produced a
/// frontier.
fn check_accounting(ctx: &str, rec: &RecoveryStats) {
    let count = |a: RecoveryAction| rec.journal.iter().filter(|e| e.action == a).count() as u32;
    assert_eq!(
        rec.journal.len() as u32,
        rec.retries + rec.recompiles + rec.heals,
        "{ctx}: journal entries must match the counters"
    );
    assert_eq!(
        count(RecoveryAction::Retry) + count(RecoveryAction::Resume),
        rec.retries,
        "{ctx}: every transient failure journals a retry or a resume"
    );
    assert_eq!(
        count(RecoveryAction::DeltaRecompile) + count(RecoveryAction::FullRecompile),
        rec.recompiles,
        "{ctx}: every permanent failure journals a recompile"
    );
    assert_eq!(
        count(RecoveryAction::Heal),
        rec.heals,
        "{ctx}: every heal journals"
    );
    assert_eq!(
        count(RecoveryAction::DeltaRecompile),
        rec.delta_recompiles,
        "{ctx}: delta-recompile tally"
    );
    assert!(
        rec.resumes <= rec.retries + rec.recompiles,
        "{ctx}: {} resumed dispatches but only {} failed attempts",
        rec.resumes,
        rec.retries + rec.recompiles
    );
    let attempts: Vec<u32> = rec.journal.iter().map(|e| e.attempt).collect();
    assert!(
        attempts.windows(2).all(|w| w[0] <= w[1]),
        "{ctx}: journal attempts out of order: {attempts:?}"
    );
    for e in &rec.journal {
        assert!(
            e.at_ns >= 0.0 && e.at_ns.is_finite(),
            "{ctx}: journal timestamp {} not a sim instant",
            e.at_ns
        );
        assert!(!e.cause.is_empty(), "{ctx}: journal entry without a cause");
    }
}

/// A give-up must be a *typed*, explained error — never a panic, never a
/// silent wrong answer. The legitimate shapes: a permanent `ResourceDown`
/// the routing could not mask around (budget exhausted or already
/// masked), or the sanitize gate denying the degraded/residual plan.
fn check_give_up(ctx: &str, err: &SimError) {
    match err {
        SimError::ResourceDown { permanent, .. } => {
            assert!(*permanent, "{ctx}: gave up on a transient fault: {err}")
        }
        other => {
            let msg = other.to_string();
            assert!(
                msg.contains("RA005") || msg.contains("recovery") || msg.contains("sanitize"),
                "{ctx}: unexplained give-up: {msg}"
            );
        }
    }
}

#[test]
fn chaos_timelines_validate_or_give_up_typed_across_grid() {
    let buffer = 16 * MB;
    for i in 1..=4 {
        let topo = Topology::table3_topo(i).unwrap();
        for op in OPS {
            // Healthy baseline scales the fault horizon so chaos lands
            // mid-collective rather than after completion.
            let healthy = issue(&mut Communicator::new(topo.clone()), op, buffer)
                .unwrap_or_else(|e| panic!("healthy {op:?} on {}: {e}", topo.name()));
            let horizon = healthy.sim.completion_ns;
            let mut survived = 0u32;
            for seed in 0..4u64 {
                let ctx = format!("{op:?} on {} seed {seed}", topo.name());
                let tl =
                    FaultTimeline::seeded_chaos(seed, topo.n_resources(), topo.n_ranks(), horizon);
                let mut comm = Communicator::new(topo.clone())
                    .with_validation()
                    .with_faults(tl);
                match issue(&mut comm, op, buffer) {
                    Ok(rep) => {
                        survived += 1;
                        assert_eq!(
                            rep.sim.data_valid,
                            Some(true),
                            "{ctx}: recovered run must validate"
                        );
                        let rec = rep.recovery.expect("chaos engages the watchdog");
                        assert!(rec.retries <= 8, "{ctx}: retry budget exceeded");
                        assert!(rec.recompiles <= 4, "{ctx}: recompile budget exceeded");
                        check_accounting(&ctx, &rec);
                    }
                    Err(err) => check_give_up(&ctx, &err),
                }
            }
            assert!(
                survived > 0,
                "{op:?} on {}: every chaos seed gave up — recovery is not working",
                topo.name()
            );
        }
    }
}

#[test]
fn chaos_replays_byte_identically() {
    // The whole recovery path — frontier capture, residual compile,
    // resume, mask + recompile — is deterministic: identical seeds must
    // produce identical reports (or identical give-ups).
    let topo = Topology::a100(2, 4);
    let buffer = 32 * MB;
    for seed in 0..6u64 {
        let run = || {
            let tl =
                FaultTimeline::seeded_chaos(seed, topo.n_resources(), topo.n_ranks(), 1_500_000.0);
            let mut comm = Communicator::new(topo.clone())
                .with_validation()
                .with_faults(tl);
            comm.all_reduce(buffer)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed}: reports diverge"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "seed {seed}: errors diverge")
            }
            (a, b) => panic!(
                "seed {seed}: one replay succeeded, the other failed: {:?} vs {:?}",
                a.map(|r| r.sim.completion_ns),
                b.map(|r| r.sim.completion_ns)
            ),
        }
    }
}

#[test]
fn chaos_during_recovery_and_rearming_heals() {
    // Sequential collectives on one communicator, re-armed with a fresh
    // chaos schedule between calls: masked resources whose new schedule
    // no longer declares them dead must heal, and every surviving call
    // must still validate.
    let topo = Topology::a100(2, 4);
    let buffer = 16 * MB;
    let mut comm = Communicator::new(topo.clone()).with_validation();
    let mut healed = 0u32;
    for seed in 10..16u64 {
        let tl = FaultTimeline::seeded_chaos(seed, topo.n_resources(), topo.n_ranks(), 1_000_000.0);
        comm.set_faults(tl);
        match comm.all_reduce(buffer) {
            Ok(rep) => {
                assert_eq!(rep.sim.data_valid, Some(true), "seed {seed}");
                if let Some(rec) = rep.recovery {
                    healed += rec.heals;
                    check_accounting(&format!("re-armed seed {seed}"), &rec);
                }
            }
            Err(err) => check_give_up(&format!("re-armed seed {seed}"), &err),
        }
    }
    // Disarm entirely: everything previously masked but no longer dead
    // heals at this boundary, and the collective runs clean.
    comm.set_faults(FaultTimeline::new());
    let rep = comm.all_reduce(buffer).expect("disarmed call runs clean");
    assert_eq!(rep.sim.data_valid, Some(true));
    if let Some(rec) = &rep.recovery {
        healed += rec.heals;
        assert_eq!(rec.retries, 0, "disarmed call must not retry");
    }
    assert!(
        comm.health().is_empty(),
        "disarming the schedule must heal every mask, {} still dead",
        comm.health().len()
    );
    // At least one seed in this range kills something permanently, so the
    // campaign must have exercised the healing path.
    assert!(
        healed > 0,
        "no heal ever fired across the re-armed campaign"
    );
}
