//! Criterion micro-benchmarks of the discrete-event simulator: events per
//! second across micro-batch counts and cluster shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rescc_algos::hm_allreduce;
use rescc_alloc::TbAllocation;
use rescc_ir::{DepDag, MicroBatchPlan};
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_sched::hpds;
use rescc_sim::{simulate, SimConfig};
use rescc_topology::Topology;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let topo = Topology::a100(2, 8);
    let spec = hm_allreduce(2, 8);
    let dag = DepDag::build(&spec, &topo).unwrap();
    let sched = hpds(&dag);
    let alloc = TbAllocation::state_based(&dag, &sched);
    let prog = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    let cfg = SimConfig::default().without_validation();
    for n_mb_target in [4u64, 16, 64] {
        let buffer = n_mb_target * spec.n_chunks() as u64 * (1 << 20);
        let plan = MicroBatchPlan::plan(buffer, spec.n_chunks(), 1 << 20);
        let invocations = dag.len() as u64 * plan.n_micro_batches as u64;
        group.throughput(Throughput::Elements(invocations));
        group.bench_with_input(
            BenchmarkId::new("hm-ar-2x8", format!("{}mb", plan.n_micro_batches)),
            &plan,
            |b, plan| b.iter(|| simulate(&topo, &dag, &prog, plan, spec.op(), &cfg).unwrap()),
        );
    }
    group.finish();
}

fn bench_validation_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator-validation");
    group.sample_size(20);
    let topo = Topology::a100(2, 4);
    let spec = hm_allreduce(2, 4);
    let dag = DepDag::build(&spec, &topo).unwrap();
    let sched = hpds(&dag);
    let alloc = TbAllocation::state_based(&dag, &sched);
    let prog = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    let plan = MicroBatchPlan::plan(128 << 20, spec.n_chunks(), 1 << 20);
    group.bench_function("with-data-checking", |b| {
        b.iter(|| simulate(&topo, &dag, &prog, &plan, spec.op(), &SimConfig::default()).unwrap())
    });
    group.bench_function("without-data-checking", |b| {
        let cfg = SimConfig::default().without_validation();
        b.iter(|| simulate(&topo, &dag, &prog, &plan, spec.op(), &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_validation_overhead);
criterion_main!(benches);
