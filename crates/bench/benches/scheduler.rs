//! Criterion micro-benchmarks of the schedulers: HPDS (Algorithm 1) vs the
//! round-robin baseline, across DAG sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescc_algos::{hm_allreduce, ring_allgather};
use rescc_ir::DepDag;
use rescc_sched::{hpds, round_robin};
use rescc_topology::Topology;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(30);
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 8)] {
        let topo = Topology::a100(nodes, g);
        let spec = hm_allreduce(nodes, g);
        let dag = DepDag::build(&spec, &topo).unwrap();
        group.bench_with_input(
            BenchmarkId::new("hpds/hm-ar", format!("{nodes}x{g}")),
            &dag,
            |b, dag| b.iter(|| hpds(dag)),
        );
        group.bench_with_input(
            BenchmarkId::new("rr/hm-ar", format!("{nodes}x{g}")),
            &dag,
            |b, dag| b.iter(|| round_robin(dag)),
        );
    }
    // A long-chain workload: the ring stresses the per-chunk chain logic.
    let topo = Topology::a100(4, 8);
    let dag = DepDag::build(&ring_allgather(32), &topo).unwrap();
    group.bench_function("hpds/ring-32", |b| b.iter(|| hpds(&dag)));
    group.finish();
}

fn bench_dag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag-build");
    group.sample_size(30);
    for (nodes, g) in [(2u32, 8u32), (4, 8), (8, 8)] {
        let topo = Topology::a100(nodes, g);
        let spec = hm_allreduce(nodes, g);
        group.bench_with_input(
            BenchmarkId::new("hm-ar", format!("{nodes}x{g}")),
            &(&spec, &topo),
            |b, (spec, topo)| b.iter(|| DepDag::build(spec, topo).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_dag_build);
criterion_main!(benches);
