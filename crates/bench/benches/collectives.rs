//! Criterion benchmarks of full backend runs — wall-clock cost of one
//! simulated collective per backend (the building block of every figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescc_algos::hm_allreduce;
use rescc_backends::{Backend, MscclBackend, NcclBackend, RescclBackend};
use rescc_topology::Topology;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend-run");
    group.sample_size(10);
    let topo = Topology::a100(2, 8);
    let spec = hm_allreduce(2, 8);
    let buffer = 128u64 << 20;
    let chunk = 1u64 << 20;
    let backends: Vec<(&str, Box<dyn Backend>)> = vec![
        ("nccl", Box::new(NcclBackend::default())),
        ("msccl", Box::new(MscclBackend::default())),
        ("resccl", Box::new(RescclBackend::default())),
    ];
    for (name, backend) in &backends {
        group.bench_with_input(
            BenchmarkId::new("hm-ar-2x8-128MB", name),
            backend,
            |b, backend| b.iter(|| backend.run_unchecked(&spec, &topo, buffer, chunk).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
