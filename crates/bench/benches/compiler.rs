//! Criterion micro-benchmarks of the offline compiler: DSL parsing /
//! evaluation throughput and the full compile pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescc_algos::{hm_allreduce, hm_allreduce_source};
use rescc_core::Compiler;
use rescc_lang::{eval_source, parse};
use rescc_topology::Topology;

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsl");
    let src = hm_allreduce_source(4, 8);
    group.bench_function("parse/hm-ar-4x8", |b| b.iter(|| parse(&src).unwrap()));
    group.bench_function("eval/hm-ar-4x8", |b| b.iter(|| eval_source(&src).unwrap()));
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for (nodes, g) in [(2u32, 8u32), (4, 8), (8, 8)] {
        let topo = Topology::a100(nodes, g);
        let spec = hm_allreduce(nodes, g);
        group.bench_with_input(
            BenchmarkId::new("full-pipeline/hm-ar", format!("{nodes}x{g}")),
            &(&spec, &topo),
            |b, (spec, topo)| {
                let compiler = Compiler::new();
                b.iter(|| compiler.compile_spec(spec, topo).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dsl, bench_compile);
criterion_main!(benches);
