//! Criterion micro-benchmarks of the offline compiler: DSL parsing /
//! evaluation throughput and the full compile pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescc_algos::{hm_allreduce, hm_allreduce_source};
use rescc_core::{Compiler, PlanCache};
use rescc_ir::MicroBatchPlan;
use rescc_lang::{eval_source, parse};
use rescc_topology::Topology;

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsl");
    let src = hm_allreduce_source(4, 8);
    group.bench_function("parse/hm-ar-4x8", |b| b.iter(|| parse(&src).unwrap()));
    group.bench_function("eval/hm-ar-4x8", |b| b.iter(|| eval_source(&src).unwrap()));
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for (nodes, g) in [(2u32, 8u32), (4, 8), (8, 8)] {
        let topo = Topology::a100(nodes, g);
        let spec = hm_allreduce(nodes, g);
        group.bench_with_input(
            BenchmarkId::new("full-pipeline/hm-ar", format!("{nodes}x{g}")),
            &(&spec, &topo),
            |b, (spec, topo)| {
                let compiler = Compiler::new();
                b.iter(|| compiler.compile_spec(spec, topo).unwrap())
            },
        );
    }
    // The same pipeline with the chunked phases fanned out over worker
    // threads — on a single hardware thread this matches the serial row.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for t in [2usize, 4, threads] {
        let topo = Topology::a100(8, 8);
        let spec = hm_allreduce(8, 8);
        group.bench_with_input(
            BenchmarkId::new("full-pipeline-parallel/hm-ar-8x8", format!("{t}t")),
            &(&spec, &topo),
            |b, (spec, topo)| {
                let compiler = Compiler::new().with_threads(t);
                b.iter(|| compiler.compile_spec(spec, topo).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    // Warm-cache dispatch: fingerprint + hash lookup, no compile phases.
    let mut group = c.benchmark_group("warm-cache");
    let topo = Topology::a100(8, 8);
    let spec = hm_allreduce(8, 8);
    let compiler = Compiler::new();
    let cache = PlanCache::new();
    let mb = MicroBatchPlan::plan(256 << 20, spec.n_chunks(), 1 << 20);
    cache
        .get_or_compile(&compiler, &spec, &topo, &mb)
        .expect("prime");
    group.bench_function("hit/hm-ar-8x8", |b| {
        b.iter(|| cache.get_or_compile(&compiler, &spec, &topo, &mb).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dsl, bench_compile, bench_warm_cache);
criterion_main!(benches);
