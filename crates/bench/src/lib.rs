//! # rescc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). Each `src/bin/<id>.rs` binary reproduces one
//! artifact and prints the same rows/series the paper reports;
//! `reproduce-all` runs the full set. The `benches/` directory holds
//! Criterion micro-benchmarks of the compiler and simulator themselves.
//!
//! Shared here: the buffer-size grids, table formatting, and the sweep
//! drivers (parallelized across topologies with scoped threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use rescc_backends::{Backend, MscclBackend, NcclBackend, RescclBackend, RunReport};
use rescc_lang::AlgoSpec;
use rescc_sim::SimResult;
use rescc_topology::Topology;

/// 1 MiB.
pub const MB: u64 = 1 << 20;
/// 1 GiB.
pub const GB: u64 = 1 << 30;

/// The paper's buffer-size sweep: 8 MB – 4 GB in powers of two
/// (Figs. 6–7).
pub fn buffer_sweep() -> Vec<u64> {
    (0..10).map(|i| (8 * MB) << i).collect()
}

/// A shorter sweep for the V100 figures (16 MB – 4 GB, Fig. 11).
pub fn v100_sweep() -> Vec<u64> {
    (0..9).map(|i| (16 * MB) << i).collect()
}

/// Human-friendly byte formatting ("8MB", "4GB").
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GB {
        format!("{}GB", bytes / GB)
    } else {
        format!("{}MB", bytes / MB)
    }
}

/// Percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The three backends under test, boxed for uniform iteration.
pub fn all_backends() -> Vec<Box<dyn Backend + Send + Sync>> {
    vec![
        Box::new(NcclBackend::default()),
        Box::new(MscclBackend::default()),
        Box::new(RescclBackend::default()),
    ]
}

/// Run `spec` on every backend for one buffer size (validation off — these
/// are bandwidth sweeps; correctness is covered by the test suite).
pub fn run_all(
    spec: &AlgoSpec,
    topo: &Topology,
    buffer: u64,
    chunk: u64,
) -> SimResult<Vec<RunReport>> {
    all_backends()
        .iter()
        .map(|b| b.run_unchecked(spec, topo, buffer, chunk))
        .collect()
}

/// A standard comparison panel: NCCL runs its own standard algorithm
/// (`nccl_spec` — real NCCL cannot execute custom algorithms), while MSCCL
/// and ResCCL execute the custom `custom_spec`, swept over the paper's
/// buffer grid.
pub fn backend_panel(title: &str, nccl_spec: &AlgoSpec, custom_spec: &AlgoSpec, topo: &Topology) {
    backend_panel_with(title, nccl_spec, custom_spec, topo, &buffer_sweep());
}

/// [`backend_panel`] with an explicit buffer grid.
pub fn backend_panel_with(
    title: &str,
    nccl_spec: &AlgoSpec,
    custom_spec: &AlgoSpec,
    topo: &Topology,
    buffers: &[u64],
) {
    use rescc_backends::{MscclBackend, NcclBackend, RescclBackend};
    let nccl = NcclBackend::default();
    let msccl = MscclBackend::default();
    let resccl = RescclBackend::default();
    let mut rows: Vec<Option<Vec<String>>> = vec![None; buffers.len()];
    std::thread::scope(|scope| {
        for (i, slot) in rows.iter_mut().enumerate() {
            let buffer = buffers[i];
            let (nccl, msccl, resccl) = (&nccl, &msccl, &resccl);
            scope.spawn(move || {
                let n = nccl
                    .run_unchecked(nccl_spec, topo, buffer, MB)
                    .unwrap_or_else(|e| panic!("nccl {}: {e}", fmt_bytes(buffer)));
                let m = msccl
                    .run_unchecked(custom_spec, topo, buffer, MB)
                    .unwrap_or_else(|e| panic!("msccl {}: {e}", fmt_bytes(buffer)));
                let r = resccl
                    .run_unchecked(custom_spec, topo, buffer, MB)
                    .unwrap_or_else(|e| panic!("resccl {}: {e}", fmt_bytes(buffer)));
                *slot = Some(vec![
                    fmt_bytes(buffer),
                    format!("{:.2}", n.algbw_gbps()),
                    format!("{:.2}", m.algbw_gbps()),
                    format!("{:.2}", r.algbw_gbps()),
                    format!("{:.2}x", r.algbw_gbps() / n.algbw_gbps()),
                    format!("{:.2}x", r.algbw_gbps() / m.algbw_gbps()),
                ]);
            });
        }
    });
    let rows: Vec<Vec<String>> = rows.into_iter().map(|r| r.expect("filled")).collect();
    print_table(
        &format!("{title}: algorithm bandwidth (GB/s)"),
        &["buffer", "NCCL", "MSCCL", "ResCCL", "vs NCCL", "vs MSCCL"],
        &rows,
    );
}

/// Sweep one (spec, topo) pair over buffer sizes on all backends, in
/// parallel over buffer sizes. Returns `results[size_idx][backend_idx]`.
pub fn sweep(spec: &AlgoSpec, topo: &Topology, buffers: &[u64], chunk: u64) -> Vec<Vec<RunReport>> {
    let mut out: Vec<Option<Vec<RunReport>>> = vec![None; buffers.len()];
    std::thread::scope(|s| {
        for (i, slot) in out.iter_mut().enumerate() {
            let buffer = buffers[i];
            s.spawn(move || {
                *slot = Some(
                    run_all(spec, topo, buffer, chunk)
                        .unwrap_or_else(|e| panic!("sweep {} failed: {e}", fmt_bytes(buffer))),
                );
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_matches_paper_range() {
        let g = buffer_sweep();
        assert_eq!(g.first().copied(), Some(8 * MB));
        assert_eq!(g.last().copied(), Some(4 * GB));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(8 * MB), "8MB");
        assert_eq!(fmt_bytes(4 * GB), "4GB");
        assert_eq!(fmt_bytes(512 * MB), "512MB");
    }

    #[test]
    fn run_all_produces_three_reports() {
        let spec = rescc_algos::ring_allgather(8);
        let topo = Topology::a100(1, 8);
        let reps = run_all(&spec, &topo, 16 * MB, MB).unwrap();
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].backend, "nccl");
        assert_eq!(reps[2].backend, "resccl");
    }
}
