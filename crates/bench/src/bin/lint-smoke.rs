//! CI smoke gate for the schedule-certification layer.
//!
//! Fails (nonzero exit) if any guard trips:
//!
//! 1. the full 8-lint `analyze()` sweep must stay within 2× of the
//!    pre-certification 5-lint subset (shared oracle amortization);
//! 2. the seed suite must lint clean — every diagnostic here is a false
//!    positive by construction;
//! 3. no simulated run may finish below its plan's certified α–β–γ
//!    makespan floor.
//!
//! Sized for CI: 64 emulated GPUs, well under a second end to end.
//! The full-scale measurement (256/1,024/4,096 ranks) lives in the
//! `analyze-bench` experiment.

use rescc_alloc::TbAllocation;
use rescc_analyze::{analyze, lints, AnalysisConfig, AnalysisInput, CombinedOrder, HbOracle};
use rescc_core::Compiler;
use rescc_ir::DepDag;
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_sched::hpds;
use rescc_topology::Topology;
use std::time::Instant;

const MB: u64 = 1 << 20;

fn main() {
    let mut failures = Vec::new();
    let (nodes, g) = (8u32, 8u32);
    let topo = Topology::a100(nodes, g);
    let config = AnalysisConfig::default();

    // Guard 1: sweep-to-subset ratio. Best-of-3 on both sides to shrug
    // off CI timer jitter.
    let spec = rescc_algos::hm_allreduce(nodes, g);
    let dag = DepDag::build(&spec, &topo).expect("smoke dag");
    let schedule = hpds(&dag);
    let alloc = TbAllocation::connection_based(&dag, &schedule, 1);
    let program = KernelProgram::generate(
        spec.name(),
        &dag,
        &alloc,
        LoopOrder::SlotMajor,
        ExecMode::DirectKernel,
    );
    let input = AnalysisInput {
        spec: &spec,
        dag: &dag,
        schedule: &schedule,
        alloc: &alloc,
        program: &program,
        topo: &topo,
    };
    let mut best_full = f64::MAX;
    let mut best_subset = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let report = analyze(&input, &config);
        best_full = best_full.min(t0.elapsed().as_secs_f64());
        if !report.is_clean() {
            failures.push(format!(
                "hm_allreduce not clean:\n{}",
                report.render_human()
            ));
            break;
        }
        let t0 = Instant::now();
        let chunk_of: Vec<u32> = dag.tasks().iter().map(|t| t.chunk.0).collect();
        let order = CombinedOrder::build(&dag, &program);
        let mut oracle = HbOracle::build(&order, &chunk_of).expect("acyclic");
        let mut out = Vec::new();
        lints::ra002_buffer_race(&input, &order, &mut oracle, &mut out);
        lints::ra003_oversubscription(&input, &config, &mut out);
        lints::ra004_dead_transfer(&input, &mut out);
        lints::ra005_degraded_soundness(&input, &mut out);
        best_subset = best_subset.min(t0.elapsed().as_secs_f64());
    }
    let ratio = best_full / best_subset;
    println!(
        "lint sweep ({} ranks, {} tasks): 8-lint {:.2}ms, 5-lint subset {:.2}ms, \
         ratio {ratio:.2}x",
        nodes * g,
        dag.len(),
        best_full * 1e3,
        best_subset * 1e3,
    );
    if ratio > 2.0 {
        failures.push(format!(
            "8-lint sweep is {ratio:.2}x the 5-lint subset (budget 2.0x)"
        ));
    }

    // Guard 2 + 3: the seed suite lints clean through the compiler gate,
    // and the certificate floor holds against the engine.
    let compiler = Compiler::new();
    for spec in [
        rescc_algos::hm_allgather(2, 8),
        rescc_algos::ring_allreduce(16),
        rescc_algos::dbtree_allreduce(16),
    ] {
        let topo = Topology::a100(2, 8);
        let plan = match compiler.compile_spec(&spec, &topo) {
            Ok(p) => p,
            Err(e) => {
                failures.push(format!("{}: compile failed: {e}", spec.name()));
                continue;
            }
        };
        if !plan.diagnostics.is_clean() {
            failures.push(format!(
                "{}: seed plan not clean:\n{}",
                spec.name(),
                plan.diagnostics.render_human()
            ));
            continue;
        }
        let floor = match plan.makespan_floor_ns(16 * MB, MB) {
            Some(f) => f,
            None => {
                failures.push(format!("{}: no cost certificate on the plan", spec.name()));
                continue;
            }
        };
        match plan.run(16 * MB, MB) {
            Ok(report) if report.undercuts_floor(floor) => failures.push(format!(
                "{}: simulated {:.0}ns undercuts certified floor {floor:.0}ns",
                spec.name(),
                report.completion_ns,
            )),
            Ok(report) => println!(
                "{}: certified floor {:.1}us holds (sim {:.1}us)",
                spec.name(),
                floor / 1e3,
                report.completion_ns / 1e3,
            ),
            Err(e) => failures.push(format!("{}: run failed: {e}", spec.name())),
        }
    }

    if failures.is_empty() {
        println!("lint-smoke: all guards passed");
    } else {
        for f in &failures {
            eprintln!("lint-smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
