//! Concurrent plan-service benchmark: hit-path scaling vs the old
//! single-mutex cache, mixed hot/cold traffic under a byte budget, and
//! singleflight dedup races. Writes `BENCH_service.json`.

fn main() {
    rescc_bench::experiments::service::run();
}
