//! Regenerates the paper's table3 (see `rescc_bench::experiments::table3`).

fn main() {
    rescc_bench::experiments::table3::run();
}
