//! Regenerates the component-ablation matrix (beyond the paper's figures).

fn main() {
    rescc_bench::experiments::ablation::run();
}
