//! Regenerates the paper's table1 (see `rescc_bench::experiments::table1`).

fn main() {
    rescc_bench::experiments::table1::run();
}
