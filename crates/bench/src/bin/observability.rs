//! Standalone runner for the observability overhead experiment.

fn main() {
    rescc_bench::experiments::observability::run();
}
