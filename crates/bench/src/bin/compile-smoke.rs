//! CI smoke gate for the compile-pipeline rearchitecture.
//!
//! Fails (nonzero exit) if either regression guard trips:
//!
//! 1. the flat CSR scheduler must beat the reference (pre-rearchitecture)
//!    scheduler (`parallel_speedup > 1.0`) while staying byte-identical;
//! 2. a delta recompile after a single masked NVLink channel must take the
//!    splice path and beat a full recompile, and an unchanged-mask delta
//!    must return the cached plan byte-for-byte.
//!
//! Sized for CI: 128 emulated GPUs, a few hundred milliseconds end to end.

use rescc_algos::{hm_allreduce, nccl_rings_allgather};
use rescc_core::Compiler;
use rescc_ir::DepDag;
use rescc_sched::{hpds_reference, hpds_with_threads};
use rescc_topology::{Rank, Topology, TopologyHealth};
use std::time::Instant;

fn main() {
    let mut failures = Vec::new();
    let (nodes, g) = (16u32, 8u32);
    let topo = Topology::a100(nodes, g);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Guard 1: scheduler rearchitecture. Best-of-3 on both sides to shrug
    // off CI timer jitter.
    let spec = hm_allreduce(nodes, g);
    let dag = DepDag::build(&spec, &topo).expect("smoke dag");
    let mut best_ref = f64::MAX;
    let mut best_flat = f64::MAX;
    let mut identical = true;
    for _ in 0..3 {
        let t0 = Instant::now();
        let reference = hpds_reference(&dag);
        best_ref = best_ref.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let flat = hpds_with_threads(&dag, threads);
        best_flat = best_flat.min(t0.elapsed().as_secs_f64());
        identical &= reference == flat;
    }
    let parallel_speedup = best_ref / best_flat;
    println!(
        "scheduler: reference {:.2}ms, flat {:.2}ms ({threads} threads), \
         parallel_speedup {parallel_speedup:.2}x, byte-identical {identical}",
        best_ref * 1e3,
        best_flat * 1e3,
    );
    if parallel_speedup <= 1.0 {
        failures.push(format!(
            "flat scheduler is not faster than the reference \
             (parallel_speedup {parallel_speedup:.3} <= 1.0)"
        ));
    }
    if !identical {
        failures.push("flat scheduler output diverged from the reference".into());
    }

    // Guard 2: delta recompile. The 2-ring workload leaves routing slack,
    // so a single dead channel must splice, not reschedule.
    let compiler = Compiler::new().with_threads(threads);
    let delta_spec = nccl_rings_allgather(nodes, g, 2);
    let plan = compiler
        .compile_spec(&delta_spec, &topo)
        .expect("smoke base compile");
    let mut health = TopologyHealth::default();
    health.mask(topo.pair_chan(Rank::new(8), Rank::new(9)));

    let t0 = Instant::now();
    let delta = compiler
        .recompile_delta(&plan, &health)
        .expect("smoke delta recompile");
    let delta_s = t0.elapsed().as_secs_f64();
    let spliced = delta.timings.lowering.is_zero();

    let degraded = topo.clone().with_health(health);
    let t0 = Instant::now();
    compiler
        .compile_spec(&delta_spec, &degraded)
        .expect("smoke full degraded compile");
    let full_s = t0.elapsed().as_secs_f64();
    let delta_speedup = full_s / delta_s;
    println!(
        "delta recompile: full {:.2}ms, delta {:.2}ms, \
         delta_speedup {delta_speedup:.2}x, spliced {spliced}",
        full_s * 1e3,
        delta_s * 1e3,
    );
    if !spliced {
        failures.push("delta recompile fell back to a full reschedule".into());
    }
    if delta_speedup <= 1.0 {
        failures.push(format!(
            "delta recompile is not faster than a full recompile \
             (delta_speedup {delta_speedup:.3} <= 1.0)"
        ));
    }

    let unchanged = compiler
        .recompile_delta(&plan, plan.topo.health())
        .expect("smoke identity recompile");
    if !unchanged.semantic_eq(&plan) {
        failures.push("unchanged-mask delta recompile is not byte-equivalent".into());
    } else {
        println!("identity delta recompile: byte-equivalent");
    }

    if failures.is_empty() {
        println!("compile-smoke: all guards passed");
    } else {
        for f in &failures {
            eprintln!("compile-smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
