//! Regenerates the paper's figure7 (see `rescc_bench::experiments::figure7`).

fn main() {
    rescc_bench::experiments::figure7::run();
}
