//! Runs every table/figure reproduction in sequence (the full §5
//! evaluation). Expect several minutes of wall-clock time in release mode.

use rescc_bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    ex::table1::run();
    ex::figure2::run();
    ex::figure3::run();
    ex::figure4::run();
    ex::figure6::run();
    ex::figure7::run();
    ex::figure8::run();
    ex::figure9::run();
    ex::figure10::run();
    ex::figure11::run();
    ex::table3::run();
    ex::figure12::run();
    ex::figure13::run();
    ex::ablation::run();
    ex::analytic::run();
    ex::recovery::run();
    ex::chaos::run();
    ex::simbench::run();
    ex::service::run();
    ex::observability::run();
    ex::analyze::run();
    println!(
        "\nreproduce-all finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
