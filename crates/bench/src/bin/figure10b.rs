//! Regenerates Figure 10(b): HPDS vs round-robin.

fn main() {
    rescc_bench::experiments::figure10::run_b();
}
