//! CI smoke gate for the partial-progress recovery stack.
//!
//! Fails (nonzero exit) if any robustness guard trips:
//!
//! 1. a permanent NVLink kill at 60% of a 256 MB AllReduce must recover
//!    via **frontier resume** (not restart) with validated data, and the
//!    resumed attempt must cost under half of the restart-from-zero
//!    counterfactual on the same degraded plan;
//! 2. restoring the channel must **heal**: the mask drops and the next
//!    collective fails back to the healthy-fingerprint plan from the
//!    cache, with no retries and no recompiles;
//! 3. the per-attempt recovery **journal** must describe the same history
//!    as the counters.
//!
//! Sized for CI: one 2×4 A100 cluster, a few seconds end to end.

use rescc_backends::{Communicator, RecoveryAction};
use rescc_core::Compiler;
use rescc_sim::{FaultTimeline, SimConfig};
use rescc_topology::{Rank, Topology};

const MB: u64 = 1 << 20;

fn main() {
    let mut failures = Vec::new();
    let topo = Topology::a100(2, 4);
    let buffer = 256 * MB;

    let healthy = Communicator::new(topo.clone())
        .all_reduce(buffer)
        .expect("smoke healthy baseline");
    let healthy_ns = healthy.sim.completion_ns;
    let healthy_fp = {
        // Fingerprint of the healthy plan, via an engaged but fault-free
        // watchdog run.
        let mut comm = Communicator::new(topo.clone())
            .with_faults(FaultTimeline::new().straggler(0, 0.0, 1.0, 1.0));
        comm.all_reduce(buffer)
            .expect("smoke healthy fingerprint")
            .recovery
            .expect("watchdog engaged")
            .plan_fingerprint
    };

    // Guard 1: frontier resume beats restart-from-zero.
    let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
    let kill_at = 0.6 * healthy_ns;
    let mut comm = Communicator::new(topo.clone())
        .with_validation()
        .with_faults(FaultTimeline::new().kill(chan, kill_at));
    let rep = comm.all_reduce(buffer).expect("smoke kill run");
    let rec = rep.recovery.clone().expect("kill engages the watchdog");
    if rep.sim.data_valid != Some(true) {
        failures.push("recovered run did not validate".to_string());
    }
    if rec.resumes < 1 {
        failures.push(format!(
            "late kill restarted instead of resuming (resumes {})",
            rec.resumes
        ));
    }
    let resume_ns = rep.sim.completion_ns;
    let degraded = topo.clone().with_health(comm.health().clone());
    let restart_ns = Compiler::new()
        .compile_spec(&rescc_algos::hm_allreduce(2, 4), &degraded)
        .expect("smoke degraded compile")
        .run_with(buffer, MB, &SimConfig::default().without_validation())
        .expect("smoke restart run")
        .completion_ns;
    let ratio = resume_ns / restart_ns;
    println!(
        "resume: kill at {:.2}ms (60% of healthy {:.2}ms), resumed attempt \
         {:.2}ms vs restart {:.2}ms, ratio {ratio:.2}x, resumes {}, \
         recompiles {}",
        kill_at / 1e6,
        healthy_ns / 1e6,
        resume_ns / 1e6,
        restart_ns / 1e6,
        rec.resumes,
        rec.recompiles,
    );
    if ratio >= 0.5 {
        failures.push(format!(
            "resume is not under half the restart cost (ratio {ratio:.3} >= 0.5)"
        ));
    }

    // Guard 3 (on the kill run's stats): journal consistency.
    let count = |a: RecoveryAction| rec.journal.iter().filter(|e| e.action == a).count() as u32;
    if rec.journal.len() as u32 != rec.retries + rec.recompiles + rec.heals {
        failures.push(format!(
            "journal has {} entries for {} retries + {} recompiles + {} heals",
            rec.journal.len(),
            rec.retries,
            rec.recompiles,
            rec.heals
        ));
    }
    if count(RecoveryAction::DeltaRecompile) + count(RecoveryAction::FullRecompile)
        != rec.recompiles
    {
        failures.push("journal recompile entries do not match the counter".into());
    }
    if rec
        .journal
        .iter()
        .any(|e| e.at_ns < 0.0 || e.cause.is_empty())
    {
        failures.push("journal entry without a sim instant or a cause".into());
    }
    println!(
        "journal: {} entries, first: attempt {} \"{}\" at {:.2}ms -> {}",
        rec.journal.len(),
        rec.journal[0].attempt,
        rec.journal[0].cause,
        rec.journal[0].at_ns / 1e6,
        rec.journal[0].action.as_str(),
    );

    // Guard 2: healing fails back to the healthy plan.
    comm.set_faults(FaultTimeline::new());
    let healed = comm.all_reduce(buffer).expect("smoke healed run");
    let hrec = healed.recovery.clone().expect("watchdog stays engaged");
    println!(
        "heal: heals {}, retries {}, recompiles {}, fingerprint restored {}",
        hrec.heals,
        hrec.retries,
        hrec.recompiles,
        hrec.plan_fingerprint == healthy_fp,
    );
    if hrec.heals != 1 {
        failures.push(format!("expected exactly one heal, got {}", hrec.heals));
    }
    if hrec.retries != 0 || hrec.recompiles != 0 {
        failures.push("healed run retried or recompiled".into());
    }
    if hrec.plan_fingerprint != healthy_fp {
        failures.push("healed run did not fail back to the healthy plan".into());
    }
    if healed.sim.data_valid != Some(true) {
        failures.push("healed run did not validate".into());
    }
    if !comm.health().is_empty() {
        failures.push("health mask not empty after healing".into());
    }

    if failures.is_empty() {
        println!("recovery-smoke: all guards passed");
    } else {
        for f in &failures {
            eprintln!("recovery-smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
