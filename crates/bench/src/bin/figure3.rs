//! Regenerates the paper's figure3 (see `rescc_bench::experiments::figure3`).

fn main() {
    rescc_bench::experiments::figure3::run();
}
