//! CI gate for the plan service: asserts singleflight dedup (exactly one
//! compile per racing round) always, and hit-path scaling >1.5x from
//! 1→4 threads when the runner has ≥4 cores.

fn main() {
    rescc_bench::experiments::service::smoke();
    println!("service-smoke: all gates passed");
}
