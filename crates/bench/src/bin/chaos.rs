//! Chaos-campaign harness (not a paper figure): seeded randomized
//! multi-fault timelines across every collective × Table-3 topology, plus
//! resume-vs-restart economics for a late permanent kill. Writes
//! `BENCH_chaos.json`.

fn main() {
    rescc_bench::experiments::chaos::run();
}
