//! Regenerates the paper's figure11 (see `rescc_bench::experiments::figure11`).

fn main() {
    rescc_bench::experiments::figure11::run();
}
