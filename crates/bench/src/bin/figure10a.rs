//! Regenerates Figure 10(a): offline compile phase scalability.

fn main() {
    rescc_bench::experiments::figure10::run_a();
}
