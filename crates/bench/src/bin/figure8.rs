//! Regenerates the paper's figure8 (see `rescc_bench::experiments::figure8`).

fn main() {
    rescc_bench::experiments::figure8::run();
}
