//! Regenerates the paper's figure9 (see `rescc_bench::experiments::figure9`).

fn main() {
    rescc_bench::experiments::figure9::run();
}
