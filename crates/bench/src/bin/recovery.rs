//! Degraded-topology recovery experiment (not a paper figure): kill an
//! NVLink channel / a NIC mid-AllReduce and measure the watchdog's
//! mask-recompile-resume path. Writes `BENCH_recovery.json`.

fn main() {
    rescc_bench::experiments::recovery::run();
}
