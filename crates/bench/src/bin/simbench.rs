//! Standalone runner for the simulator wall-time benchmark.

fn main() {
    rescc_bench::experiments::simbench::run();
}
