//! Standalone runner for the static-analysis cost experiment
//! (`BENCH_analyze.json`).

fn main() {
    rescc_bench::experiments::analyze::run();
}
