//! Regenerates the paper's figure13 (see `rescc_bench::experiments::figure13`).

fn main() {
    rescc_bench::experiments::figure13::run();
}
