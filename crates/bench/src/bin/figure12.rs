//! Regenerates the paper's figure12 (see `rescc_bench::experiments::figure12`).

fn main() {
    rescc_bench::experiments::figure12::run();
}
