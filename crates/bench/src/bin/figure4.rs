//! Regenerates the paper's figure4 (see `rescc_bench::experiments::figure4`).

fn main() {
    rescc_bench::experiments::figure4::run();
}
