//! `rescc-profile` — export one collective run as a Chrome trace.
//!
//! Compiles an algorithm for a Table-3 topology, simulates it with the
//! transfer trace and bubble attribution enabled, and merges everything
//! the observability stack produces — transfer events, classified TB
//! idle intervals, fault records, compiler phase spans, per-link
//! activity counters and (optionally) watchdog recovery spans from a
//! fault-injected `Communicator` run — into one trace-event JSON file
//! loadable in `chrome://tracing` or Perfetto.
//!
//! Track layout: one process per rank with one thread per TB (transfers
//! on the sender *and* receiver TB tracks, bubbles on the waiting TB's
//! track), one `pipeline` process for compile-phase wall-time spans, one
//! `links` process carrying per-link active-fraction counters and fault
//! instants, and one `watchdog demo` process for recovery spans.
//!
//! ```text
//! rescc-profile [--topo NxG] [--algo hm-allreduce|hm-allgather|taccl-allgather]
//!               [--buffer-mb N] [--fault] [--no-recovery] [--no-check]
//!               [--out FILE]
//! ```

use rescc_algos::{hm_allgather, hm_allreduce, taccl_like_allgather};
use rescc_alloc::{Direction, TbAllocation};
use rescc_backends::Communicator;
use rescc_core::Compiler;
use rescc_obs::{bubble_span, ArgValue, ChromeTrace, ObsStats, SpanCategory};
use rescc_sim::{BubbleCause, FaultTimeline, SimConfig};
use rescc_topology::{Rank, Topology};

struct Args {
    nodes: u32,
    gpus: u32,
    algo: String,
    buffer_mb: u64,
    fault: bool,
    recovery: bool,
    check: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: rescc-profile [--topo NxG] [--algo hm-allreduce|hm-allgather|taccl-allgather]\n\
         \x20                    [--buffer-mb N] [--fault] [--no-recovery] [--no-check] [--out FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 2,
        gpus: 4,
        algo: "hm-allreduce".into(),
        buffer_mb: 128,
        fault: true,
        recovery: true,
        check: true,
        out: "rescc-profile-trace.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--topo" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (n, g) = v.split_once('x').unwrap_or_else(|| usage());
                args.nodes = n.parse().unwrap_or_else(|_| usage());
                args.gpus = g.parse().unwrap_or_else(|_| usage());
            }
            "--algo" => args.algo = it.next().unwrap_or_else(|| usage()),
            "--buffer-mb" => {
                args.buffer_mb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--fault" => args.fault = true,
            "--no-fault" => args.fault = false,
            "--no-recovery" => args.recovery = false,
            "--no-check" => args.check = false,
            _ => usage(),
        }
    }
    args
}

/// The TB on `rank` that executes side `dir` of `task` for micro-batch
/// `mb`, per the compiled allocation.
fn tb_of(alloc: &TbAllocation, rank: u32, task: u32, dir: Direction, mb: u32) -> Option<u32> {
    alloc.per_rank.get(rank as usize).and_then(|r| {
        r.tbs
            .iter()
            .position(|tb| {
                tb.owns_micro_batch(mb) && tb.slots.iter().any(|s| s.task.0 == task && s.dir == dir)
            })
            .map(|i| i as u32)
    })
}

const MB: u64 = 1 << 20;

fn main() {
    let args = parse_args();
    let topo = Topology::a100(args.nodes, args.gpus);
    let spec = match args.algo.as_str() {
        "hm-allreduce" => hm_allreduce(args.nodes, args.gpus),
        "hm-allgather" => hm_allgather(args.nodes, args.gpus),
        "taccl-allgather" => taccl_like_allgather(args.nodes, args.gpus),
        other => {
            eprintln!("unknown algorithm '{other}'");
            usage()
        }
    };
    let buffer = args.buffer_mb * MB;
    let n_ranks = topo.n_ranks();

    // Compile (phase spans) and dry-run to scale the fault schedule.
    let compiler = Compiler::new();
    let plan = compiler
        .compile_spec(&spec, &topo)
        .unwrap_or_else(|e| panic!("compile failed: {e}"));
    let mut stats = ObsStats::default();
    stats.add_compile(&plan.timings, "compiler", 0.0);

    let base_cfg = SimConfig::default()
        .without_validation()
        .with_trace()
        .with_observability();
    let dry = plan
        .run_with(buffer, MB, &base_cfg)
        .unwrap_or_else(|e| panic!("dry run failed: {e}"));
    let completion = dry.completion_ns;

    // The profiled run: optionally brown out one NVLink channel
    // mid-collective so the trace carries fault instants and the
    // contention bubble they cause. (A full LinkDown would abort the raw
    // engine — retries are the Communicator's job, demoed below.)
    let cfg = if args.fault {
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        base_cfg.clone().with_faults(FaultTimeline::new().brownout(
            chan,
            0.3 * completion,
            0.2,
            0.3 * completion,
        ))
    } else {
        base_cfg.clone()
    };
    let sim = plan
        .run_with(buffer, MB, &cfg)
        .unwrap_or_else(|e| panic!("profiled run failed: {e}"));
    let obs = sim.obs.as_ref().expect("observability enabled");

    let mut trace = ChromeTrace::new();
    let pid_pipeline = 0u32;
    let pid_rank = |r: u32| r + 1;
    let pid_links = n_ranks + 1;
    let pid_watchdog = n_ranks + 2;

    // Pipeline track: compile-phase wall-time spans.
    trace.name_process(pid_pipeline, "pipeline (wall time)");
    trace.name_thread(pid_pipeline, 0, "compiler");
    for s in &stats.spans {
        trace.add_complete(
            pid_pipeline,
            0,
            &s.name,
            s.category.as_str(),
            s.start_ns,
            s.dur_ns,
            vec![("domain".into(), s.domain.as_str().into())],
        );
    }

    // Rank/TB tracks: transfers on both endpoint TBs, bubbles on theirs.
    for r in 0..n_ranks {
        trace.name_process(pid_rank(r), &format!("rank {r}"));
        for (t, _) in plan.alloc.per_rank[r as usize].tbs.iter().enumerate() {
            trace.name_thread(pid_rank(r), t as u32, &format!("tb {t}"));
        }
    }
    for ev in &sim.trace {
        let dur = ev.end_ns - ev.start_ns;
        let args_of = |peer: String| {
            vec![
                ("peer".into(), ArgValue::Str(peer)),
                ("bytes".into(), (ev.bytes as f64).into()),
                ("drain_start_ns".into(), ev.drain_start_ns.into()),
                ("task".into(), (ev.task as f64).into()),
                ("mb".into(), (ev.mb as f64).into()),
            ]
        };
        if let Some(tb) = tb_of(&plan.alloc, ev.src, ev.task, Direction::Send, ev.mb) {
            trace.add_complete(
                pid_rank(ev.src),
                tb,
                &format!("send t{} mb{}", ev.task, ev.mb),
                "transfer",
                ev.start_ns,
                dur,
                args_of(format!("-> r{}", ev.dst)),
            );
        }
        if let Some(tb) = tb_of(&plan.alloc, ev.dst, ev.task, Direction::Recv, ev.mb) {
            trace.add_complete(
                pid_rank(ev.dst),
                tb,
                &format!("recv t{} mb{}", ev.task, ev.mb),
                "transfer",
                ev.start_ns,
                dur,
                args_of(format!("<- r{}", ev.src)),
            );
        }
    }
    for b in &obs.bubbles {
        let s = bubble_span(b);
        trace.add_complete(
            pid_rank(b.rank),
            b.tb,
            &s.name,
            s.category.as_str(),
            s.start_ns,
            s.dur_ns,
            vec![
                ("task".into(), (b.task as f64).into()),
                ("mb".into(), (b.mb as f64).into()),
            ],
        );
    }

    // Link track: active-fraction counters for the hottest links, fault
    // instants for every recorded transition.
    trace.name_process(pid_links, "links");
    let mut hottest: Vec<_> = sim.resource_stats.iter().collect();
    hottest.sort_by(|a, b| b.active_ns.total_cmp(&a.active_ns));
    let hot: Vec<u32> = hottest.iter().take(4).map(|r| r.resource).collect();
    if hottest.len() > 4 {
        println!(
            "note: counter tracks limited to the 4 hottest of {} links",
            hottest.len()
        );
    }
    for lt in obs
        .link_timelines
        .iter()
        .filter(|l| hot.contains(&l.resource))
    {
        let name = format!("link {} active", lt.resource);
        for (k, active) in lt.active.iter().enumerate() {
            let frac = if obs.bucket_ns > 0.0 {
                active / obs.bucket_ns
            } else {
                0.0
            };
            trace.add_counter(
                pid_links,
                &name,
                k as f64 * obs.bucket_ns,
                &[("frac", frac)],
            );
        }
    }
    for fr in &sim.faults {
        trace.add_instant(
            pid_links,
            0,
            &format!("{:?}", fr.fault),
            "fault",
            fr.at_ns.max(0.0),
            vec![],
        );
    }

    // Watchdog demo: a fault-injected Communicator run contributes
    // recovery spans (retries, backoff, mask+recompile) on its own track.
    if args.recovery {
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let mut comm = Communicator::new(topo.clone())
            .with_observability()
            .with_faults(FaultTimeline::new().kill(chan, 0.35 * completion));
        match comm.all_reduce(buffer) {
            Err(e) => eprintln!("watchdog demo failed (skipping track): {e}"),
            Ok(rep) => {
                trace.name_process(pid_watchdog, "watchdog demo (sim time)");
                trace.name_thread(pid_watchdog, 0, "recovery");
                trace.name_thread(pid_watchdog, 1, "compiler");
                trace.name_thread(pid_watchdog, 2, "journal");
                let demo = rep.obs.as_ref().expect("observability enabled");
                for s in &demo.spans {
                    let tid = match s.category {
                        SpanCategory::Recovery => 0,
                        _ => 1,
                    };
                    trace.add_complete(
                        pid_watchdog,
                        tid,
                        &s.name,
                        s.category.as_str(),
                        s.start_ns,
                        s.dur_ns,
                        vec![("domain".into(), s.domain.as_str().into())],
                    );
                }
                // Per-attempt recovery journal: one instant per watchdog
                // decision, named by the action taken, stamped at the sim
                // time the triggering fault was observed.
                if let Some(rec) = rep.recovery.as_ref() {
                    for ev in &rec.journal {
                        trace.add_instant(
                            pid_watchdog,
                            2,
                            ev.action.as_str(),
                            "recovery",
                            ev.at_ns.max(0.0),
                            vec![
                                ("attempt".into(), (ev.attempt as f64).into()),
                                ("cause".into(), ArgValue::Str(ev.cause.clone())),
                            ],
                        );
                    }
                }
            }
        }
    }

    let json = trace.to_json();
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));

    // Text summary.
    println!(
        "profiled {} on a100({}, {}), {} MB: completion {:.3} ms, {} transfers, {} bubbles",
        spec.name(),
        args.nodes,
        args.gpus,
        args.buffer_mb,
        sim.completion_ns / 1e6,
        sim.trace.len(),
        obs.bubbles.len(),
    );
    let totals = obs.cause_totals_ns();
    for (cause, ns) in BubbleCause::ALL.iter().zip(totals.iter()) {
        println!("  {:<16} {:>10.3} ms", cause.as_str(), ns / 1e6);
    }
    println!("wrote {} ({} events)", args.out, trace.len());

    if args.check {
        match rescc_obs::validate_chrome_trace_str(&json) {
            Ok(s) => println!(
                "validated: {} events ({} spans, {} instants, {} counters) on {} tracks",
                s.total_events(),
                s.complete,
                s.instants,
                s.counters,
                s.tracks
            ),
            Err(e) => {
                eprintln!("emitted trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }
}
