//! Validates the paper's Eq. 3/5/6 analytic model against the simulator.

fn main() {
    rescc_bench::experiments::analytic::run();
}
