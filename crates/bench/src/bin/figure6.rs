//! Regenerates the paper's figure6 (see `rescc_bench::experiments::figure6`).

fn main() {
    rescc_bench::experiments::figure6::run();
}
