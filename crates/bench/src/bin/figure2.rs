//! Regenerates the paper's figure2 (see `rescc_bench::experiments::figure2`).

fn main() {
    rescc_bench::experiments::figure2::run();
}
