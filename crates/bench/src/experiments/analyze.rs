//! **Analyze** — cost of the certification pass (RA001–RA008) at scale.
//!
//! Not a paper figure: this experiment prices the static-analysis layer
//! so the 8-lint sweep stays an always-on compile phase rather than an
//! opt-in tool. For 256 / 1,024 / 4,096 emulated GPUs (hm AllReduce,
//! the largest seed workload) it measures, per scale:
//!
//! * the shared happens-before oracle's build cost (combined-order CSR +
//!   topological intervals + chain labels) and its query counters —
//!   how many `reaches` queries the interval/chain layers absorbed
//!   before the exact-DFS fallback;
//! * each lint's standalone wall time against the shared oracle;
//! * the full 8-lint `analyze()` sweep vs the pre-certification 5-lint
//!   subset (RA001–RA005 under today's implementations). The sweep must
//!   stay within **2×** of the subset at 1,024 ranks — the acceptance
//!   bound that keeps the oracle honest: RA006/RA007 ride on shared
//!   structures instead of rebuilding their own;
//! * the incremental path: a post-fault delta recompile's sanitize phase
//!   (`analyze_rerouted` splice) vs the full compile's sanitize phase.
//!
//! It also cross-checks the RA007 cost certificate against the engine on
//! Table-3 seed plans: no simulated run may finish below its plan's
//! certified makespan floor. Machine-readable results go to
//! `BENCH_analyze.json`.

use crate::experiments::observability::median_min_max;
use crate::{print_table, MB};
use rescc_algos::{hm_allreduce, ring_allgather};
use rescc_alloc::TbAllocation;
use rescc_analyze::{
    analyze, lints, AnalysisConfig, AnalysisInput, CombinedOrder, HbOracle, OracleStats,
};
use rescc_core::Compiler;
use rescc_ir::DepDag;
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_sched::hpds;
use rescc_topology::{Rank, Topology, TopologyHealth};
use std::time::Instant;

/// Full-sweep-to-subset budget at the acceptance scale (1,024 ranks).
const SWEEP_BUDGET: f64 = 2.0;

struct Scale {
    nodes: u32,
    gpus: u32,
    iters: usize,
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

/// Per-scale measurement: oracle build, per-lint, full sweep, subset.
struct Sample {
    order_s: f64,
    oracle_s: f64,
    lint_s: [f64; 6], // RA002, RA003, RA004, RA005, RA006, RA007
    full_s: f64,
    subset_s: f64,
    stats: OracleStats,
}

fn measure(input: &AnalysisInput, config: &AnalysisConfig) -> Sample {
    let chunk_of: Vec<u32> = input.dag.tasks().iter().map(|t| t.chunk.0).collect();
    let (order_s, order) = time(|| CombinedOrder::build(input.dag, input.program));
    let (oracle_s, oracle) = time(|| HbOracle::build(&order, &chunk_of));
    let mut oracle = oracle.expect("seed plans are acyclic");

    let mut out = Vec::new();
    let mut lint_s = [0.0f64; 6];
    lint_s[0] = time(|| lints::ra002_buffer_race(input, &order, &mut oracle, &mut out)).0;
    lint_s[1] = time(|| lints::ra003_oversubscription(input, config, &mut out)).0;
    lint_s[2] = time(|| lints::ra004_dead_transfer(input, &mut out)).0;
    lint_s[3] = time(|| lints::ra005_degraded_soundness(input, &mut out)).0;
    lint_s[4] = time(|| lints::ra006_lifetime_overlap(input, &order, &mut oracle, &mut out)).0;
    lint_s[5] = time(|| lints::ra007_cost_feasibility(input, &mut out)).0;
    assert!(out.is_empty(), "seed workload must lint clean");
    let stats = oracle.stats();

    // The pre-certification subset: everything the pass ran before
    // RA006–RA008 existed, under today's implementations (shared order +
    // oracle + RA001 path included — they were already paid for).
    let (subset_s, ()) = time(|| {
        let chunk_of: Vec<u32> = input.dag.tasks().iter().map(|t| t.chunk.0).collect();
        let order = CombinedOrder::build(input.dag, input.program);
        let mut oracle = HbOracle::build(&order, &chunk_of).expect("acyclic");
        let mut out = Vec::new();
        lints::ra002_buffer_race(input, &order, &mut oracle, &mut out);
        lints::ra003_oversubscription(input, config, &mut out);
        lints::ra004_dead_transfer(input, &mut out);
        lints::ra005_degraded_soundness(input, &mut out);
        assert!(out.is_empty());
    });
    let (full_s, report) = time(|| analyze(input, config));
    assert!(report.is_clean() && report.certificate().is_some());

    Sample {
        order_s,
        oracle_s,
        lint_s,
        full_s,
        subset_s,
        stats,
    }
}

/// Run the analyze-cost experiment and write `BENCH_analyze.json`.
pub fn run() {
    let scales = [
        Scale {
            nodes: 32,
            gpus: 8,
            iters: 5,
        },
        Scale {
            nodes: 128,
            gpus: 8,
            iters: 3,
        },
        Scale {
            nodes: 512,
            gpus: 8,
            iters: 1,
        },
    ];
    let config = AnalysisConfig::default();
    let mut rows = Vec::new();
    let mut json_scales = Vec::new();

    for sc in &scales {
        let ranks = sc.nodes * sc.gpus;
        let topo = Topology::a100(sc.nodes, sc.gpus);
        let spec = hm_allreduce(sc.nodes, sc.gpus);
        let dag = DepDag::build(&spec, &topo).expect("bench dag");
        let schedule = hpds(&dag);
        let alloc = TbAllocation::connection_based(&dag, &schedule, 1);
        let program = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        let input = AnalysisInput {
            spec: &spec,
            dag: &dag,
            schedule: &schedule,
            alloc: &alloc,
            program: &program,
            topo: &topo,
        };

        let mut full = Vec::with_capacity(sc.iters);
        let mut subset = Vec::with_capacity(sc.iters);
        let mut last = None;
        for _ in 0..sc.iters {
            let s = measure(&input, &config);
            full.push(s.full_s);
            subset.push(s.subset_s);
            last = Some(s);
        }
        let s = last.expect("iters >= 1");
        let (full_med, full_min, full_max) = median_min_max(&mut full);
        let (subset_med, ..) = median_min_max(&mut subset);
        let ratio = full_med / subset_med;
        if ranks == 1024 {
            assert!(
                ratio <= SWEEP_BUDGET,
                "8-lint sweep is {ratio:.2}x the 5-lint subset at 1,024 ranks \
                 (budget {SWEEP_BUDGET}x)"
            );
        }

        let lint_names = ["RA002", "RA003", "RA004", "RA005", "RA006", "RA007"];
        rows.push(vec![
            format!("{ranks}"),
            format!("{}", dag.len()),
            format!("{:.1}ms", (s.order_s + s.oracle_s) * 1e3),
            format!("{:.1}ms", full_med * 1e3),
            format!("{:.1}ms", subset_med * 1e3),
            format!("{ratio:.2}x"),
            format!("{}", s.stats.queries),
            format!("{}", s.stats.dfs_fallbacks),
        ]);
        let lints_json: Vec<String> = lint_names
            .iter()
            .zip(s.lint_s.iter())
            .map(|(n, t)| format!("\"{n}\": {:.3}", t * 1e3))
            .collect();
        json_scales.push(format!(
            "    {{\"ranks\": {ranks}, \"tasks\": {}, \"iters\": {}, \
             \"order_build_ms\": {:.3}, \"oracle_build_ms\": {:.3}, \
             \"lint_ms\": {{{}}}, \
             \"full_sweep_ms\": {{\"median\": {:.3}, \"min\": {:.3}, \"max\": {:.3}}}, \
             \"subset5_ms\": {:.3}, \"sweep_ratio\": {ratio:.3}, \
             \"oracle\": {{\"queries\": {}, \"dfs_fallbacks\": {}, \"chains\": {}}}}}",
            dag.len(),
            sc.iters,
            s.order_s * 1e3,
            s.oracle_s * 1e3,
            lints_json.join(", "),
            full_med * 1e3,
            full_min * 1e3,
            full_max * 1e3,
            subset_med * 1e3,
            s.stats.queries,
            s.stats.dfs_fallbacks,
            s.stats.n_chains,
        ));
    }

    print_table(
        "Static analysis cost: shared-oracle 8-lint sweep (hm AllReduce)",
        &[
            "ranks",
            "tasks",
            "oracle",
            "8-lint sweep",
            "5-lint subset",
            "ratio",
            "hb queries",
            "dfs fallbacks",
        ],
        &rows,
    );

    // Incremental path: sanitize cost of a post-fault delta recompile
    // (analyze_rerouted splice) vs the full compile's sanitize phase.
    let (nodes, g) = (128u32, 8u32);
    let topo = Topology::a100(nodes, g);
    let compiler = Compiler::new();
    let plan = compiler
        .compile_spec(&rescc_algos::nccl_rings_allgather(nodes, g, 2), &topo)
        .expect("incremental base compile");
    let mut health = TopologyHealth::default();
    health.mask(topo.pair_chan(Rank::new(8), Rank::new(9)));
    let delta = compiler
        .recompile_delta(&plan, &health)
        .expect("delta recompile");
    let full_sanitize_s = plan.timings.sanitize.as_secs_f64();
    let delta_sanitize_s = delta.timings.sanitize.as_secs_f64();
    let incr_ratio = delta_sanitize_s / full_sanitize_s.max(1e-12);
    println!(
        "incremental sanitize ({}x{} ranks, 1 dead channel): full {:.1}ms, \
         spliced {:.1}ms ({:.2}x)",
        nodes,
        g,
        full_sanitize_s * 1e3,
        delta_sanitize_s * 1e3,
        incr_ratio,
    );
    assert!(
        delta_sanitize_s <= full_sanitize_s,
        "splice re-analysis must not cost more than a full sweep"
    );

    // Certificate soundness against the engine: no simulated run may
    // finish below its plan's certified makespan floor.
    let mut undercut_checks = 0u32;
    for (spec, topo) in [
        (hm_allreduce(2, 4), Topology::a100(2, 4)),
        (ring_allgather(8), Topology::a100(1, 8)),
        (rescc_algos::dbtree_allreduce(8), Topology::a100(2, 4)),
    ] {
        let plan = compiler
            .compile_spec(&spec, &topo)
            .expect("certificate check compile");
        let floor = plan
            .makespan_floor_ns(16 * MB, MB)
            .expect("lint gate on: certificate present");
        let report = plan.run(16 * MB, MB).expect("certificate check run");
        assert!(
            !report.undercuts_floor(floor),
            "{} on {}: simulated {:.0}ns undercuts certified floor {floor:.0}ns",
            spec.name(),
            topo.name(),
            report.completion_ns,
        );
        undercut_checks += 1;
    }
    println!(
        "certificate floors hold on {undercut_checks} seed plans \
         (sim completion >= certified lower bound)."
    );

    let json = format!(
        "{{\n  \"workload\": \"hm_allreduce\",\n  \"scales\": [\n{}\n  ],\n  \
         \"sweep_budget\": {SWEEP_BUDGET},\n  \
         \"incremental\": {{\"ranks\": {}, \"full_sanitize_ms\": {:.3}, \
         \"delta_sanitize_ms\": {:.3}, \"ratio\": {incr_ratio:.4}}},\n  \
         \"certificate_undercut_checks\": {undercut_checks},\n  \
         \"certificate_undercuts\": 0\n}}\n",
        json_scales.join(",\n"),
        nodes * g,
        full_sanitize_s * 1e3,
        delta_sanitize_s * 1e3,
    );
    match std::fs::write("BENCH_analyze.json", &json) {
        Ok(()) => println!("wrote BENCH_analyze.json"),
        Err(e) => eprintln!("could not write BENCH_analyze.json: {e}"),
    }
}
