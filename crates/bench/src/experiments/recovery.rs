//! **Recovery** — degraded-topology recovery under injected faults.
//!
//! Not a paper figure: this experiment exercises the robustness layer
//! added on top of the reproduction. A 1 GB AllReduce on the 2×4 A100
//! cluster is run three times:
//!
//! * healthy baseline (no faults);
//! * one NVLink pair channel killed permanently mid-run — the
//!   [`rescc_backends::Communicator`] watchdog masks the channel,
//!   recompiles against the degraded topology (relay routing through a
//!   healthy peer), and resumes;
//! * one NIC TX direction killed mid-run — traffic fails over to a
//!   healthy sibling NIC on the same node.
//!
//! Each degraded run must still validate (`data_valid == Some(true)`),
//! recompile at least once against a topology whose plan fingerprint
//! differs from the healthy plan's, resume from the fault frontier
//! instead of restarting (strictly cheaper than the restart-from-zero
//! counterfactual on the same degraded plan), and finish in under 3x the
//! healthy completion time. A final heal phase restores the killed
//! channel and checks the communicator fails back to the healthy plan at
//! the next collective boundary. Machine-readable results go to
//! `BENCH_recovery.json`.

use crate::{print_table, GB};
use rescc_backends::Communicator;
use rescc_core::Compiler;
use rescc_sim::{FaultTimeline, SimConfig};
use rescc_topology::{Rank, Topology};

const MB: u64 = 1 << 20;

/// One fault scenario: a label plus the timeline to inject.
struct Scenario {
    name: &'static str,
    faults: FaultTimeline,
}

fn scenarios(topo: &Topology, healthy_ns: f64) -> Vec<Scenario> {
    // Kill mid-run: late enough that transfers are in flight, early
    // enough that most of the collective still runs degraded.
    let kill_at = 0.35 * healthy_ns;
    vec![
        Scenario {
            name: "NVLink chan 0->1 down",
            faults: FaultTimeline::new().kill(topo.pair_chan(Rank::new(0), Rank::new(1)), kill_at),
        },
        Scenario {
            name: "NIC0 tx down",
            faults: FaultTimeline::new().kill(topo.nic_tx(topo.nic_of(Rank::new(0))), kill_at),
        },
    ]
}

/// Run the recovery experiment and write `BENCH_recovery.json`.
pub fn run() {
    let buffer = GB;
    let topo = Topology::a100(2, 4);

    let healthy = Communicator::new(topo.clone())
        .with_validation()
        .all_reduce(buffer)
        .expect("recovery healthy baseline");
    let healthy_ns = healthy.sim.completion_ns;
    let healthy_fp = {
        // A fingerprint for the healthy plan, for comparison with the
        // degraded recompiles (obtained via an explicitly engaged but
        // fault-free watchdog run).
        let mut comm = Communicator::new(topo.clone())
            .with_faults(FaultTimeline::new().straggler(0, 0.0, 1.0, 1.0));
        comm.all_reduce(buffer)
            .expect("recovery healthy fingerprint")
            .recovery
            .expect("watchdog engaged")
            .plan_fingerprint
    };

    let mut rows = vec![vec![
        "healthy".to_string(),
        format!("{:.2}ms", healthy_ns / 1e6),
        "-".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "-".into(),
        "1.00x".into(),
        format!("{:?}", healthy.sim.data_valid),
    ]];
    let mut json_rows = Vec::new();

    for sc in scenarios(&topo, healthy_ns) {
        let mut comm = Communicator::new(topo.clone())
            .with_validation()
            .with_faults(sc.faults.clone());
        let rep = comm
            .all_reduce(buffer)
            .unwrap_or_else(|e| panic!("recovery scenario '{}' failed: {e}", sc.name));
        let rec = rep
            .recovery
            .clone()
            .expect("fault scenarios engage the watchdog");
        let total = rep.total_completion_ns();
        let slowdown = total / healthy_ns;
        assert_eq!(
            rep.sim.data_valid,
            Some(true),
            "scenario '{}' must still produce correct data",
            sc.name
        );
        assert!(
            rec.recompiles >= 1,
            "scenario '{}' must recompile against the masked topology",
            sc.name
        );
        assert!(
            rec.resumes >= 1,
            "scenario '{}' must resume from the fault frontier",
            sc.name
        );
        assert_ne!(
            rec.plan_fingerprint, healthy_fp,
            "scenario '{}': degraded plan must have a distinct fingerprint",
            sc.name
        );
        assert!(
            slowdown < 3.0,
            "scenario '{}': {slowdown:.2}x exceeds the 3x recovery budget",
            sc.name
        );
        // Restart-from-zero counterfactual: the degraded plan the
        // watchdog recompiled to, run in full. The resumed attempt only
        // ran the residual schedule, so it must be strictly cheaper.
        let resume_ns = rep.sim.completion_ns;
        let degraded = topo.clone().with_health(comm.health().clone());
        let restart_ns = Compiler::new()
            .compile_spec(&rescc_algos::hm_allreduce(2, 4), &degraded)
            .unwrap_or_else(|e| panic!("scenario '{}': degraded compile: {e}", sc.name))
            .run_with(buffer, MB, &SimConfig::default().without_validation())
            .unwrap_or_else(|e| panic!("scenario '{}': restart run: {e}", sc.name))
            .completion_ns;
        assert!(
            resume_ns < restart_ns,
            "scenario '{}': resuming ({resume_ns:.0}ns) must beat restarting \
             ({restart_ns:.0}ns)",
            sc.name
        );
        rows.push(vec![
            sc.name.to_string(),
            format!("{:.2}ms", total / 1e6),
            format!("{:.2}ms", rec.recovery_ns / 1e6),
            rec.retries.to_string(),
            rec.recompiles.to_string(),
            rec.resumes.to_string(),
            format!("{:.2}x", resume_ns / restart_ns),
            format!("{slowdown:.2}x"),
            format!("{:?}", rep.sim.data_valid),
        ]);
        let journal: Vec<String> = rec
            .journal
            .iter()
            .map(|e| {
                format!(
                    "{{\"attempt\": {}, \"cause\": \"{}\", \"at_ns\": {:.1}, \
                     \"action\": \"{}\"}}",
                    e.attempt,
                    e.cause,
                    e.at_ns,
                    e.action.as_str()
                )
            })
            .collect();
        json_rows.push(format!(
            "    {{\"scenario\": \"{}\", \"total_ns\": {:.1}, \
             \"recovery_ns\": {:.1}, \"retries\": {}, \"recompiles\": {}, \
             \"resumes\": {}, \"resume_ns\": {:.1}, \"restart_ns\": {:.1}, \
             \"resume_vs_restart\": {:.4}, \
             \"slowdown\": {:.4}, \"dead_resources\": {:?}, \
             \"plan_fingerprint\": {}, \"data_valid\": true, \
             \"journal\": [{}]}}",
            sc.name,
            total,
            rec.recovery_ns,
            rec.retries,
            rec.recompiles,
            rec.resumes,
            resume_ns,
            restart_ns,
            resume_ns / restart_ns,
            slowdown,
            rec.dead_resources,
            rec.plan_fingerprint,
            journal.join(", "),
        ));
    }

    print_table(
        "Recovery: 1GB AllReduce with a resource killed mid-run (2 servers x 4 GPUs)",
        &[
            "scenario",
            "completion",
            "recovery",
            "retries",
            "recompiles",
            "resumes",
            "res/rst",
            "slowdown",
            "data_valid",
        ],
        &rows,
    );
    println!(
        "the watchdog masks the dead resource, recompiles against the degraded \
         topology (distinct plan fingerprint), resumes from the fault frontier \
         (cheaper than restarting), and the collective still validates."
    );

    // Heal: restore the killed NVLink channel (an empty schedule no
    // longer declares it dead) — the next collective must un-mask it,
    // fail back to the healthy-fingerprint plan without recompiling, and
    // pay no residual sim-time penalty.
    let heal = {
        let mut comm = Communicator::new(topo.clone())
            .with_validation()
            .with_faults(FaultTimeline::new().kill(
                topo.pair_chan(Rank::new(0), Rank::new(1)),
                0.35 * healthy_ns,
            ));
        comm.all_reduce(buffer).expect("heal setup run");
        comm.set_faults(FaultTimeline::new());
        let healed = comm.all_reduce(buffer).expect("healed run");
        let rec = healed.recovery.clone().expect("watchdog stays engaged");
        assert_eq!(rec.heals, 1, "restoring the channel must heal the mask");
        assert_eq!(rec.retries, 0, "healed run must not retry");
        assert_eq!(rec.recompiles, 0, "healed plan comes from the cache");
        assert_eq!(
            rec.plan_fingerprint, healthy_fp,
            "healed run must fail back to the healthy plan"
        );
        assert_eq!(healed.sim.data_valid, Some(true));
        let latency_ns = healed.sim.completion_ns - healthy_ns;
        println!(
            "heal: channel restored -> mask dropped, healthy plan re-dispatched \
             from cache, heal latency {:.3}ms",
            latency_ns / 1e6
        );
        format!(
            "{{\"heals\": {}, \"heal_latency_ns\": {:.1}, \
             \"fingerprint_restored\": true}}",
            rec.heals, latency_ns
        )
    };

    let json = format!(
        "{{\n  \"buffer_bytes\": {buffer},\n  \"topology\": \"a100(2,4)\",\n  \
         \"healthy_ns\": {healthy_ns:.1},\n  \
         \"healthy_fingerprint\": {healthy_fp},\n  \"scenarios\": [\n{}\n  ],\n  \
         \"heal\": {heal}\n}}\n",
        json_rows.join(",\n"),
    );
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery.json"),
        Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
    }
}
