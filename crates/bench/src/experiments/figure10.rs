//! **Figure 10** — Workflow breakdown.
//!
//! * (a) Offline compile phase scalability: Parsing / Analysis / Scheduling
//!   / Lowering time as the emulated cluster grows to 1,024 GPUs. The
//!   paper's pipeline finishes in ~11 minutes at 1,024 GPUs — a one-time
//!   offline cost.
//! * (b) HPDS vs round-robin scheduling on an 8-GPU two-server topology,
//!   for expert and synthesized algorithms (paper: up to 187% speedup).

use crate::{print_table, MB};
use rescc_algos::{hm_allreduce, hm_allreduce_source, taccl_like_allgather, taccl_like_allreduce};
use rescc_backends::{Backend, RescclBackend};
use rescc_core::Compiler;
use rescc_topology::Topology;

/// Regenerate Figure 10(a): compile-phase breakdown vs scale.
pub fn run_a() {
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let g = 8;
        let ranks = nodes * g;
        let topo = Topology::a100(nodes, g);
        let source = hm_allreduce_source(nodes, g);
        let plan = Compiler::new()
            .compile_source(&source, &topo)
            .expect("figure10a compile");
        let t = plan.timings;
        rows.push(vec![
            ranks.to_string(),
            plan.dag.len().to_string(),
            format!("{:.1}ms", t.parsing.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.analysis.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.scheduling.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.lowering.as_secs_f64() * 1e3),
            format!("{:.2}s", t.total().as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 10(a): offline compile phase breakdown vs emulated cluster scale (HM-AllReduce)",
        &["GPUs", "tasks", "parsing", "analysis", "scheduling", "lowering", "total"],
        &rows,
    );
    println!("paper: the full DSL pipeline finishes in ~11 min even at 1,024 GPUs (offline).");
}

/// Regenerate Figure 10(b): HPDS vs round-robin.
pub fn run_b() {
    let topo = Topology::a100(2, 4);
    let hpds = RescclBackend::default();
    let rr = RescclBackend::round_robin();
    let cases = [
        ("expert HM-AR", hm_allreduce(2, 4)),
        ("synth TACCL-AG", taccl_like_allgather(2, 4)),
        ("synth TACCL-AR", taccl_like_allreduce(2, 4)),
    ];
    let mut rows = Vec::new();
    for (name, spec) in &cases {
        for buffer in [64 * MB, 512 * MB] {
            let th = hpds
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b hpds")
                .sim
                .completion_ns;
            let tr = rr
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b rr")
                .sim
                .completion_ns;
            rows.push(vec![
                name.to_string(),
                crate::fmt_bytes(buffer),
                format!("{:.2}ms", th / 1e6),
                format!("{:.2}ms", tr / 1e6),
                format!("{:+.1}%", 100.0 * (tr / th - 1.0)),
            ]);
        }
    }
    print_table(
        "Figure 10(b): HPDS vs round-robin scheduling (2 servers x 4 GPUs)",
        &["algorithm", "buffer", "HPDS", "round-robin", "HPDS speedup"],
        &rows,
    );
    println!("paper: HPDS consistently beats RR, by up to 187%.");
}

/// Regenerate both panels.
pub fn run() {
    run_a();
    run_b();
}
