//! **Figure 10** — Workflow breakdown.
//!
//! * (a) Offline compile phase scalability: Parsing / Analysis / Scheduling
//!   / Lowering time as the emulated cluster grows to 1,024 GPUs. The
//!   paper's pipeline finishes in ~11 minutes at 1,024 GPUs — a one-time
//!   offline cost.
//! * (b) HPDS vs round-robin scheduling on an 8-GPU two-server topology,
//!   for expert and synthesized algorithms (paper: up to 187% speedup).

use crate::{print_table, MB};
use rescc_algos::{
    hm_allreduce, hm_allreduce_source, nccl_rings_allgather, taccl_like_allgather,
    taccl_like_allreduce,
};
use rescc_backends::{Backend, RescclBackend};
use rescc_core::{Compiler, PlanCache};
use rescc_ir::{DepDag, MicroBatchPlan};
use rescc_sched::{hpds_reference, hpds_with_threads};
use rescc_topology::{Rank, Topology, TopologyHealth};
use std::time::Instant;

/// Regenerate Figure 10(a): compile-phase breakdown vs scale, the
/// scheduler-rearchitecture speedup and cold/parallel/warm comparison at
/// 1,024 emulated GPUs, the incremental (delta) recompile comparison, and
/// a 4,096-GPU compile point. Writes machine-readable results to
/// `BENCH_compile.json`.
pub fn run_a() {
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let g = 8;
        let ranks = nodes * g;
        let topo = Topology::a100(nodes, g);
        let source = hm_allreduce_source(nodes, g);
        let plan = Compiler::new()
            .compile_source(&source, &topo)
            .expect("figure10a compile");
        let t = plan.timings;
        rows.push(vec![
            ranks.to_string(),
            plan.dag.len().to_string(),
            format!("{:.1}ms", t.parsing.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.analysis.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.scheduling.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.lowering.as_secs_f64() * 1e3),
            format!("{:.2}s", t.total().as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 10(a): offline compile phase breakdown vs emulated cluster scale (HM-AllReduce)",
        &[
            "GPUs",
            "tasks",
            "parsing",
            "analysis",
            "scheduling",
            "lowering",
            "total",
        ],
        &rows,
    );
    println!("paper: the full DSL pipeline finishes in ~11 min even at 1,024 GPUs (offline).");

    // Scheduler rearchitecture at the largest sweep scale: the reference
    // scheduler (the pre-rearchitecture pointer-chasing implementation,
    // kept verbatim in `rescc_sched::reference`) against the flat CSR
    // pipeline. This is the honest regression-fix measure on a box with
    // however few cores it has — the flat pipeline wins on data layout
    // alone at 1 thread, and additionally with threads where available.
    let (nodes, g) = (128u32, 8u32);
    let ranks = nodes * g;
    let topo = Topology::a100(nodes, g);
    let spec = hm_allreduce(nodes, g);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let dag = DepDag::build(&spec, &topo).expect("figure10a dag");
    let t0 = Instant::now();
    let ref_schedule = hpds_reference(&dag);
    let sched_reference = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let flat_schedule = hpds_with_threads(&dag, threads);
    let sched_flat = t0.elapsed().as_secs_f64();
    let sched_identical = ref_schedule == flat_schedule;
    let parallel_speedup = sched_reference / sched_flat;
    drop(ref_schedule);
    drop(flat_schedule);
    drop(dag);

    let t0 = Instant::now();
    let serial_plan = Compiler::new()
        .compile_spec(&spec, &topo)
        .expect("figure10a serial compile");
    let cold_serial = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let parallel_plan = Compiler::new()
        .with_threads(threads)
        .compile_spec(&spec, &topo)
        .expect("figure10a parallel compile");
    let cold_parallel = t0.elapsed().as_secs_f64();
    let identical = serial_plan.semantic_eq(&parallel_plan);
    drop(parallel_plan);

    let cache = PlanCache::new();
    let mb = MicroBatchPlan::plan(256 * MB, spec.n_chunks(), MB);
    let compiler = Compiler::new().with_threads(threads);
    cache
        .get_or_compile(&compiler, &spec, &topo, &mb)
        .expect("figure10a cache prime");
    let t0 = Instant::now();
    cache
        .get_or_compile(&compiler, &spec, &topo, &mb)
        .expect("figure10a cache hit");
    let warm = t0.elapsed().as_secs_f64();

    print_table(
        &format!("Compile modes at {ranks} GPUs (HM-AllReduce)"),
        &["mode", "wall time", "speedup"],
        &[
            vec![
                "scheduler, reference".into(),
                format!("{sched_reference:.3}s"),
                "1.0x".into(),
            ],
            vec![
                format!("scheduler, flat ({threads} threads)"),
                format!("{sched_flat:.3}s"),
                format!("{parallel_speedup:.2}x"),
            ],
            vec![
                "cold compile, serial".into(),
                format!("{cold_serial:.3}s"),
                "1.0x".into(),
            ],
            vec![
                format!("cold compile, {threads} threads"),
                format!("{cold_parallel:.3}s"),
                format!("{:.2}x", cold_serial / cold_parallel),
            ],
            vec![
                "warm cache".into(),
                format!("{:.2}ms", warm * 1e3),
                format!("{:.0}x", cold_serial / warm),
            ],
        ],
    );
    println!(
        "flat scheduler byte-identical to reference: {sched_identical}; \
         parallel compile byte-identical to serial: {identical}; \
         warm dispatch skips all five compile phases via the plan cache."
    );

    // Incremental (delta) recompile after a single intra-node link fault,
    // on a workload with routing slack (2 NCCL rings leave most NVLink
    // pair channels idle, so the relayed routes fit the cached schedule
    // and the splice path engages). The full recompile is what the
    // watchdog previously did: recompile the spec from scratch against
    // the degraded topology.
    let delta_spec = nccl_rings_allgather(nodes, g, 2);
    let delta_plan = compiler
        .compile_spec(&delta_spec, &topo)
        .expect("figure10a delta base compile");
    let mut health = TopologyHealth::default();
    health.mask(topo.pair_chan(Rank::new(40), Rank::new(41)));

    // Best-of-3 on both sides: these are sub-second wall times on a shared
    // box, and a single stray scheduler preemption can halve the ratio.
    let mut delta_s = f64::MAX;
    let mut delta_spliced = true;
    for _ in 0..3 {
        let t0 = Instant::now();
        let delta = compiler
            .recompile_delta(&delta_plan, &health)
            .expect("figure10a delta recompile");
        delta_s = delta_s.min(t0.elapsed().as_secs_f64());
        delta_spliced &= delta.timings.lowering.is_zero();
    }

    let degraded = topo.clone().with_health(health.clone());
    let mut full_s = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let full = compiler
            .compile_spec(&delta_spec, &degraded)
            .expect("figure10a full degraded compile");
        full_s = full_s.min(t0.elapsed().as_secs_f64());
        drop(full);
    }
    let delta_speedup = full_s / delta_s;

    // Unchanged mask -> the delta path must return the cached plan
    // byte-for-byte (the identity path).
    let unchanged = compiler
        .recompile_delta(&delta_plan, delta_plan.topo.health())
        .expect("figure10a identity recompile");
    let delta_identity = unchanged.semantic_eq(&delta_plan);
    drop(unchanged);
    drop(delta_plan);

    print_table(
        &format!("Post-fault recompile at {ranks} GPUs (2-ring AllGather, 1 dead NVLink channel)"),
        &["mode", "wall time", "speedup"],
        &[
            vec![
                "full recompile".into(),
                format!("{full_s:.3}s"),
                "1.0x".into(),
            ],
            vec![
                "delta recompile (splice)".into(),
                format!("{delta_s:.3}s"),
                format!("{delta_speedup:.2}x"),
            ],
        ],
    );
    println!(
        "delta took the splice path: {delta_spliced}; \
         unchanged-mask delta is byte-equivalent to the cached plan: {delta_identity}."
    );

    // 4,096-GPU compile point (spec-based: the DSL source at this scale
    // is dominated by text generation, which is not what this figure
    // measures).
    let topo_4k = Topology::a100(512, 8);
    let spec_4k = hm_allreduce(512, 8);
    let t0 = Instant::now();
    let plan_4k = compiler
        .compile_spec(&spec_4k, &topo_4k)
        .expect("figure10a 4k compile");
    let total_4k = t0.elapsed().as_secs_f64();
    let t4 = plan_4k.timings;
    let tasks_4k = plan_4k.dag.len();
    println!(
        "4,096-GPU compile point: {tasks_4k} tasks in {total_4k:.1}s \
         (analysis {:.1}s, scheduling {:.1}s, lowering {:.1}s, sanitize {:.1}s)",
        t4.analysis.as_secs_f64(),
        t4.scheduling.as_secs_f64(),
        t4.lowering.as_secs_f64(),
        t4.sanitize.as_secs_f64(),
    );
    drop(plan_4k);

    let t = serial_plan.timings;
    let json = format!(
        "{{\n  \"workload\": \"hm_allreduce\",\n  \"ranks\": {ranks},\n  \
         \"tasks\": {tasks},\n  \"threads\": {threads},\n  \
         \"sched_reference_s\": {sched_reference:.6},\n  \
         \"sched_flat_s\": {sched_flat:.6},\n  \
         \"parallel_speedup\": {parallel_speedup:.3},\n  \
         \"sched_byte_identical\": {sched_identical},\n  \
         \"cold_serial_s\": {cold_serial:.6},\n  \
         \"cold_parallel_s\": {cold_parallel:.6},\n  \
         \"parallel_byte_identical\": {identical},\n  \
         \"warm_cache_s\": {warm:.9},\n  \
         \"phases_serial_ms\": {{\"parsing\": {p:.3}, \"analysis\": {a:.3}, \
         \"scheduling\": {s:.3}, \"lowering\": {l:.3}, \"sanitize\": {sa:.3}}},\n  \
         \"delta\": {{\"workload\": \"nccl_rings_allgather\", \
         \"full_recompile_s\": {full_s:.6}, \"delta_recompile_s\": {delta_s:.6}, \
         \"delta_speedup\": {delta_speedup:.3}, \"spliced\": {delta_spliced}, \
         \"identity_byte_equivalent\": {delta_identity}}},\n  \
         \"scale_4k\": {{\"ranks\": 4096, \"tasks\": {tasks_4k}, \
         \"total_s\": {total_4k:.3}}}\n}}\n",
        tasks = serial_plan.dag.len(),
        p = t.parsing.as_secs_f64() * 1e3,
        a = t.analysis.as_secs_f64() * 1e3,
        s = t.scheduling.as_secs_f64() * 1e3,
        l = t.lowering.as_secs_f64() * 1e3,
        sa = t.sanitize.as_secs_f64() * 1e3,
    );
    match std::fs::write("BENCH_compile.json", &json) {
        Ok(()) => println!("wrote BENCH_compile.json"),
        Err(e) => eprintln!("could not write BENCH_compile.json: {e}"),
    }
}

/// Regenerate Figure 10(b): HPDS vs round-robin.
pub fn run_b() {
    let topo = Topology::a100(2, 4);
    let hpds = RescclBackend::default();
    let rr = RescclBackend::round_robin();
    let cases = [
        ("expert HM-AR", hm_allreduce(2, 4)),
        ("synth TACCL-AG", taccl_like_allgather(2, 4)),
        ("synth TACCL-AR", taccl_like_allreduce(2, 4)),
    ];
    let mut rows = Vec::new();
    for (name, spec) in &cases {
        for buffer in [64 * MB, 512 * MB] {
            let th = hpds
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b hpds")
                .sim
                .completion_ns;
            let tr = rr
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b rr")
                .sim
                .completion_ns;
            rows.push(vec![
                name.to_string(),
                crate::fmt_bytes(buffer),
                format!("{:.2}ms", th / 1e6),
                format!("{:.2}ms", tr / 1e6),
                format!("{:+.1}%", 100.0 * (tr / th - 1.0)),
            ]);
        }
    }
    print_table(
        "Figure 10(b): HPDS vs round-robin scheduling (2 servers x 4 GPUs)",
        &["algorithm", "buffer", "HPDS", "round-robin", "HPDS speedup"],
        &rows,
    );
    println!("paper: HPDS consistently beats RR, by up to 187%.");
}

/// Regenerate both panels.
pub fn run() {
    run_a();
    run_b();
}
