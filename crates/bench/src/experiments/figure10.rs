//! **Figure 10** — Workflow breakdown.
//!
//! * (a) Offline compile phase scalability: Parsing / Analysis / Scheduling
//!   / Lowering time as the emulated cluster grows to 1,024 GPUs. The
//!   paper's pipeline finishes in ~11 minutes at 1,024 GPUs — a one-time
//!   offline cost.
//! * (b) HPDS vs round-robin scheduling on an 8-GPU two-server topology,
//!   for expert and synthesized algorithms (paper: up to 187% speedup).

use crate::{print_table, MB};
use rescc_algos::{hm_allreduce, hm_allreduce_source, taccl_like_allgather, taccl_like_allreduce};
use rescc_backends::{Backend, RescclBackend};
use rescc_core::{Compiler, PlanCache};
use rescc_ir::MicroBatchPlan;
use rescc_topology::Topology;
use std::time::Instant;

/// Regenerate Figure 10(a): compile-phase breakdown vs scale, plus the
/// cold-compile / parallel-compile / warm-cache comparison at the largest
/// emulated scale (1,024 GPUs). Writes machine-readable results to
/// `BENCH_compile.json`.
pub fn run_a() {
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let g = 8;
        let ranks = nodes * g;
        let topo = Topology::a100(nodes, g);
        let source = hm_allreduce_source(nodes, g);
        let plan = Compiler::new()
            .compile_source(&source, &topo)
            .expect("figure10a compile");
        let t = plan.timings;
        rows.push(vec![
            ranks.to_string(),
            plan.dag.len().to_string(),
            format!("{:.1}ms", t.parsing.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.analysis.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.scheduling.as_secs_f64() * 1e3),
            format!("{:.1}ms", t.lowering.as_secs_f64() * 1e3),
            format!("{:.2}s", t.total().as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 10(a): offline compile phase breakdown vs emulated cluster scale (HM-AllReduce)",
        &[
            "GPUs",
            "tasks",
            "parsing",
            "analysis",
            "scheduling",
            "lowering",
            "total",
        ],
        &rows,
    );
    println!("paper: the full DSL pipeline finishes in ~11 min even at 1,024 GPUs (offline).");

    // Cold / parallel / warm comparison at the largest scale.
    let (nodes, g) = (128u32, 8u32);
    let ranks = nodes * g;
    let topo = Topology::a100(nodes, g);
    let spec = hm_allreduce(nodes, g);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let t0 = Instant::now();
    let serial_plan = Compiler::new()
        .compile_spec(&spec, &topo)
        .expect("figure10a serial compile");
    let cold_serial = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let parallel_plan = Compiler::new()
        .with_threads(threads)
        .compile_spec(&spec, &topo)
        .expect("figure10a parallel compile");
    let cold_parallel = t0.elapsed().as_secs_f64();
    let identical = serial_plan.semantic_eq(&parallel_plan);

    let cache = PlanCache::new();
    let mb = MicroBatchPlan::plan(256 * MB, spec.n_chunks(), MB);
    let compiler = Compiler::new().with_threads(threads);
    cache
        .get_or_compile(&compiler, &spec, &topo, &mb)
        .expect("figure10a cache prime");
    let t0 = Instant::now();
    cache
        .get_or_compile(&compiler, &spec, &topo, &mb)
        .expect("figure10a cache hit");
    let warm = t0.elapsed().as_secs_f64();

    print_table(
        &format!("Compile modes at {ranks} GPUs (HM-AllReduce)"),
        &["mode", "wall time", "speedup vs cold"],
        &[
            vec![
                "cold, serial".into(),
                format!("{cold_serial:.3}s"),
                "1.0x".into(),
            ],
            vec![
                format!("cold, {threads} threads"),
                format!("{cold_parallel:.3}s"),
                format!("{:.2}x", cold_serial / cold_parallel),
            ],
            vec![
                "warm cache".into(),
                format!("{:.2}ms", warm * 1e3),
                format!("{:.0}x", cold_serial / warm),
            ],
        ],
    );
    println!(
        "parallel output byte-identical to serial: {identical}; \
         warm dispatch skips all four compile phases via the plan cache."
    );

    let t = serial_plan.timings;
    let json = format!(
        "{{\n  \"workload\": \"hm_allreduce\",\n  \"ranks\": {ranks},\n  \
         \"tasks\": {tasks},\n  \"threads\": {threads},\n  \
         \"cold_serial_s\": {cold_serial:.6},\n  \
         \"cold_parallel_s\": {cold_parallel:.6},\n  \
         \"parallel_speedup\": {speedup:.3},\n  \
         \"parallel_byte_identical\": {identical},\n  \
         \"warm_cache_s\": {warm:.9},\n  \
         \"phases_serial_ms\": {{\"parsing\": {p:.3}, \"analysis\": {a:.3}, \
         \"scheduling\": {s:.3}, \"lowering\": {l:.3}}}\n}}\n",
        tasks = serial_plan.dag.len(),
        speedup = cold_serial / cold_parallel,
        p = t.parsing.as_secs_f64() * 1e3,
        a = t.analysis.as_secs_f64() * 1e3,
        s = t.scheduling.as_secs_f64() * 1e3,
        l = t.lowering.as_secs_f64() * 1e3,
    );
    match std::fs::write("BENCH_compile.json", &json) {
        Ok(()) => println!("wrote BENCH_compile.json"),
        Err(e) => eprintln!("could not write BENCH_compile.json: {e}"),
    }
}

/// Regenerate Figure 10(b): HPDS vs round-robin.
pub fn run_b() {
    let topo = Topology::a100(2, 4);
    let hpds = RescclBackend::default();
    let rr = RescclBackend::round_robin();
    let cases = [
        ("expert HM-AR", hm_allreduce(2, 4)),
        ("synth TACCL-AG", taccl_like_allgather(2, 4)),
        ("synth TACCL-AR", taccl_like_allreduce(2, 4)),
    ];
    let mut rows = Vec::new();
    for (name, spec) in &cases {
        for buffer in [64 * MB, 512 * MB] {
            let th = hpds
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b hpds")
                .sim
                .completion_ns;
            let tr = rr
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure10b rr")
                .sim
                .completion_ns;
            rows.push(vec![
                name.to_string(),
                crate::fmt_bytes(buffer),
                format!("{:.2}ms", th / 1e6),
                format!("{:.2}ms", tr / 1e6),
                format!("{:+.1}%", 100.0 * (tr / th - 1.0)),
            ]);
        }
    }
    print_table(
        "Figure 10(b): HPDS vs round-robin scheduling (2 servers x 4 GPUs)",
        &["algorithm", "buffer", "HPDS", "round-robin", "HPDS speedup"],
        &rows,
    );
    println!("paper: HPDS consistently beats RR, by up to 187%.");
}

/// Regenerate both panels.
pub fn run() {
    run_a();
    run_b();
}
