//! **Figure 13** — End-to-end Megatron training throughput with ResCCL as
//! the communication backend, vs NCCL (native) and MSCCL, for GPT-3
//! (tensor parallel) and T5 (data parallel) models of increasing size.
//!
//! Paper shape: 18–39% over native Megatron on T5 (and up to 1.8× over the
//! MSCCL variant); 11–20% over native and 7.5–29.3% over MSCCL on GPT-3.

use crate::print_table;
use rescc_train::{train_throughput, CclChoice, ModelConfig, ParallelConfig, TrainConfig};

/// Regenerate Figure 13.
pub fn run() {
    let cfg = TrainConfig::default();

    // (a) GPT-3, tensor parallel: <13B on 2 servers (batch 16), larger on
    // 4 servers (batch 32) — the §5.5 deployment rule.
    let mut rows = Vec::new();
    for size in ["6.7B", "13B", "22B", "45B"] {
        let model = ModelConfig::gpt3(size).expect("figure13 preset");
        let par = if model.params < 13_000_000_000 {
            ParallelConfig::gpt3(2, 16)
        } else {
            ParallelConfig::gpt3(4, 32)
        };
        let n = train_throughput(&model, &par, CclChoice::Nccl, &cfg).expect("figure13 nccl");
        let m = train_throughput(&model, &par, CclChoice::Msccl, &cfg).expect("figure13 msccl");
        let r = train_throughput(&model, &par, CclChoice::Resccl, &cfg).expect("figure13 resccl");
        rows.push(vec![
            model.name.clone(),
            format!("{}x{}", par.dp, par.tp),
            format!("{:.2}", n.samples_per_s),
            format!("{:.2}", m.samples_per_s),
            format!("{:.2}", r.samples_per_s),
            format!("{:+.1}%", 100.0 * (r.samples_per_s / n.samples_per_s - 1.0)),
            format!("{:+.1}%", 100.0 * (r.samples_per_s / m.samples_per_s - 1.0)),
        ]);
    }
    print_table(
        "Figure 13(a): GPT-3 training throughput (samples/s), TP=8",
        &[
            "model", "DPxTP", "NCCL", "MSCCL", "ResCCL", "vs NCCL", "vs MSCCL",
        ],
        &rows,
    );

    // (b) T5, data parallel over 16 GPUs, batch 16.
    let mut rows = Vec::new();
    for size in ["220M", "770M", "3B"] {
        let model = ModelConfig::t5(size).expect("figure13 preset");
        let par = ParallelConfig::t5(16, 16);
        let n = train_throughput(&model, &par, CclChoice::Nccl, &cfg).expect("figure13 nccl");
        let m = train_throughput(&model, &par, CclChoice::Msccl, &cfg).expect("figure13 msccl");
        let r = train_throughput(&model, &par, CclChoice::Resccl, &cfg).expect("figure13 resccl");
        rows.push(vec![
            model.name.clone(),
            "16 (DP)".to_string(),
            format!("{:.2}", n.samples_per_s),
            format!("{:.2}", m.samples_per_s),
            format!("{:.2}", r.samples_per_s),
            format!("{:+.1}%", 100.0 * (r.samples_per_s / n.samples_per_s - 1.0)),
            format!("{:+.1}%", 100.0 * (r.samples_per_s / m.samples_per_s - 1.0)),
        ]);
    }
    print_table(
        "Figure 13(b): T5 training throughput (samples/s), DP=16",
        &[
            "model", "GPUs", "NCCL", "MSCCL", "ResCCL", "vs NCCL", "vs MSCCL",
        ],
        &rows,
    );
    println!(
        "paper: T5 +18-39% over native Megatron (up to 1.8x over MSCCL); \
         GPT-3 +11-20% over native, +7.5-29.3% over MSCCL."
    );
}
