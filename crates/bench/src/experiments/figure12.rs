//! **Figure 12** — Per-TB time-cost breakdown of ResCCL vs MSCCL executing
//! the same expert (a) and synthesized (b) algorithms on V100s: sync vs
//! execution time per worker TB, plus the early-release saving.
//!
//! Paper shape: ResCCL reduces thread resource consumption by up to 75%,
//! shrinks per-TB occupied time to as little as 3.8% of MSCCL's, and
//! releases TBs early.

use crate::{pct, print_table, MB};
use rescc_algos::{hm_allreduce, taccl_like_allreduce};
use rescc_backends::{Backend, MscclBackend, RescclBackend};
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;

fn panel(label: &str, spec: &AlgoSpec, topo: &Topology) {
    let msccl = MscclBackend::default();
    let resccl = RescclBackend::default();
    let m = msccl
        .run_unchecked(spec, topo, 256 * MB, MB)
        .expect("figure12 msccl");
    let r = resccl
        .run_unchecked(spec, topo, 256 * MB, MB)
        .expect("figure12 resccl");

    // Rank-0 worker TBs, side by side (MSCCL has more TBs than ResCCL —
    // that asymmetry *is* the figure).
    let m_tbs: Vec<_> = m.sim.tb_stats.iter().filter(|t| t.rank == 0).collect();
    let r_tbs: Vec<_> = r.sim.tb_stats.iter().filter(|t| t.rank == 0).collect();
    let n = m_tbs.len().max(r_tbs.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let fmt = |x: Option<&&rescc_sim::TbStat>| match x {
                Some(t) => format!(
                    "sync {:.1}ms / exec {:.1}ms / rel {:.1}ms",
                    t.sync_ns / 1e6,
                    t.busy_ns / 1e6,
                    t.release_ns / 1e6
                ),
                None => "-".to_string(),
            };
            vec![format!("TB{i}"), fmt(m_tbs.get(i)), fmt(r_tbs.get(i))]
        })
        .collect();
    print_table(
        &format!("Figure 12 {label}: rank-0 per-TB time breakdown"),
        &[
            "Worker",
            "MSCCL (sync/exec, release)",
            "ResCCL (sync/exec, release)",
        ],
        &rows,
    );
    let m_occ: f64 = m.sim.tb_stats.iter().map(|t| t.occupancy_ns).sum();
    let r_occ: f64 = r.sim.tb_stats.iter().map(|t| t.occupancy_ns).sum();
    println!(
        "total TBs: MSCCL {} vs ResCCL {} ({} saved) | total TB-occupancy: \
         MSCCL {:.1}ms vs ResCCL {:.1}ms ({} of MSCCL) | avg utilization: \
         MSCCL {} vs ResCCL {}",
        m.total_tbs,
        r.total_tbs,
        pct(1.0 - r.total_tbs as f64 / m.total_tbs as f64),
        m_occ / 1e6,
        r_occ / 1e6,
        pct(r_occ / m_occ),
        pct(m.sim.avg_comm_ratio()),
        pct(r.sim.avg_comm_ratio()),
    );
}

/// Regenerate Figure 12.
pub fn run() {
    let topo = Topology::v100(2, 8);
    panel("(a) expert HM-AllReduce", &hm_allreduce(2, 8), &topo);
    panel(
        "(b) synthesized TACCL-like AllReduce",
        &taccl_like_allreduce(2, 8),
        &topo,
    );
    println!(
        "paper: up to 75% fewer TBs, occupied time down to 3.8% of MSCCL's, \
         43.4-66.9% higher average utilization, early release."
    );
}
