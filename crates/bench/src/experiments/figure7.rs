//! **Figure 7** — Communication performance of synthesized AllGather and
//! AllReduce across buffer sizes: speedup of ResCCL over MSCCL when both
//! execute the same TACCL-like / TECCL-like algorithms, on 16 and 32 GPUs.
//!
//! Paper shape: speedups of up to 1.4–1.5× for large buffers; small buffers
//! can dip slightly below 1× (pipeline-fill effects).

use crate::{buffer_sweep, fmt_bytes, print_table, MB};
use rescc_algos::{
    taccl_like_allgather, taccl_like_allreduce, teccl_like_allgather, teccl_like_allreduce,
};
use rescc_backends::{Backend, MscclBackend, RescclBackend};
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;

fn panel(label: &str, cases: &[(&str, AlgoSpec)], topo: &Topology) {
    let buffers = buffer_sweep();
    let msccl = MscclBackend::default();
    let resccl = RescclBackend::default();
    let mut rows = Vec::new();
    for buffer in &buffers {
        let mut row = vec![fmt_bytes(*buffer)];
        for (_, spec) in cases {
            let tm = msccl
                .run_unchecked(spec, topo, *buffer, MB)
                .expect("figure7 msccl")
                .sim
                .completion_ns;
            let tr = resccl
                .run_unchecked(spec, topo, *buffer, MB)
                .expect("figure7 resccl")
                .sim
                .completion_ns;
            row.push(format!("{:.2}x", tm / tr));
        }
        rows.push(row);
    }
    let mut headers = vec!["buffer"];
    for (name, _) in cases {
        headers.push(name);
    }
    print_table(
        &format!("Figure 7 {label}: ResCCL speedup over MSCCL (1.0 = parity)"),
        &headers,
        &rows,
    );
}

/// Regenerate Figure 7.
pub fn run() {
    let t16 = Topology::a100(2, 8);
    let t32 = Topology::a100(4, 8);
    panel(
        "(a) 16 GPUs",
        &[
            ("TACCL-AG", taccl_like_allgather(2, 8)),
            ("TACCL-AR", taccl_like_allreduce(2, 8)),
            ("TECCL-AG", teccl_like_allgather(16)),
            ("TECCL-AR", teccl_like_allreduce(16)),
        ],
        &t16,
    );
    panel(
        "(b) 32 GPUs",
        &[
            ("TACCL-AG", taccl_like_allgather(4, 8)),
            ("TACCL-AR", taccl_like_allreduce(4, 8)),
            ("TECCL-AG", teccl_like_allgather(32)),
            ("TECCL-AR", teccl_like_allreduce(32)),
        ],
        &t32,
    );
    println!("paper: up to 1.4-1.5x for large buffers; ~parity or slight dips below 8-16MB.");
}
