//! One module per regenerated table/figure; each exposes `run()`.

pub mod ablation;
pub mod analytic;
pub mod analyze;
pub mod chaos;
pub mod figure10;
pub mod figure11;
pub mod figure12;
pub mod figure13;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod observability;
pub mod recovery;
pub mod service;
pub mod simbench;
pub mod table1;
pub mod table3;
