//! **Chaos campaign** — randomized multi-fault robustness sweep (not a
//! paper figure).
//!
//! Seeded chaos timelines ([`FaultTimeline::seeded_chaos`]: permanent
//! kills, kill-then-restore outages, flaps, brownouts, stragglers —
//! including faults that land during recovery attempts) are injected into
//! every collective operator on every Table-3 topology. Each run must
//! either deliver machine-validated data within the watchdog's bounded
//! retry/recompile budgets or give up with a typed error, and at least
//! one seed per cell must survive.
//!
//! A second section measures the partial-progress economics the frontier
//! resume exists for: a permanent NVLink kill late in an AllReduce is
//! recovered twice — once resuming from the fault frontier (what the
//! watchdog actually does) and once as the restart-from-zero
//! counterfactual (a full run of the same degraded plan) — and resuming
//! must be cheaper on every topology. Machine-readable results go to
//! `BENCH_chaos.json`.

use crate::print_table;
use rescc_backends::{Communicator, RunReport};
use rescc_core::Compiler;
use rescc_lang::OpType;
use rescc_sim::{FaultTimeline, SimConfig, SimResult};
use rescc_topology::{Rank, Topology};

const MB: u64 = 1 << 20;
/// Seeds per (topology, operator) cell.
const SEEDS: u64 = 8;

fn issue(comm: &mut Communicator, op: OpType, buffer: u64) -> SimResult<RunReport> {
    match op {
        OpType::AllReduce => comm.all_reduce(buffer),
        OpType::AllGather => comm.all_gather(buffer),
        OpType::ReduceScatter => comm.reduce_scatter(buffer),
    }
}

/// Run the chaos campaign and write `BENCH_chaos.json`.
pub fn run() {
    let buffer = 64 * MB;
    let ops = [OpType::AllReduce, OpType::AllGather, OpType::ReduceScatter];

    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    for i in 1..=4usize {
        let topo = Topology::table3_topo(i).expect("table-3 topology");
        for op in ops {
            let healthy = issue(&mut Communicator::new(topo.clone()), op, buffer)
                .unwrap_or_else(|e| panic!("chaos healthy {op:?} on {}: {e}", topo.name()));
            let horizon = healthy.sim.completion_ns;
            let (mut survived, mut gave_up) = (0u32, 0u32);
            let (mut retries, mut recompiles, mut resumes, mut heals) = (0u32, 0u32, 0u32, 0u32);
            for seed in 0..SEEDS {
                let tl =
                    FaultTimeline::seeded_chaos(seed, topo.n_resources(), topo.n_ranks(), horizon);
                let mut comm = Communicator::new(topo.clone())
                    .with_validation()
                    .with_faults(tl);
                match issue(&mut comm, op, buffer) {
                    Ok(rep) => {
                        assert_eq!(
                            rep.sim.data_valid,
                            Some(true),
                            "chaos {op:?} on {} seed {seed}: recovered run must validate",
                            topo.name()
                        );
                        let rec = rep.recovery.expect("chaos engages the watchdog");
                        survived += 1;
                        retries += rec.retries;
                        recompiles += rec.recompiles;
                        resumes += rec.resumes;
                        heals += rec.heals;
                    }
                    Err(_) => gave_up += 1,
                }
            }
            assert!(
                survived > 0,
                "chaos {op:?} on {}: every seed gave up",
                topo.name()
            );
            rows.push(vec![
                topo.name().to_string(),
                format!("{op:?}"),
                format!("{survived}/{SEEDS}"),
                retries.to_string(),
                recompiles.to_string(),
                resumes.to_string(),
                heals.to_string(),
            ]);
            json_cells.push(format!(
                "    {{\"topology\": \"{}\", \"op\": \"{op:?}\", \"seeds\": {SEEDS}, \
                 \"survived\": {survived}, \"gave_up\": {gave_up}, \"retries\": {retries}, \
                 \"recompiles\": {recompiles}, \"resumes\": {resumes}, \"heals\": {heals}}}",
                topo.name(),
            ));
        }
    }
    print_table(
        "Chaos campaign: seeded multi-fault timelines, 64 MB collectives",
        &[
            "topology",
            "op",
            "survived",
            "retries",
            "recompiles",
            "resumes",
            "heals",
        ],
        &rows,
    );

    // Resume-vs-restart economics: late permanent kill, frontier resume
    // against the restart-from-zero counterfactual on the same degraded
    // plan.
    let mut econ_rows = Vec::new();
    let mut json_econ = Vec::new();
    for i in 1..=4usize {
        let topo = Topology::table3_topo(i).expect("table-3 topology");
        let healthy = Communicator::new(topo.clone())
            .all_reduce(buffer)
            .unwrap_or_else(|e| panic!("econ healthy on {}: {e}", topo.name()));
        let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
        let kill_at = 0.6 * healthy.sim.completion_ns;
        let mut comm = Communicator::new(topo.clone())
            .with_validation()
            .with_faults(FaultTimeline::new().kill(chan, kill_at));
        let rep = comm
            .all_reduce(buffer)
            .unwrap_or_else(|e| panic!("econ kill on {}: {e}", topo.name()));
        assert_eq!(rep.sim.data_valid, Some(true));
        let rec = rep.recovery.clone().expect("kill engages the watchdog");
        assert!(
            rec.resumes >= 1,
            "{}: late kill must resume from the frontier, not restart",
            topo.name()
        );
        let resume_ns = rep.sim.completion_ns;

        // Counterfactual: the degraded plan the watchdog recompiled to,
        // run from zero.
        let spec = rescc_algos::hm_allreduce(topo.n_nodes(), topo.gpus_per_node());
        let degraded = topo.clone().with_health(comm.health().clone());
        let restart_ns = Compiler::new()
            .compile_spec(&spec, &degraded)
            .unwrap_or_else(|e| panic!("econ degraded compile on {}: {e}", topo.name()))
            .run_with(buffer, MB, &SimConfig::default().without_validation())
            .unwrap_or_else(|e| panic!("econ restart run on {}: {e}", topo.name()))
            .completion_ns;
        let ratio = resume_ns / restart_ns;
        assert!(
            ratio < 1.0,
            "{}: resuming ({resume_ns:.0}ns) must beat restarting ({restart_ns:.0}ns)",
            topo.name()
        );
        econ_rows.push(vec![
            topo.name().to_string(),
            format!("{:.2}ms", resume_ns / 1e6),
            format!("{:.2}ms", restart_ns / 1e6),
            format!("{ratio:.2}x"),
        ]);
        json_econ.push(format!(
            "    {{\"topology\": \"{}\", \"resume_ns\": {resume_ns:.1}, \
             \"restart_ns\": {restart_ns:.1}, \"ratio\": {ratio:.4}}}",
            topo.name(),
        ));
    }
    print_table(
        "Resume vs restart: permanent NVLink kill at 60% of a 64 MB AllReduce",
        &["topology", "resume", "restart", "ratio"],
        &econ_rows,
    );
    println!(
        "frontier resume re-runs only the residual schedule, so recovering a \
         late fault costs a fraction of restarting the collective from zero."
    );

    let json = format!(
        "{{\n  \"buffer_bytes\": {buffer},\n  \"seeds_per_cell\": {SEEDS},\n  \
         \"campaign\": [\n{}\n  ],\n  \"resume_vs_restart\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n"),
        json_econ.join(",\n"),
    );
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => println!("wrote BENCH_chaos.json"),
        Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
    }
}
