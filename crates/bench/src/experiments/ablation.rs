//! **Ablation** (beyond the paper's figures): decompose ResCCL's win into
//! its three techniques by toggling one component at a time, holding the
//! rest of the pipeline fixed. Axes:
//!
//! 1. execution granularity — task-level (slot-major, no barrier) vs
//!    algorithm-level (micro-batch-major with a lazy barrier),
//! 2. scheduler — HPDS vs round-robin vs plain by-step ordering,
//! 3. TB allocation — state-based merge vs connection-based ×4 channels,
//! 4. runtime — direct kernel vs interpreter.
//!
//! The paper argues each piece matters (§4.3/§4.4/§4.5); this experiment
//! quantifies the attribution on one workload.

use crate::{print_table, MB};
use rescc_algos::hm_allreduce;
use rescc_alloc::TbAllocation;
use rescc_backends::by_step_schedule;
use rescc_ir::{DepDag, MicroBatchPlan};
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_sched::{hpds, round_robin};
use rescc_sim::{simulate, SimConfig};
use rescc_topology::Topology;

/// Run the ablation matrix.
pub fn run() {
    let topo = Topology::a100(2, 8);
    let spec = hm_allreduce(2, 8);
    let dag = DepDag::build(&spec, &topo).expect("dag");
    let buffer = 256 * MB;
    let plan = MicroBatchPlan::plan(buffer, spec.n_chunks(), MB);
    let cfg = SimConfig::default().without_validation();

    struct Variant {
        name: &'static str,
        scheduler: &'static str,
        allocation: &'static str,
        loop_order: LoopOrder,
        barrier: bool,
        exec: ExecMode,
    }
    let variants = [
        Variant {
            name: "ResCCL (full)",
            scheduler: "hpds",
            allocation: "state",
            loop_order: LoopOrder::SlotMajor,
            barrier: false,
            exec: ExecMode::DirectKernel,
        },
        Variant {
            name: "- scheduler: RR",
            scheduler: "rr",
            allocation: "state",
            loop_order: LoopOrder::SlotMajor,
            barrier: false,
            exec: ExecMode::DirectKernel,
        },
        Variant {
            name: "- scheduler: by-step",
            scheduler: "by-step",
            allocation: "state",
            loop_order: LoopOrder::SlotMajor,
            barrier: false,
            exec: ExecMode::DirectKernel,
        },
        Variant {
            name: "- allocation: connection x4",
            scheduler: "hpds",
            allocation: "connection",
            loop_order: LoopOrder::SlotMajor,
            barrier: false,
            exec: ExecMode::DirectKernel,
        },
        Variant {
            name: "- granularity: algorithm-level",
            scheduler: "hpds",
            allocation: "state",
            loop_order: LoopOrder::MicroBatchMajor,
            barrier: true,
            exec: ExecMode::DirectKernel,
        },
        Variant {
            name: "- runtime: interpreter",
            scheduler: "hpds",
            allocation: "state",
            loop_order: LoopOrder::SlotMajor,
            barrier: false,
            exec: ExecMode::default_interpreter(),
        },
        Variant {
            name: "all ablated (MSCCL-like)",
            scheduler: "by-step",
            allocation: "connection",
            loop_order: LoopOrder::MicroBatchMajor,
            barrier: true,
            exec: ExecMode::default_interpreter(),
        },
    ];

    let mut rows = Vec::new();
    let mut baseline_ns = 0.0;
    let mut fusion_row: Option<Vec<String>> = None;
    for v in &variants {
        let sched = match v.scheduler {
            "hpds" => hpds(&dag),
            "rr" => round_robin(&dag),
            _ => by_step_schedule(&dag),
        };
        let alloc = match v.allocation {
            "state" => TbAllocation::state_based(&dag, &sched),
            _ => TbAllocation::connection_based(&dag, &sched, 4),
        };
        let mut prog = KernelProgram::generate(spec.name(), &dag, &alloc, v.loop_order, v.exec);
        if v.barrier {
            prog = prog.with_global_barrier(dag.len()).with_barrier_stride(4);
        }
        let rep = simulate(&topo, &dag, &prog, &plan, spec.op(), &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", v.name));
        if baseline_ns == 0.0 {
            baseline_ns = rep.completion_ns;
        }
        rows.push(vec![
            v.name.to_string(),
            format!("{:.2}ms", rep.completion_ns / 1e6),
            format!("{:.2}", buffer as f64 / rep.completion_ns),
            format!("{:.0}", alloc.total_tbs()),
            format!("{:+.1}%", 100.0 * (rep.completion_ns / baseline_ns - 1.0)),
        ]);
    }
    let _ = fusion_row.take();
    print_table(
        "Ablation: HM-AllReduce, 2x8 A100, 256MB — toggling one ResCCL technique at a time",
        &[
            "variant",
            "completion",
            "algbw GB/s",
            "TBs",
            "slowdown vs full",
        ],
        &rows,
    );
    println!(
        "each ablated component should cost performance (or TB budget) on its own; \
         the fully-ablated row approximates the MSCCL baseline."
    );

    // The optional fusion pass applies to chain-shaped transits (ring
    // forwards); HM's mesh-fed send endpoints correctly decline chain
    // merging, so demonstrate fusion on the multi-ring AllReduce instead.
    let ring_spec = rescc_algos::nccl_rings_allreduce(2, 8, 4);
    let ring_dag = DepDag::build(&ring_spec, &topo).expect("ring dag");
    let ring_plan = MicroBatchPlan::plan(buffer, ring_spec.n_chunks(), MB);
    let mut rows = Vec::new();
    let mut base = 0.0;
    for fused in [false, true] {
        let sched = hpds(&ring_dag);
        let alloc = if fused {
            TbAllocation::state_based_chained(&ring_dag, &sched)
        } else {
            TbAllocation::state_based(&ring_dag, &sched)
        };
        let mut prog = KernelProgram::generate(
            ring_spec.name(),
            &ring_dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        let stats = if fused {
            rescc_kernel::fuse(&mut prog, &ring_dag)
        } else {
            Default::default()
        };
        let rep = simulate(&topo, &ring_dag, &prog, &ring_plan, ring_spec.op(), &cfg).expect("run");
        if base == 0.0 {
            base = rep.completion_ns;
        }
        rows.push(vec![
            if fused {
                format!("chained + fused ({} pairs)", stats.total())
            } else {
                "plain state-based".to_string()
            },
            format!("{:.2}ms", rep.completion_ns / 1e6),
            format!("{:.0}", alloc.total_tbs()),
            format!("{:+.1}%", 100.0 * (rep.completion_ns / base - 1.0)),
        ]);
    }
    print_table(
        "Fusion ablation: multi-ring AllReduce, 2x8, 256MB — recvCopySend chain fusion",
        &["variant", "completion", "TBs", "delta"],
        &rows,
    );
    println!(
        "fused forwards issue asynchronously, so chain merging frees TB budget \
         (ring transits share one TB) at bounded pipelining cost — a viable \
         opt-in configuration."
    );
}
