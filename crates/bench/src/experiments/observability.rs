//! **Observability** — overhead and reconciliation of bubble attribution.
//!
//! Not a paper figure: this experiment measures the cost of the
//! simulator's observability layer and machine-checks its accounting on
//! two Table-3 scenarios. For each scenario the compiled plan is run
//! `N = 7` times with attribution off and on; wall times are reported as
//! median with min/max spread (single-iteration timings invert under
//! scheduler noise — the same bug the `simbench` experiment fixes).
//!
//! Checked invariants, per scenario:
//!
//! * the report with attribution on is byte-identical to the report with
//!   it off once the `obs` payload is stripped (attribution is read-only
//!   instrumentation);
//! * every TB's hard-bubble time (rendezvous + dependency waits) equals
//!   its `sync_ns` within 1e-6 relative error;
//! * every link timeline's buckets sum to the link's `active_ns`.
//!
//! Machine-readable results (including the measured on/off overhead) go
//! to `BENCH_obs.json`.

use crate::{print_table, MB};
use rescc_algos::{hm_allgather, hm_allreduce};
use rescc_core::Compiler;
use rescc_lang::AlgoSpec;
use rescc_sim::{BubbleCause, SimConfig};
use rescc_topology::Topology;

const ITERS: usize = 7;

struct Scenario {
    name: &'static str,
    topo: Topology,
    spec: AlgoSpec,
    buffer: u64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "table3-2x4-ar",
            topo: Topology::a100(2, 4),
            spec: hm_allreduce(2, 4),
            buffer: 128 * MB,
        },
        Scenario {
            name: "table3-2x8-ag",
            topo: Topology::a100(2, 8),
            spec: hm_allgather(2, 8),
            buffer: 128 * MB,
        },
    ]
}

/// `(median, min, max)` of a sample set.
pub(crate) fn median_min_max(samples: &mut [f64]) -> (f64, f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
    )
}

/// Run the observability experiment and write `BENCH_obs.json`.
pub fn run() {
    let compiler = Compiler::new();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    for sc in scenarios() {
        let plan = compiler
            .compile_spec(&sc.spec, &sc.topo)
            .unwrap_or_else(|e| panic!("observability: compile '{}': {e}", sc.name));
        let off_cfg = SimConfig::default().without_validation();
        let on_cfg = off_cfg.clone().with_observability();

        let mut off_s = Vec::with_capacity(ITERS);
        let mut on_s = Vec::with_capacity(ITERS);
        let mut rep_off = None;
        let mut rep_on = None;
        for _ in 0..ITERS {
            let t = std::time::Instant::now();
            let r = plan.run_with(sc.buffer, MB, &off_cfg).expect("obs-off run");
            off_s.push(t.elapsed().as_secs_f64());
            rep_off = Some(r);
            let t = std::time::Instant::now();
            let r = plan.run_with(sc.buffer, MB, &on_cfg).expect("obs-on run");
            on_s.push(t.elapsed().as_secs_f64());
            rep_on = Some(r);
        }
        let rep_off = rep_off.expect("ran");
        let rep_on = rep_on.expect("ran");

        // Attribution must be read-only: strip the payload and the two
        // reports must be byte-identical.
        let obs = rep_on.obs.clone().expect("attribution enabled");
        let mut stripped = rep_on.clone();
        stripped.obs = None;
        assert_eq!(
            stripped, rep_off,
            "'{}': attribution changed the simulation result",
            sc.name
        );

        // Hard bubbles reconcile with the engine's sync accounting.
        for (i, tb) in rep_on.tb_stats.iter().enumerate() {
            let attributed = obs.hard_bubble_ns(i as u32);
            let tol = 1e-6 * tb.sync_ns.max(1.0);
            assert!(
                (attributed - tb.sync_ns).abs() <= tol,
                "'{}' r{}tb{}: attributed {attributed} ns vs sync {} ns",
                sc.name,
                tb.rank,
                tb.tb,
                tb.sync_ns
            );
        }
        // Link timelines reconcile with the per-resource active time.
        for lt in &obs.link_timelines {
            let rs = rep_on
                .resource_stats
                .iter()
                .find(|r| r.resource == lt.resource)
                .expect("timeline for a reported resource");
            let sum: f64 = lt.active.iter().sum();
            assert!(
                (sum - rs.active_ns).abs() <= 1e-6 * rs.active_ns.max(1.0),
                "'{}' link {}: buckets sum {sum} vs active {}",
                sc.name,
                lt.resource,
                rs.active_ns
            );
        }

        let (off_med, off_min, off_max) = median_min_max(&mut off_s);
        let (on_med, on_min, on_max) = median_min_max(&mut on_s);
        let overhead = on_med / off_med - 1.0;
        // Attribution costs ~35-40% of sim wall time on these scenarios
        // (interval classification + bucketizing is real work relative to
        // a millisecond-scale run). The assertion is a leak backstop, not
        // the measurement: doubling the run would mean the instrumentation
        // started changing the hot loop's complexity. The honest number is
        // the median printed above and recorded in BENCH_obs.json.
        assert!(
            overhead < 1.0,
            "'{}': attribution overhead {:.1}% exceeds 100%",
            sc.name,
            100.0 * overhead
        );

        let totals = obs.cause_totals_ns();
        rows.push(vec![
            sc.name.to_string(),
            format!("{:.3}ms", off_med * 1e3),
            format!("{:.3}ms", on_med * 1e3),
            format!("{:+.1}%", 100.0 * overhead),
            obs.bubbles.len().to_string(),
            format!("{:.2}ms", totals[0] / 1e6),
            format!("{:.2}ms", totals[1] / 1e6),
            format!("{:.2}ms", totals[2] / 1e6),
            format!("{:.2}ms", totals[3] / 1e6),
        ]);
        let cause_json: Vec<String> = BubbleCause::ALL
            .iter()
            .zip(totals.iter())
            .map(|(c, ns)| format!("\"{}\": {ns:.1}", c.as_str()))
            .collect();
        json_rows.push(format!(
            "    {{\"scenario\": \"{}\", \"ranks\": {}, \"iters\": {ITERS}, \
             \"off_s\": {{\"median\": {off_med:.6}, \"min\": {off_min:.6}, \"max\": {off_max:.6}}}, \
             \"on_s\": {{\"median\": {on_med:.6}, \"min\": {on_min:.6}, \"max\": {on_max:.6}}}, \
             \"overhead_frac\": {overhead:.4}, \"bubbles\": {}, \
             \"cause_totals_ns\": {{{}}}, \"identical_stripped\": true}}",
            sc.name,
            sc.topo.n_ranks(),
            obs.bubbles.len(),
            cause_json.join(", "),
        ));
    }

    print_table(
        "Observability: bubble-attribution overhead and cause totals (median of 7)",
        &[
            "scenario",
            "off",
            "on",
            "overhead",
            "bubbles",
            "rendezvous",
            "dep",
            "contention",
            "startup",
        ],
        &rows,
    );
    println!(
        "attribution is read-only (reports byte-identical with the payload \
         stripped); per-TB hard bubbles reconcile with sync_ns to 1e-6."
    );

    let json = format!(
        "{{\n  \"iters\": {ITERS},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
}
