//! **Figure 11** — Custom (HM) collectives on the heterogeneous V100
//! cluster (100 Gb/s RoCE): HM-AllGather, HM-ReduceScatter and
//! HM-AllReduce across buffer sizes, NCCL vs MSCCL vs ResCCL.
//!
//! Paper shape: ResCCL beats NCCL by 1.9–4.2× and MSCCL by up to 68.2%,
//! with the largest relative wins on AllReduce.

use crate::backend_panel_with;
use rescc_algos::{
    hm_allgather, hm_allreduce, hm_reduce_scatter, nccl_rings_allgather, nccl_rings_allreduce,
    nccl_rings_reduce_scatter,
};
use rescc_topology::Topology;

/// Regenerate Figure 11.
pub fn run() {
    let topo = Topology::v100(2, 8);
    let buffers = crate::v100_sweep();
    backend_panel_with(
        "Figure 11 HM-AllGather (V100, 100G RoCE)",
        &nccl_rings_allgather(2, 8, 4),
        &hm_allgather(2, 8),
        &topo,
        &buffers,
    );
    backend_panel_with(
        "Figure 11 HM-ReduceScatter (V100, 100G RoCE)",
        &nccl_rings_reduce_scatter(2, 8, 4),
        &hm_reduce_scatter(2, 8),
        &topo,
        &buffers,
    );
    backend_panel_with(
        "Figure 11 HM-AllReduce (V100, 100G RoCE)",
        &nccl_rings_allreduce(2, 8, 4),
        &hm_allreduce(2, 8),
        &topo,
        &buffers,
    );
    println!("paper: 1.9-4.2x over NCCL; up to 68.2% over MSCCL (HM-AllReduce).");
}
