//! **Figure 9** — Synthesized AllReduce and AllGather under additional
//! topologies (2×4 and 4×4 GPUs): ResCCL vs MSCCL executing the same
//! TACCL-like algorithms.
//!
//! Paper shape: 9.8%–31.1% speedups for synthesized AllGather; up to 50.1%
//! for synthesized AllReduce.

use crate::{buffer_sweep, fmt_bytes, print_table, MB};
use rescc_algos::{taccl_like_allgather, taccl_like_allreduce};
use rescc_backends::{Backend, MscclBackend, RescclBackend};
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;

fn panel(label: &str, spec: &AlgoSpec, topo: &Topology) {
    let buffers = buffer_sweep();
    let msccl = MscclBackend::default();
    let resccl = RescclBackend::default();
    let rows: Vec<Vec<String>> = buffers
        .iter()
        .map(|buffer| {
            let m = msccl
                .run_unchecked(spec, topo, *buffer, MB)
                .expect("figure9 msccl");
            let r = resccl
                .run_unchecked(spec, topo, *buffer, MB)
                .expect("figure9 resccl");
            vec![
                fmt_bytes(*buffer),
                format!("{:.2}", m.algbw_gbps()),
                format!("{:.2}", r.algbw_gbps()),
                format!("{:.2}x", r.algbw_gbps() / m.algbw_gbps()),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 9 {label}: algorithm bandwidth (GB/s)"),
        &["buffer", "MSCCL", "ResCCL", "speedup"],
        &rows,
    );
}

/// Regenerate Figure 9.
pub fn run() {
    panel(
        "(a) synthesized AllGather, 2x4",
        &taccl_like_allgather(2, 4),
        &Topology::a100(2, 4),
    );
    panel(
        "(b) synthesized AllGather, 4x4",
        &taccl_like_allgather(4, 4),
        &Topology::a100(4, 4),
    );
    panel(
        "(c) synthesized AllReduce, 2x4",
        &taccl_like_allreduce(2, 4),
        &Topology::a100(2, 4),
    );
    panel(
        "(d) synthesized AllReduce, 4x4",
        &taccl_like_allreduce(4, 4),
        &Topology::a100(4, 4),
    );
    println!("paper: 9.8-31.1% AG speedups; up to 50.1% AR speedups over MSCCL.");
}
