//! **Analytic model validation** (beyond the paper's figures): the §3
//! closed forms (Eq. 3 algorithm-level, Eq. 5 task-level) predict how the
//! three execution granularities scale with the micro-batch count `n`;
//! this experiment checks those predictions against the simulator.
//!
//! Two checks:
//!
//! 1. **Linearity** — Eq. 3/5 say completion is affine in `n`
//!    (`T(n) = fill + n · steady`); measured completions at n ∈ {8..128}
//!    must fit an affine model with small residuals.
//! 2. **Limit ratio** (Eq. 6) — as `n` grows, the task-level/algorithm-
//!    level ratio must converge toward the bubble ratio: task-level strictly
//!    faster, and the measured per-micro-batch steady-state cost lower.

use crate::{print_table, MB};
use rescc_algos::hm_allgather;
use rescc_backends::{Backend, NcclBackend, RescclBackend};
use rescc_topology::Topology;

fn affine_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    // Least squares y = a + b x; returns (a, b, max relative residual).
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    let max_rel = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| ((a + b * x - y) / y).abs())
        .fold(0.0, f64::max);
    (a, b, max_rel)
}

/// Run the analytic-model validation.
pub fn run() {
    let topo = Topology::a100(2, 4);
    let spec = hm_allgather(2, 4);
    let n_chunks = spec.n_chunks() as u64;

    let resccl = RescclBackend::default();
    let nccl = NcclBackend::default();

    let ns: Vec<u64> = vec![8, 16, 32, 64, 128];
    let mut xs = Vec::new();
    let mut task_level = Vec::new();
    let mut algo_level = Vec::new();
    let mut rows = Vec::new();
    for &n in &ns {
        let buffer = n * n_chunks * MB;
        let tr = resccl
            .run_unchecked(&spec, &topo, buffer, MB)
            .expect("resccl run")
            .sim
            .completion_ns;
        let ta = nccl
            .run_unchecked(&spec, &topo, buffer, MB)
            .expect("nccl run")
            .sim
            .completion_ns;
        xs.push(n as f64);
        task_level.push(tr);
        algo_level.push(ta);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}ms", tr / 1e6),
            format!("{:.2}ms", ta / 1e6),
            format!("{:.2}x", ta / tr),
        ]);
    }
    print_table(
        "Analytic validation: completion vs micro-batch count n (HM-AG, 2x4)",
        &["n", "task-level (Eq.5)", "algorithm-level (Eq.3)", "ratio"],
        &rows,
    );

    let (fill_p, steady_p, res_p) = affine_fit(&xs, &task_level);
    let (fill_a, steady_a, res_a) = affine_fit(&xs, &algo_level);
    println!(
        "task-level fit:      T(n) = {:.1}us + n * {:.1}us   (max residual {:.2}%)",
        fill_p / 1e3,
        steady_p / 1e3,
        100.0 * res_p
    );
    println!(
        "algorithm-level fit: T(n) = {:.1}us + n * {:.1}us   (max residual {:.2}%)",
        fill_a / 1e3,
        steady_a / 1e3,
        100.0 * res_a
    );
    println!(
        "Eq. 6 asymptotics: per-micro-batch steady cost ratio = {:.2}x \
         (task-level steady cost must be lower: {})",
        steady_a / steady_p,
        if steady_p < steady_a { "yes" } else { "NO" },
    );
    assert!(
        res_p < 0.15 && res_a < 0.15,
        "completions must be near-affine in n (Eq. 3/5)"
    );
    assert!(steady_p < steady_a, "Eq. 6 must favor task-level");
}
