//! **Figure 2** — Time-cost breakdown of primitives in custom and
//! synthesized single-node AllReduce on the existing (MSCCL-model) CCL
//! runtime.
//!
//! Paper observations: TBs on the additional channels remain idle up to
//! 98.2% of the time (a), and synchronization blocking reaches 67.1% of TB
//! lifetime (b).

use crate::{pct, print_table, MB};
use rescc_algos::{hm_allreduce, taccl_like_allreduce};
use rescc_backends::{Backend, MscclBackend};
use rescc_topology::Topology;

/// Regenerate Figure 2.
pub fn run() {
    let topo = Topology::a100(1, 8);
    let backend = MscclBackend::default();
    for (label, spec) in [
        ("(a) custom (HM) AllReduce", hm_allreduce(1, 8)),
        (
            "(b) synthesized (TACCL-like) AllReduce",
            taccl_like_allreduce(1, 8),
        ),
    ] {
        // A typical synchronization size: 16 MB yields two micro-batches,
        // so half of the four channel TBs opened per connection get no
        // work at all — exactly the over-provisioned extra channels the
        // paper measured at 98.2% idle.
        let rep = backend
            .run_unchecked(&spec, &topo, 16 * MB, MB)
            .expect("figure2 run");
        // Per-TB breakdown on rank 0 (all ranks are symmetric for (a)).
        let rank0: Vec<_> = rep.sim.tb_stats.iter().filter(|t| t.rank == 0).collect();
        let rows: Vec<Vec<String>> = rank0
            .iter()
            .map(|t| {
                vec![
                    format!("TB{}", t.tb),
                    format!("{:.2}ms", t.busy_ns / 1e6),
                    format!("{:.2}ms", t.sync_ns / 1e6),
                    pct(t.idle_ratio()),
                    t.n_invocations.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 2 {label}: rank-0 TB time breakdown (MSCCL-model)"),
            &[
                "TB",
                "execution",
                "sync-blocked",
                "idle ratio",
                "invocations",
            ],
            &rows,
        );
        let max_idle = rep.sim.max_idle_ratio();
        let idle_channel_tbs = rep
            .sim
            .tb_stats
            .iter()
            .filter(|t| t.idle_ratio() > 0.9)
            .count();
        println!(
            "max TB idle ratio = {} | TBs idle >90% of their lifetime: {}/{} | avg idle = {}",
            pct(max_idle),
            idle_channel_tbs,
            rep.sim.tb_stats.len(),
            pct(rep.sim.avg_idle_ratio()),
        );
    }
    println!("paper: extra-channel TBs idle up to 98.2% (a); sync blocking reaches 67.1% (b).");
}
