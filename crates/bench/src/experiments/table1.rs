//! **Table 1** — Global link utilization during the execution of existing
//! expert and synthesized algorithms on the MSCCL-model backend.
//!
//! Paper values (for shape comparison): utilizations fall from ~70–77%
//! (expert MSCCLang algorithms) to ~30–52% (TACCL/TECCL synthesized), and
//! degrade as the cluster grows from 1 to 4 servers.

use crate::{fmt_bytes, pct, print_table, MB};
use rescc_algos::{
    hm_allgather, hm_allreduce, taccl_like_allgather, taccl_like_allreduce, teccl_like_allgather,
};
use rescc_backends::{Backend, MscclBackend};
use rescc_topology::Topology;

/// Regenerate Table 1.
pub fn run() {
    let buffer = 256 * MB;
    let backend = MscclBackend::default();
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4] {
        let g = 8;
        let topo = Topology::a100(nodes, g);
        let scale = format!("{} Server(s) ({} GPUs)", nodes, nodes * g);
        let algos = [
            ("MS-AG", hm_allgather(nodes, g)),
            ("MS-AR", hm_allreduce(nodes, g)),
            ("TA-AG", taccl_like_allgather(nodes, g)),
            ("TA-AR", taccl_like_allreduce(nodes, g)),
            ("TE-AG", teccl_like_allgather(nodes * g)),
        ];
        let mut row = vec![scale];
        for (_, spec) in &algos {
            let rep = backend
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("table1 run");
            row.push(pct(rep.sim.global_link_utilization()));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Table 1: global link utilization on the MSCCL-model backend (buffer {})",
            fmt_bytes(buffer)
        ),
        &["Topo Scale", "MS-AG", "MS-AR", "TA-AG", "TA-AR", "TE-AG"],
        &rows,
    );
    println!(
        "paper: expert (MS) algorithms utilize links far better than synthesized \
         (TA/TE) ones, and utilization drops with scale."
    );
}
