//! **Table 3** — TB resource utilization: ResCCL vs MSCCL running the same
//! expert and synthesized algorithms on Topo1–Topo4.
//!
//! Metrics per (backend, algorithm, topology): total TB count, fraction of
//! TB occupancy spent communicating, average idle ratio, maximum idle
//! ratio. Paper shape: ResCCL uses ≤½ the TBs, sustains >85–99% comm time
//! on expert algorithms, and its max idle stays bounded while MSCCL's
//! reaches 99.9%.

use crate::{pct, print_table, MB};
use rescc_algos::{hm_allgather, hm_allreduce, taccl_like_allgather, taccl_like_allreduce};
use rescc_backends::{Backend, MscclBackend, RescclBackend, RunReport};
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;

fn topo_shape(i: usize) -> (u32, u32) {
    match i {
        1 => (2, 4),
        2 => (2, 8),
        3 => (4, 4),
        4 => (4, 8),
        _ => unreachable!(),
    }
}

fn cells(rep: &RunReport) -> [String; 4] {
    [
        rep.total_tbs.to_string(),
        pct(rep.sim.avg_comm_ratio()),
        pct(rep.sim.avg_idle_ratio()),
        pct(rep.sim.max_idle_ratio()),
    ]
}

/// An algorithm constructor, parameterized by (nodes, gpus-per-node).
type AlgoCtor = fn(u32, u32) -> AlgoSpec;

/// Regenerate Table 3.
pub fn run() {
    let algos: [(&str, AlgoCtor); 4] = [
        ("Expert AllReduce", hm_allreduce),
        ("Expert AllGather", hm_allgather),
        ("Synth AllReduce", taccl_like_allreduce),
        ("Synth AllGather", taccl_like_allgather),
    ];
    let msccl = MscclBackend::default();
    let resccl = RescclBackend::default();

    for (algo_name, make) in algos {
        let mut rows = Vec::new();
        for (backend_name, backend) in [("MSCCL", &msccl as &dyn Backend), ("ResCCL", &resccl)] {
            for metric in 0..4usize {
                let metric_name = ["# TB", "Comm Time", "Avg Idle", "Max Idle"][metric];
                let mut row = vec![backend_name.to_string(), metric_name.to_string()];
                for topo_i in 1..=4 {
                    let (nodes, g) = topo_shape(topo_i);
                    let spec = make(nodes, g);
                    let rep = backend
                        .run_unchecked(&spec, &Topology::a100(nodes, g), 128 * MB, MB)
                        .expect("table3 run");
                    row.push(cells(&rep)[metric].clone());
                }
                rows.push(row);
            }
        }
        print_table(
            &format!("Table 3 — {algo_name}: TB resource utilization"),
            &[
                "Backend",
                "Metric",
                "Topo1 (2x4)",
                "Topo2 (2x8)",
                "Topo3 (4x4)",
                "Topo4 (4x8)",
            ],
            &rows,
        );
    }
    println!(
        "paper: ResCCL reduces TB consumption by up to 77.8%, sustains >92% comm \
         time on expert AllGather, max idle ≤ 21.4% vs MSCCL's 99.9%."
    );
}
