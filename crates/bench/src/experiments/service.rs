//! **Plan service** — concurrent dispatch benchmark behind
//! `BENCH_service.json`.
//!
//! N client threads issue collective dispatches against one shared plan
//! cache, across the Table-3 topologies:
//!
//! * **hit path** — every request pre-warmed; measures p50/p99 dispatch
//!   latency and throughput vs thread count for the sharded service
//!   *and* the old single-mutex cache (`SingleMutexPlanCache`, kept as
//!   the reference oracle), plus their throughput ratio at the top
//!   thread count.
//! * **mixed** — hot/cold request streams against a byte-budgeted shared
//!   cache: most dispatches hit, a steady trickle of never-seen
//!   fingerprints compiles, and eviction pressure runs throughout.
//! * **singleflight** — K threads race one cold fingerprint per round;
//!   the process-wide `phase_counters` prove exactly one compile ran per
//!   round (hard-asserted — this is the dedup guarantee, independent of
//!   scheduling), and the same race against the reference cache reports
//!   how many duplicate compiles the old design admits.
//!
//! Both dispatch paths go through `get_or_compile_keyed` with
//! precomputed fingerprints: hashing the spec costs ~µs, is perfectly
//! parallel, and would otherwise mask the lock behavior this benchmark
//! exists to measure.
//!
//! Scaling *assertions* (sharded ≥ 2x the mutex reference at 8 threads;
//! 1.5x+ self-speedup from 1→4 threads) need real cores: they are
//! enforced only when `std::thread::available_parallelism()` reports ≥ 4,
//! and the skip is logged, not silent. The ratios themselves are always
//! measured and reported.

use crate::{print_table, MB};
use rescc_algos::hm_allreduce;
use rescc_core::{phase_counters, plan_fingerprint, Compiler, PlanCache, SingleMutexPlanCache};
use rescc_ir::MicroBatchPlan;
use rescc_lang::AlgoSpec;
use rescc_topology::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::thread;
use std::time::Instant;

/// Client thread counts swept by the full experiment.
const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];
/// Warm dispatches per thread in the hit-path phase.
const HIT_OPS: usize = 20_000;
/// Dispatches per thread in the mixed phase.
const MIXED_OPS: usize = 512;
/// Every `COLD_EVERY`-th mixed dispatch is a never-seen fingerprint.
const COLD_EVERY: usize = 64;
/// Singleflight race rounds and racers per round.
const RACE_ROUNDS: usize = 4;
const RACERS: usize = 8;

/// One dispatchable request: a precomputed plan key plus everything the
/// compile closure needs on a cold path.
struct Req {
    key: u64,
    spec: AlgoSpec,
    topo: Topology,
}

impl Req {
    fn new(
        compiler: &Compiler,
        topo: Topology,
        spec: AlgoSpec,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> Self {
        let mb = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk_bytes);
        let key = plan_fingerprint(compiler, &spec, &topo, &mb);
        Req { key, spec, topo }
    }
}

/// The hot working set: Table-3 topologies × four chunkings.
fn hot_set(compiler: &Compiler) -> Vec<Req> {
    let shapes: [(u32, u32); 3] = [(2, 4), (2, 8), (4, 4)];
    let mut out = Vec::new();
    for &(nodes, gpus) in &shapes {
        for c in 0..4u64 {
            out.push(Req::new(
                compiler,
                Topology::a100(nodes, gpus),
                hm_allreduce(nodes, gpus),
                64 * MB,
                MB + c * 256 * 1024,
            ));
        }
    }
    out
}

/// A cold request nobody has dispatched before. `salt` must be
/// process-unique per call site. Distinctness comes from the buffer
/// size with a small fixed chunk: `MicroBatchPlan::plan` clamps the
/// chunk to `buffer / n_chunks`, so varying the *chunk* stops producing
/// new fingerprints past that bound, while every 32 KiB buffer step
/// changes the invocation count and therefore the plan key.
fn cold_req(compiler: &Compiler, salt: u64) -> Req {
    Req::new(
        compiler,
        Topology::a100(2, 4),
        hm_allreduce(2, 4),
        64 * MB + salt * 32 * 1024,
        4096,
    )
}

/// Run `threads` clients, each issuing `ops` dispatches through `op`,
/// started together on a barrier. Returns (wall seconds of the slowest
/// client, all per-op latencies in ns, sorted).
fn run_clients(threads: usize, ops: usize, op: &(impl Fn(usize, usize) + Sync)) -> (f64, Vec<u64>) {
    let start = Barrier::new(threads);
    let per_thread: Vec<(f64, Vec<u64>)> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = &start;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(ops);
                    start.wait();
                    let t0 = Instant::now();
                    for i in 0..ops {
                        let o0 = Instant::now();
                        op(t, i);
                        lats.push(o0.elapsed().as_nanos() as u64);
                    }
                    (t0.elapsed().as_secs_f64(), lats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = per_thread.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let mut lats: Vec<u64> = per_thread.into_iter().flat_map(|r| r.1).collect();
    lats.sort_unstable();
    (wall, lats)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One hit-path measurement row.
struct HitRow {
    threads: usize,
    throughput_mops: f64,
    p50_ns: u64,
    p99_ns: u64,
}

impl HitRow {
    fn json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"throughput_mops\": {:.4}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            self.threads, self.throughput_mops, self.p50_ns, self.p99_ns
        )
    }
}

/// Measure pure-hit dispatch through `dispatch` (a key-indexed closure)
/// at one thread count.
fn measure_hits(
    threads: usize,
    ops: usize,
    hot: &[Req],
    dispatch: &(impl Fn(&Req) + Sync),
) -> HitRow {
    let (wall, lats) = run_clients(threads, ops, &|t, i| {
        dispatch(&hot[(t + i) % hot.len()]);
    });
    HitRow {
        threads,
        throughput_mops: (threads * ops) as f64 / wall / 1e6,
        p50_ns: percentile(&lats, 0.50),
        p99_ns: percentile(&lats, 0.99),
    }
}

fn prewarm(cache: &PlanCache, compiler: &Compiler, hot: &[Req]) {
    for r in hot {
        cache
            .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
            .expect("prewarm");
    }
}

/// The singleflight race: `RACERS` threads dispatch one cold fingerprint
/// simultaneously. Returns (compiles observed via phase counters,
/// coalesced serves). The sharded cache must observe exactly 1 compile;
/// callers assert.
fn race_once(cache: &PlanCache, compiler: &Compiler, salt: u64) -> (u64, u64) {
    let req = cold_req(compiler, salt);
    let before_stats = cache.stats();
    let before = phase_counters::snapshot();
    let start = Barrier::new(RACERS);
    thread::scope(|s| {
        for _ in 0..RACERS {
            let (cache, compiler, req, start) = (cache, compiler, &req, &start);
            s.spawn(move || {
                start.wait();
                cache
                    .get_or_compile_keyed(req.key, || compiler.compile_spec(&req.spec, &req.topo))
                    .expect("race dispatch");
            });
        }
    });
    let ran = phase_counters::snapshot().since(&before);
    (
        ran.scheduling,
        cache.stats().coalesced - before_stats.coalesced,
    )
}

/// The same race against the old single-mutex cache: counts how many
/// times the compile closure actually ran (the old design admits
/// duplicates — "last insert wins").
fn race_reference(compiler: &Compiler, salt: u64) -> u64 {
    let cache = SingleMutexPlanCache::new();
    let req = cold_req(compiler, salt);
    let compiles = AtomicU64::new(0);
    let start = Barrier::new(RACERS);
    thread::scope(|s| {
        for _ in 0..RACERS {
            let (cache, compiler, req, start, compiles) =
                (&cache, compiler, &req, &start, &compiles);
            s.spawn(move || {
                start.wait();
                cache
                    .get_or_compile_keyed(req.key, || {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        compiler.compile_spec(&req.spec, &req.topo)
                    })
                    .expect("reference race dispatch");
            });
        }
    });
    compiles.load(Ordering::SeqCst)
}

fn parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run the full plan-service benchmark and write `BENCH_service.json`.
pub fn run() {
    let compiler = Compiler::new();
    let hot = hot_set(&compiler);
    let cores = parallelism();

    // ---- Phase 1: pure-hit scaling, sharded vs single-mutex reference.
    let sharded = PlanCache::new();
    prewarm(&sharded, &compiler, &hot);
    let reference = SingleMutexPlanCache::new();
    for r in &hot {
        reference
            .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
            .expect("prewarm reference");
    }

    let mut sharded_rows = Vec::new();
    let mut mutex_rows = Vec::new();
    for &t in &THREAD_GRID {
        sharded_rows.push(measure_hits(t, HIT_OPS, &hot, &|r: &Req| {
            sharded
                .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
                .expect("sharded hit");
        }));
        mutex_rows.push(measure_hits(t, HIT_OPS, &hot, &|r: &Req| {
            reference
                .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
                .expect("mutex hit");
        }));
    }
    let at8 = THREAD_GRID.len() - 1;
    let ratio_at_8 = sharded_rows[at8].throughput_mops / mutex_rows[at8].throughput_mops;
    let self_scaling_1_to_4 = sharded_rows[2].throughput_mops / sharded_rows[0].throughput_mops;
    assert_eq!(
        sharded.stats().misses,
        hot.len() as u64,
        "hit phase must never compile"
    );

    // ---- Phase 2: mixed hot/cold traffic against a budgeted cache.
    let mut mixed_rows = Vec::new();
    let mut mixed_json = Vec::new();
    let mut cold_salt = 0u64;
    // Budget = 4x the hot set: the per-shard slice (1/16th of the budget)
    // comfortably holds the hottest shard's resident plans, so hits
    // dominate, while the cold tail churns and gets evicted.
    let hot_cost: u64 = hot
        .iter()
        .map(|r| {
            let plan = compiler.compile_spec(&r.spec, &r.topo).expect("cost probe");
            rescc_core::plan_cost_bytes(&plan)
        })
        .sum();
    for &t in &THREAD_GRID {
        let cache = PlanCache::new().with_byte_budget(hot_cost * 4);
        prewarm(&cache, &compiler, &hot);
        let salt_base = cold_salt;
        let (wall, lats) = run_clients(t, MIXED_OPS, &|tid, i| {
            if i % COLD_EVERY == COLD_EVERY - 1 {
                let salt = salt_base + (tid * MIXED_OPS + i) as u64;
                let req = cold_req(&compiler, salt);
                cache
                    .get_or_compile_keyed(req.key, || compiler.compile_spec(&req.spec, &req.topo))
                    .expect("cold dispatch");
            } else {
                let r = &hot[(tid + i) % hot.len()];
                cache
                    .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
                    .expect("hot dispatch");
            }
        });
        cold_salt += (t * MIXED_OPS) as u64;
        let st = cache.stats();
        assert_eq!(
            st.hits + st.misses,
            (t * MIXED_OPS + hot.len()) as u64,
            "every dispatch is a hit or a miss"
        );
        let row = HitRow {
            threads: t,
            throughput_mops: (t * MIXED_OPS) as f64 / wall / 1e6,
            p50_ns: percentile(&lats, 0.50),
            p99_ns: percentile(&lats, 0.99),
        };
        mixed_json.push(format!(
            "{{\"threads\": {}, \"throughput_mops\": {:.4}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}}",
            t,
            row.throughput_mops,
            row.p50_ns,
            row.p99_ns,
            st.hits,
            st.misses,
            st.coalesced,
            st.evictions,
            st.resident_bytes
        ));
        mixed_rows.push((row, st));
    }

    // ---- Phase 3: singleflight dedup races.
    let race_cache = PlanCache::new();
    let mut compiles_total = 0u64;
    let mut coalesced_total = 0u64;
    for round in 0..RACE_ROUNDS {
        let (compiles, coalesced) = race_once(&race_cache, &compiler, 500_000 + round as u64);
        assert_eq!(
            compiles, 1,
            "singleflight must admit exactly one compile per round"
        );
        compiles_total += compiles;
        coalesced_total += coalesced;
    }
    let dedup_ratio = 1.0 - compiles_total as f64 / (RACE_ROUNDS * RACERS) as f64;
    let mut reference_duplicates = 0u64;
    for round in 0..RACE_ROUNDS {
        reference_duplicates += race_reference(&compiler, 600_000 + round as u64);
    }

    // ---- Scaling gates (need real cores; ratios are reported always).
    let asserted_scaling = cores >= 4;
    if asserted_scaling {
        assert!(
            ratio_at_8 >= 2.0,
            "sharded hit path must be ≥2x the single-mutex reference at 8 threads (got {ratio_at_8:.2}x)"
        );
        assert!(
            self_scaling_1_to_4 > 1.5,
            "sharded hit path must scale >1.5x from 1→4 threads (got {self_scaling_1_to_4:.2}x)"
        );
    } else {
        println!(
            "plan-service: scaling assertions skipped ({cores} core(s) available, need ≥4); \
             ratios measured and reported anyway"
        );
    }

    // ---- Report.
    let mut rows = Vec::new();
    for (i, &t) in THREAD_GRID.iter().enumerate() {
        let (s, m, (mx, st)) = (&sharded_rows[i], &mutex_rows[i], &mixed_rows[i]);
        rows.push(vec![
            t.to_string(),
            format!("{:.2}", s.throughput_mops),
            format!("{}/{}", s.p50_ns, s.p99_ns),
            format!("{:.2}", m.throughput_mops),
            format!("{}/{}", m.p50_ns, m.p99_ns),
            format!("{:.2}x", s.throughput_mops / m.throughput_mops),
            format!("{:.3}", mx.throughput_mops),
            st.evictions.to_string(),
        ]);
    }
    print_table(
        "Plan service: dispatch throughput (Mops/s) and p50/p99 latency (ns) vs client threads",
        &[
            "threads", "sharded", "p50/p99", "1-mutex", "p50/p99", "ratio", "mixed", "evict",
        ],
        &rows,
    );
    println!(
        "singleflight: {RACE_ROUNDS} rounds x {RACERS} racers -> {compiles_total} compiles \
         ({coalesced_total} coalesced, dedup ratio {dedup_ratio:.3}); \
         single-mutex reference compiled {reference_duplicates}x for the same races"
    );

    let json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"asserted_scaling\": {asserted_scaling},\n  \
         \"hot_plans\": {},\n  \"hit_ops_per_thread\": {HIT_OPS},\n  \"threads\": [1, 2, 4, 8],\n  \
         \"hit_path\": {{\n    \"sharded\": [\n      {}\n    ],\n    \"single_mutex\": [\n      {}\n    ],\n    \
         \"sharded_over_mutex_at_8_threads\": {ratio_at_8:.3},\n    \
         \"sharded_self_scaling_1_to_4\": {self_scaling_1_to_4:.3}\n  }},\n  \
         \"mixed\": [\n    {}\n  ],\n  \
         \"singleflight\": {{\"rounds\": {RACE_ROUNDS}, \"racers\": {RACERS}, \
         \"compiles\": {compiles_total}, \"coalesced\": {coalesced_total}, \
         \"dedup_ratio\": {dedup_ratio:.3}, \
         \"reference_duplicate_compiles\": {reference_duplicates}}}\n}}\n",
        hot.len(),
        sharded_rows.iter().map(|r| r.json()).collect::<Vec<_>>().join(",\n      "),
        mutex_rows.iter().map(|r| r.json()).collect::<Vec<_>>().join(",\n      "),
        mixed_json.join(",\n    "),
    );
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("wrote BENCH_service.json"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }
}

/// CI smoke gate: a small-thread-count slice of the benchmark with the
/// hard guarantees asserted — singleflight dedup always, hit-path
/// scaling when the runner has ≥4 cores (skip is logged loudly).
pub fn smoke() {
    let compiler = Compiler::new();
    let hot = hot_set(&compiler);
    let cache = PlanCache::new();
    prewarm(&cache, &compiler, &hot);

    let dispatch = |r: &Req| {
        cache
            .get_or_compile_keyed(r.key, || compiler.compile_spec(&r.spec, &r.topo))
            .expect("smoke hit");
    };
    let one = measure_hits(1, 8_000, &hot, &dispatch);
    let four = measure_hits(4, 8_000, &hot, &dispatch);
    let scaling = four.throughput_mops / one.throughput_mops;
    assert_eq!(
        cache.stats().misses,
        hot.len() as u64,
        "smoke hit phase must never compile"
    );
    println!(
        "service-smoke: hit path {:.2} -> {:.2} Mops/s (1 -> 4 threads, {scaling:.2}x)",
        one.throughput_mops, four.throughput_mops
    );
    let cores = parallelism();
    if cores >= 4 {
        assert!(
            scaling > 1.5,
            "hit-path throughput must scale >1.5x from 1 to 4 threads (got {scaling:.2}x)"
        );
        println!("service-smoke: scaling gate PASS ({scaling:.2}x > 1.5x)");
    } else {
        println!(
            "service-smoke: scaling gate skipped ({cores} core(s) available, need >=4); \
             dedup gate still enforced"
        );
    }

    let (compiles, coalesced) = race_once(&cache, &compiler, 700_000);
    assert_eq!(
        compiles, 1,
        "singleflight must admit exactly one compile for {RACERS} racers"
    );
    println!(
        "service-smoke: singleflight gate PASS ({RACERS} racers -> 1 compile, \
         {coalesced} coalesced)"
    );
}
