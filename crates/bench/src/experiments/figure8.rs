//! **Figure 8** — Expert-designed AllReduce and AllGather under additional
//! topologies: two servers × 4 GPUs and four servers × 4 GPUs.
//!
//! Paper shape: ResCCL improves AllGather bandwidth by 1.6–2.3× over NCCL
//! and 6.8%–23.1% over MSCCL; AllReduce up to 3.7× over NCCL and 2.4× over
//! MSCCL.

use crate::backend_panel;
use rescc_algos::{hm_allgather, hm_allreduce, nccl_rings_allgather, nccl_rings_allreduce};
use rescc_topology::Topology;

/// Regenerate Figure 8.
pub fn run() {
    let t2x4 = Topology::a100(2, 4);
    let t4x4 = Topology::a100(4, 4);
    backend_panel(
        "Figure 8 (a) expert AllGather, 2x4",
        &nccl_rings_allgather(2, 4, 2),
        &hm_allgather(2, 4),
        &t2x4,
    );
    backend_panel(
        "Figure 8 (b) expert AllGather, 4x4",
        &nccl_rings_allgather(4, 4, 2),
        &hm_allgather(4, 4),
        &t4x4,
    );
    backend_panel(
        "Figure 8 (c) expert AllReduce, 2x4",
        &nccl_rings_allreduce(2, 4, 2),
        &hm_allreduce(2, 4),
        &t2x4,
    );
    backend_panel(
        "Figure 8 (d) expert AllReduce, 4x4",
        &nccl_rings_allreduce(4, 4, 2),
        &hm_allreduce(4, 4),
        &t4x4,
    );
    println!("paper: 1.6-2.3x over NCCL on AG, up to 3.7x on AR; 6.8-23.1% over MSCCL on AG.");
}
