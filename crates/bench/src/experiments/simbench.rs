//! **Simbench** — simulator wall-time benchmark behind `BENCH_sim.json`.
//!
//! Regression fix: the committed `BENCH_sim.json` used to be produced by
//! a single-iteration benchmark, so scheduler noise could (and did, for
//! the `table3-2x8` and `table3-4x4` scenarios) make the *warm* path —
//! which skips compilation entirely — look slower than the cold path.
//! This generator runs every scenario `N = 5` times per configuration
//! and reports the **median with min/max spread**, making the committed
//! numbers robust to single-run outliers; it also asserts the sane
//! ordering (warm median ≤ cold median) that the old file violated.
//!
//! * **cold** — full pipeline per iteration: compile the spec, then
//!   simulate.
//! * **warm** — the plan compiled once up front, per-iteration cost is
//!   simulation only.
//!
//! Large 1024-rank stress scenarios take minutes and are gated behind
//! `RESCC_BENCH_STRESS=1`; when the gate is off that is logged, not
//! silently skipped.

use super::observability::median_min_max;
use crate::{print_table, MB};
use rescc_algos::{hm_allreduce, ring_allgather};
use rescc_core::Compiler;
use rescc_lang::AlgoSpec;
use rescc_sim::SimConfig;
use rescc_topology::{ClusterSpec, FabricParams, LinkParams, Topology};

const ITERS: usize = 5;

struct Scenario {
    name: &'static str,
    topo: Topology,
    spec: AlgoSpec,
    buffer: u64,
}

/// The oversubscribed single-NIC P2P fabric of Figure 4.
fn fig4_topo() -> Topology {
    Topology::new(
        "fig4-p2p",
        ClusterSpec {
            n_nodes: 2,
            gpus_per_node: 1,
            nics_per_node: 1,
        },
        FabricParams {
            inter: LinkParams::new(25.0, 10.0, 4),
            ..FabricParams::a100()
        },
    )
}

fn scenarios(stress: bool) -> Vec<Scenario> {
    let mut out = vec![
        Scenario {
            name: "fig4-oversub",
            topo: fig4_topo(),
            spec: ring_allgather(2),
            buffer: 256 * MB,
        },
        Scenario {
            name: "table3-2x4",
            topo: Topology::a100(2, 4),
            spec: hm_allreduce(2, 4),
            buffer: 128 * MB,
        },
        Scenario {
            name: "table3-2x8",
            topo: Topology::a100(2, 8),
            spec: hm_allreduce(2, 8),
            buffer: 64 * MB,
        },
        Scenario {
            name: "table3-4x4",
            topo: Topology::a100(4, 4),
            spec: hm_allreduce(4, 4),
            buffer: 64 * MB,
        },
        Scenario {
            name: "table3-4x8",
            topo: Topology::a100(4, 8),
            spec: hm_allreduce(4, 8),
            buffer: 32 * MB,
        },
    ];
    if stress {
        out.push(Scenario {
            name: "table3-128x8-stress",
            topo: Topology::a100(128, 8),
            spec: hm_allreduce(128, 8),
            buffer: 32 * MB,
        });
    }
    out
}

/// Run the simulator benchmark and write `BENCH_sim.json`.
pub fn run() {
    let stress = std::env::var("RESCC_BENCH_STRESS").map(|v| v == "1") == Ok(true);
    if !stress {
        println!("simbench: stress scenarios skipped (set RESCC_BENCH_STRESS=1 to include)");
    }
    let compiler = Compiler::new();
    let cfg = SimConfig::default().without_validation();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    for sc in scenarios(stress) {
        let warm_plan = compiler
            .compile_spec(&sc.spec, &sc.topo)
            .unwrap_or_else(|e| panic!("simbench: compile '{}': {e}", sc.name));
        let reference = warm_plan
            .run_with(sc.buffer, MB, &cfg)
            .unwrap_or_else(|e| panic!("simbench: run '{}': {e}", sc.name));

        let mut cold_s = Vec::with_capacity(ITERS);
        let mut warm_s = Vec::with_capacity(ITERS);
        let mut identical = true;
        for _ in 0..ITERS {
            let t = std::time::Instant::now();
            let plan = compiler.compile_spec(&sc.spec, &sc.topo).expect("compile");
            let rep = plan.run_with(sc.buffer, MB, &cfg).expect("cold run");
            cold_s.push(t.elapsed().as_secs_f64());
            identical &= rep == reference;

            let t = std::time::Instant::now();
            let rep = warm_plan.run_with(sc.buffer, MB, &cfg).expect("warm run");
            warm_s.push(t.elapsed().as_secs_f64());
            identical &= rep == reference;
        }
        assert!(identical, "'{}': replays diverged", sc.name);

        let (cold_med, cold_min, cold_max) = median_min_max(&mut cold_s);
        let (warm_med, warm_min, warm_max) = median_min_max(&mut warm_s);
        // The regression this file guards against: warm skips the whole
        // compile pipeline, so its median can never legitimately exceed
        // the cold median.
        assert!(
            warm_med <= cold_med,
            "'{}': warm median {warm_med:.6}s slower than cold {cold_med:.6}s",
            sc.name
        );

        rows.push(vec![
            sc.name.to_string(),
            sc.topo.n_ranks().to_string(),
            reference.n_invocations.to_string(),
            format!(
                "{:.3}ms [{:.3}, {:.3}]",
                cold_med * 1e3,
                cold_min * 1e3,
                cold_max * 1e3
            ),
            format!(
                "{:.3}ms [{:.3}, {:.3}]",
                warm_med * 1e3,
                warm_min * 1e3,
                warm_max * 1e3
            ),
            format!("{:.2}x", cold_med / warm_med),
        ]);
        json_rows.push(format!(
            "    {{\"name\": \"{}\", \"ranks\": {}, \"invocations\": {}, \
             \"cold_s\": {{\"median\": {cold_med:.6}, \"min\": {cold_min:.6}, \"max\": {cold_max:.6}}}, \
             \"warm_s\": {{\"median\": {warm_med:.6}, \"min\": {warm_min:.6}, \"max\": {warm_max:.6}}}, \
             \"cold_over_warm\": {:.3}, \"identical\": true}}",
            sc.name,
            sc.topo.n_ranks(),
            reference.n_invocations,
            cold_med / warm_med,
        ));
    }

    print_table(
        "Simbench: cold (compile+sim) vs warm (cached plan) wall time, median of 5 [min, max]",
        &[
            "scenario",
            "ranks",
            "invocations",
            "cold",
            "warm",
            "cold/warm",
        ],
        &rows,
    );
    println!("medians over {ITERS} iterations; warm ≤ cold is asserted, not assumed.");

    let json = format!(
        "{{\n  \"iters\": {ITERS},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    match std::fs::write("BENCH_sim.json", &json) {
        Ok(()) => println!("wrote BENCH_sim.json"),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
}
