//! **Figure 3** — Runtime interpreter vs direct kernel execution.
//!
//! Paper observation: interpreting the algorithm at runtime costs 17.1% of
//! performance on average.

use crate::{fmt_bytes, print_table, MB};
use rescc_algos::{hm_allgather, hm_allreduce, taccl_like_allgather};
use rescc_backends::{Backend, MscclBackend};
use rescc_topology::Topology;

/// Regenerate Figure 3.
pub fn run() {
    let topo = Topology::a100(2, 8);
    // The Fig. 3 experiment isolates runtime overhead on the minimal
    // (single-channel) instance, where per-invocation interpretation sits
    // on the critical path instead of hiding behind channel parallelism.
    let interpreted = MscclBackend {
        n_channels: 1,
        ..MscclBackend::default()
    };
    let direct = MscclBackend {
        n_channels: 1,
        interpreter_overhead_ns: 0.0,
        ..MscclBackend::default()
    };
    let cases = [
        ("HM-AllGather", hm_allgather(2, 8)),
        ("HM-AllReduce", hm_allreduce(2, 8)),
        ("TACCL-like-AG", taccl_like_allgather(2, 8)),
    ];
    let mut rows = Vec::new();
    let mut losses = Vec::new();
    for (name, spec) in &cases {
        for buffer in [64 * MB, 256 * MB] {
            let ti = interpreted
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure3 interpreted")
                .sim
                .completion_ns;
            let td = direct
                .run_unchecked(spec, &topo, buffer, MB)
                .expect("figure3 direct")
                .sim
                .completion_ns;
            let loss = 1.0 - td / ti;
            losses.push(loss);
            rows.push(vec![
                name.to_string(),
                fmt_bytes(buffer),
                format!("{:.2}ms", ti / 1e6),
                format!("{:.2}ms", td / 1e6),
                format!("{:.1}%", 100.0 * loss),
            ]);
        }
    }
    print_table(
        "Figure 3: runtime interpreter vs direct kernel execution (MSCCL-model, 2x8)",
        &[
            "algorithm",
            "buffer",
            "interpreter",
            "direct kernel",
            "interp. loss",
        ],
        &rows,
    );
    let avg = losses.iter().sum::<f64>() / losses.len() as f64;
    println!(
        "average interpreter performance loss = {:.1}% (paper: 17.1%)",
        100.0 * avg
    );
}
