//! **Figure 4** — Impact of TB parallelism on communication bandwidth.
//!
//! The paper emulates a two-GPU AllGather over a single NIC while varying
//! the number of TBs: bandwidth rises until 4 TBs jointly match the link
//! capacity, then falls as additional TBs contend (Eq. 1). We reproduce the
//! micro-benchmark with the warp-limited per-TB transfer capability the
//! experiment used (`saturation_tbs = 4`): NCCL-style channels split the
//! micro-batches over `z` parallel TBs on the same NIC.

use crate::{print_table, MB};
use rescc_algos::ring_allgather;
use rescc_backends::{Backend, NcclBackend};
use rescc_topology::{ClusterSpec, FabricParams, LinkParams, Topology};

/// Regenerate Figure 4.
pub fn run() {
    // One GPU per node, one NIC, warp-limited per-TB capability: a single
    // TB moves 1/4 of the NIC line rate (the Fig. 4 experimental setup).
    let fabric = FabricParams {
        inter: LinkParams::new(25.0, 10.0, 4),
        ..FabricParams::a100()
    };
    let topo = Topology::new(
        "fig4-p2p",
        ClusterSpec {
            n_nodes: 2,
            gpus_per_node: 1,
            nics_per_node: 1,
        },
        fabric,
    );
    let spec = ring_allgather(2); // two-GPU AllGather = bidirectional P2P
    let buffer = 512 * MB;

    let mut rows = Vec::new();
    let mut best = (0u32, 0.0f64);
    for tbs in 1..=12u32 {
        let backend = NcclBackend { n_channels: tbs };
        let rep = backend
            .run_unchecked(&spec, &topo, buffer, MB)
            .expect("figure4 run");
        let bw = rep.algbw_gbps();
        if bw > best.1 {
            best = (tbs, bw);
        }
        rows.push(vec![
            tbs.to_string(),
            format!("{:.2}", bw),
            format!("{:.2}ms", rep.sim.completion_ns / 1e6),
        ]);
    }
    print_table(
        "Figure 4: bandwidth vs number of TBs on a single NIC (P2P AllGather)",
        &["TBs", "algbw (GB/s)", "completion"],
        &rows,
    );
    println!(
        "peak at {} TBs ({:.2} GB/s) — paper: bandwidth peaks at 4 TBs and \
         degrades beyond",
        best.0, best.1
    );
}
