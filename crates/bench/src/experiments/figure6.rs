//! **Figure 6** — Communication performance of expert-designed AllGather
//! and AllReduce across buffer sizes (8 MB – 4 GB), on 16 GPUs (2×8) and
//! 32 GPUs (4×8), comparing NCCL, MSCCL and ResCCL.
//!
//! Paper shape: ResCCL outperforms NCCL by 28.1%–2.2× and MSCCL by
//! 12.4%–1.6× on 16 GPUs; gains grow with buffer size; ResCCL can be
//! slightly slower than MSCCL only for small buffers (few micro-batches —
//! fewer scheduling opportunities).

use crate::{backend_panel, print_table, MB};
use rescc_algos::{hm_allgather, hm_allreduce, nccl_rings_allgather, nccl_rings_allreduce};
use rescc_topology::Topology;

/// Regenerate Figure 6.
pub fn run() {
    let t16 = Topology::a100(2, 8);
    let t32 = Topology::a100(4, 8);
    let _ = (&print_table, MB); // re-exported helpers used by backend_panel
    backend_panel(
        "Figure 6 (a) expert AllGather, 16 GPUs",
        &nccl_rings_allgather(2, 8, 4),
        &hm_allgather(2, 8),
        &t16,
    );
    backend_panel(
        "Figure 6 (b) expert AllGather, 32 GPUs",
        &nccl_rings_allgather(4, 8, 4),
        &hm_allgather(4, 8),
        &t32,
    );
    backend_panel(
        "Figure 6 (c) expert AllReduce, 16 GPUs",
        &nccl_rings_allreduce(2, 8, 4),
        &hm_allreduce(2, 8),
        &t16,
    );
    backend_panel(
        "Figure 6 (d) expert AllReduce, 32 GPUs",
        &nccl_rings_allreduce(4, 8, 4),
        &hm_allreduce(4, 8),
        &t32,
    );
    println!(
        "paper: ResCCL wins grow with buffer size (up to 2.2-2.5x over NCCL); \
         small buffers may slightly favor MSCCL."
    );
}
