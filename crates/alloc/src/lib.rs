//! # rescc-alloc
//!
//! Thread-block (TB) allocation (§4.4).
//!
//! Every transmission task decomposes into a **sender** primitive on its
//! source rank and a **receiver** primitive on its destination rank; a TB
//! executes an ordered sequence of such primitives, each looping over all
//! micro-batches.
//!
//! Two strategies are provided:
//!
//! * [`TbAllocation::connection_based`] — the rigid NCCL/MSCCL scheme: one
//!   TB per (rank, peer, direction) connection endpoint, times the number
//!   of channels. Extra channels buy parallelism at the cost of mostly-idle
//!   TBs (the 98.2% idle observation of Fig. 2).
//! * [`TbAllocation::state_based`] — ResCCL's scheme: analyze each
//!   connection endpoint's active interval on the scheduled pipeline's
//!   timeline and merge endpoints that are never active simultaneously onto
//!   one TB (Eq. 7). Greedy interval partitioning is optimal on interval
//!   graphs, so the TB count is minimal for the given timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rescc_ir::{DepDag, IrError, TaskId};
use rescc_sched::Schedule;
use rescc_topology::Rank;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which side of a transfer a primitive implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// The sender primitive, running on the task's source rank.
    Send,
    /// The receiver primitive (`recv` / `recvReduceCopy`), running on the
    /// task's destination rank.
    Recv,
}

/// One primitive slot inside a TB's program: a task side plus the
/// sub-pipeline index that orders it on the global timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimSlot {
    /// The transmission task.
    pub task: TaskId,
    /// Sender or receiver side.
    pub dir: Direction,
    /// Index of the sub-pipeline the task was scheduled into.
    pub sub_pipeline: usize,
}

/// The program of one TB: its ordered slots and the micro-batch slice it
/// owns. A channel TB with `mb_stride = k, mb_offset = c` executes only the
/// invocations of micro-batches `mb ≡ c (mod k)` — this is how NCCL-style
/// channels split a connection's data across parallel TBs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbPlan {
    /// Ordered primitive slots.
    pub slots: Vec<PrimSlot>,
    /// Micro-batch stride (1 = all micro-batches).
    pub mb_stride: u32,
    /// Micro-batch offset within the stride.
    pub mb_offset: u32,
}

impl TbPlan {
    /// A TB that owns every micro-batch of its slots.
    pub fn full(slots: Vec<PrimSlot>) -> Self {
        Self {
            slots,
            mb_stride: 1,
            mb_offset: 0,
        }
    }

    /// Does this TB execute micro-batch `mb`?
    pub fn owns_micro_batch(&self, mb: u32) -> bool {
        mb % self.mb_stride == self.mb_offset
    }
}

/// The TB plan of one rank.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankTbPlan {
    /// The TBs launched on this rank.
    pub tbs: Vec<TbPlan>,
}

/// A complete TB allocation across all ranks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbAllocation {
    /// Per-rank plans, indexed by rank.
    pub per_rank: Vec<RankTbPlan>,
    /// `"connection"` or `"state"`.
    pub strategy: String,
    /// Channels used (connection-based only; 1 for state-based).
    pub n_channels: u32,
}

/// A connection endpoint as seen from one rank: the peer and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Endpoint {
    peer: Rank,
    dir_is_send: bool,
}

impl TbAllocation {
    /// The rigid connection-based allocation of NCCL/MSCCL: one TB per
    /// connection endpoint per channel. Tasks of an endpoint are dealt
    /// round-robin over its channel copies, which is exactly how MSCCL's
    /// extra channels increase parallelism while leaving most channel TBs
    /// idle most of the time.
    pub fn connection_based(dag: &DepDag, schedule: &Schedule, n_channels: u32) -> Self {
        assert!(n_channels >= 1, "need at least one channel");
        let n_ranks = infer_n_ranks(dag);
        let slots = collect_slots(dag, schedule);

        let mut per_rank: Vec<RankTbPlan> = vec![RankTbPlan::default(); n_ranks];
        for (rank, rank_slots) in slots.into_iter().enumerate() {
            // Group by endpoint, preserving sub-pipeline order.
            let mut groups: HashMap<Endpoint, Vec<PrimSlot>> = HashMap::new();
            let mut order: Vec<Endpoint> = Vec::new();
            for slot in rank_slots {
                let t = dag.task(slot.task);
                let ep = Endpoint {
                    peer: if slot.dir == Direction::Send {
                        t.dst
                    } else {
                        t.src
                    },
                    dir_is_send: slot.dir == Direction::Send,
                };
                if !groups.contains_key(&ep) {
                    order.push(ep);
                }
                groups.entry(ep).or_default().push(slot);
            }
            // Deterministic endpoint order.
            order.sort();
            for ep in order {
                let group = groups.remove(&ep).expect("endpoint collected above");
                // One TB per channel; every channel TB carries the whole
                // slot list but only its micro-batch slice.
                for c in 0..n_channels {
                    per_rank[rank].tbs.push(TbPlan {
                        slots: group.clone(),
                        mb_stride: n_channels,
                        mb_offset: c,
                    });
                }
            }
        }
        Self {
            per_rank,
            strategy: "connection".into(),
            n_channels,
        }
    }

    /// State-based allocation with *chain merging*: before the interval
    /// merge, a send endpoint whose every task forwards data delivered by a
    /// single receive endpoint of the same rank (a ring/chain transit) is
    /// co-located with that receive endpoint. This is the allocation shape
    /// real NCCL ring kernels use and what enables the
    /// `recvCopySend`/`recvReduceSend` fusion pass (`rescc_kernel::fuse`)
    /// to find adjacent pairs.
    pub fn state_based_chained(dag: &DepDag, schedule: &Schedule) -> Self {
        let mut alloc = Self::state_based_inner(dag, schedule, true, 1);
        alloc.strategy = "state-chained".into();
        alloc
    }

    /// ResCCL's state-based allocation: endpoints whose active intervals on
    /// the sub-pipeline timeline never overlap are merged onto one TB.
    pub fn state_based(dag: &DepDag, schedule: &Schedule) -> Self {
        Self::state_based_inner(dag, schedule, false, 1)
    }

    /// [`TbAllocation::state_based`] with the per-rank interval analysis
    /// fanned out over `threads` worker threads. Each rank's TB plan is a
    /// pure function of that rank's slots plus the global schedule order,
    /// so ranks allocate independently; output is identical for any thread
    /// count.
    pub fn state_based_with_threads(dag: &DepDag, schedule: &Schedule, threads: usize) -> Self {
        Self::state_based_inner(dag, schedule, false, threads)
    }

    fn state_based_inner(
        dag: &DepDag,
        schedule: &Schedule,
        chain_merge: bool,
        threads: usize,
    ) -> Self {
        let n_ranks = infer_n_ranks(dag);
        let slots = collect_slots(dag, schedule);
        // Global schedule position of each task: within a sub-pipeline the
        // scheduler's insertion order already respects data dependencies,
        // so ordering TB slots by this position keeps every TB's program
        // deadlock-free even when dependent tasks share a sub-pipeline.
        //
        // Chained mode keys a chain transit (a send forwarding data
        // delivered by exactly one receive at its source rank) immediately
        // after its feeder *on the TB the fold co-locates them on*, so the
        // fusion pass finds the pair adjacent. The reordering is safe even
        // when the forward has later predecessors (e.g. a write-after-write
        // edge at its destination): a fused forward issues asynchronously —
        // it never gates its TB's issue groups — so it cannot take part in
        // a rendezvous cycle, and every *gating* slot still follows the
        // schedule's dependency-compatible total order.
        let mut base_pos: Vec<u32> = vec![0; dag.len()];
        for (i, t) in schedule.linear_order().into_iter().enumerate() {
            base_pos[t.index()] = i as u32;
        }
        let mut chain_feed: Vec<ChainFeed> = Vec::new();
        if chain_merge {
            chain_feed = vec![ChainFeed::Head; dag.len()];
            for b in dag.tasks() {
                let mut feeders = dag.preds(b.id).iter().copied().filter(|&a| {
                    let ta = dag.task(a);
                    ta.chunk == b.chunk && ta.dst == b.src
                });
                chain_feed[b.id.index()] = match (feeders.next(), feeders.next()) {
                    (None, _) => ChainFeed::Head,
                    (Some(a), None) => ChainFeed::Single(a),
                    (Some(_), Some(_)) => ChainFeed::Multi,
                };
            }
        }

        let mut per_rank: Vec<RankTbPlan> = vec![RankTbPlan::default(); n_ranks];
        let workers = threads.max(1).min(n_ranks.max(1));
        if workers > 1 {
            let stride = n_ranks.div_ceil(workers);
            let (base_pos, chain_feed) = (&base_pos, &chain_feed);
            std::thread::scope(|scope| {
                let mut slots = slots;
                for (i, plans) in per_rank.chunks_mut(stride).enumerate() {
                    let batch: Vec<Vec<PrimSlot>> =
                        slots.drain(..plans.len().min(slots.len())).collect();
                    let first = i * stride;
                    scope.spawn(move || {
                        for (k, (plan, rank_slots)) in plans.iter_mut().zip(batch).enumerate() {
                            plan.tbs = lower_one_rank(
                                dag,
                                base_pos,
                                chain_feed,
                                chain_merge,
                                first + k,
                                rank_slots,
                            );
                        }
                    });
                }
            });
            return Self {
                per_rank,
                strategy: "state".into(),
                n_channels: 1,
            };
        }
        for (rank, rank_slots) in slots.into_iter().enumerate() {
            per_rank[rank].tbs =
                lower_one_rank(dag, &base_pos, &chain_feed, chain_merge, rank, rank_slots);
        }
        Self {
            per_rank,
            strategy: "state".into(),
            n_channels: 1,
        }
    }
    /// Total number of TBs across all ranks.
    pub fn total_tbs(&self) -> usize {
        self.per_rank.iter().map(|r| r.tbs.len()).sum()
    }

    /// TBs on the busiest rank (the `#TB` row of Table 3).
    pub fn max_rank_tbs(&self) -> usize {
        self.per_rank.iter().map(|r| r.tbs.len()).max().unwrap_or(0)
    }

    /// Validate the allocation against its DAG and schedule:
    /// * every task contributes exactly one Send slot (on its src rank) and
    ///   one Recv slot (on its dst rank),
    /// * slots within a TB are ordered by sub-pipeline index,
    /// * slots record the sub-pipeline the schedule actually assigned.
    pub fn validate(&self, dag: &DepDag, schedule: &Schedule) -> Result<(), IrError> {
        // For each (task, dir), the set of (stride, offset) windows covering it.
        let mut send_cover: Vec<Vec<(u32, u32)>> = vec![Vec::new(); dag.len()];
        let mut recv_cover: Vec<Vec<(u32, u32)>> = vec![Vec::new(); dag.len()];
        let mut sp_of: Vec<usize> = vec![usize::MAX; dag.len()];
        for (t, sp) in schedule.sub_pipeline_of() {
            sp_of[t.index()] = sp;
        }
        for (rank, plan) in self.per_rank.iter().enumerate() {
            for tb in &plan.tbs {
                if tb.mb_stride == 0 || tb.mb_offset >= tb.mb_stride {
                    return Err(IrError::new(format!(
                        "TB on rank r{rank} has invalid micro-batch window {}%{}",
                        tb.mb_offset, tb.mb_stride
                    )));
                }
                let mut last_sp = 0usize;
                for slot in &tb.slots {
                    let t = dag.task(slot.task);
                    let expect_rank = match slot.dir {
                        Direction::Send => t.src,
                        Direction::Recv => t.dst,
                    };
                    if expect_rank.index() != rank {
                        return Err(IrError::new(format!(
                            "slot for task {} ({:?}) placed on rank r{rank}, expected {}",
                            slot.task, slot.dir, expect_rank
                        )));
                    }
                    if sp_of[slot.task.index()] != slot.sub_pipeline {
                        return Err(IrError::new(format!(
                            "slot for task {} records sub-pipeline {}, schedule says {}",
                            slot.task,
                            slot.sub_pipeline,
                            sp_of[slot.task.index()]
                        )));
                    }
                    if slot.sub_pipeline < last_sp {
                        return Err(IrError::new(format!(
                            "TB on rank r{rank} has out-of-order slots (sub-pipeline {} after {})",
                            slot.sub_pipeline, last_sp
                        )));
                    }
                    last_sp = slot.sub_pipeline;
                    let cover = match slot.dir {
                        Direction::Send => &mut send_cover,
                        Direction::Recv => &mut recv_cover,
                    };
                    cover[slot.task.index()].push((tb.mb_stride, tb.mb_offset));
                }
            }
        }
        // Every (task, dir) must be covered by windows that exactly
        // partition the micro-batch space: equal strides, offsets 0..stride.
        for (what, cover) in [("Send", &send_cover), ("Recv", &recv_cover)] {
            for (i, windows) in cover.iter().enumerate() {
                if windows.is_empty() {
                    return Err(IrError::new(format!("task t{i} is missing a {what} slot")));
                }
                let stride = windows[0].0;
                let mut offsets: Vec<u32> = windows
                    .iter()
                    .map(|(s, o)| {
                        if *s == stride {
                            Ok(*o)
                        } else {
                            Err(IrError::new(format!(
                                "task t{i} {what} slots mix strides {stride} and {s}"
                            )))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                offsets.sort_unstable();
                let expect: Vec<u32> = (0..stride).collect();
                if offsets != expect {
                    return Err(IrError::new(format!(
                        "task t{i} {what} windows {offsets:?} do not partition stride {stride}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// How a task's receive side relates to the chain-merge pass: the single
/// delivery feeding its source rank's slot, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChainFeed {
    /// No feeder — the rank sends its own data (chain head). Allowed.
    Head,
    /// Fed by several deliveries — not a chain transit. Disqualifies.
    Multi,
    /// Fed by exactly one delivery — a chain transit behind that task.
    Single(TaskId),
}

/// Build one rank's TB list: interval analysis, optional chain merging,
/// greedy interval partitioning, and the in-TB slot sort. Pure in
/// `(dag, base_pos, chain_feed, rank_slots)`, which is what lets
/// [`TbAllocation::state_based_with_threads`] fan ranks out.
fn lower_one_rank(
    dag: &DepDag,
    base_pos: &[u32],
    chain_feed: &[ChainFeed],
    chain_merge: bool,
    _rank: usize,
    rank_slots: Vec<PrimSlot>,
) -> Vec<TbPlan> {
    // Active interval per endpoint: [min_sp, max_sp] of its slots.
    let mut intervals: HashMap<Endpoint, (usize, usize, Vec<PrimSlot>)> = HashMap::new();
    for slot in rank_slots {
        let t = dag.task(slot.task);
        let ep = Endpoint {
            peer: if slot.dir == Direction::Send {
                t.dst
            } else {
                t.src
            },
            dir_is_send: slot.dir == Direction::Send,
        };
        let e = intervals
            .entry(ep)
            .or_insert((slot.sub_pipeline, slot.sub_pipeline, Vec::new()));
        e.0 = e.0.min(slot.sub_pipeline);
        e.1 = e.1.max(slot.sub_pipeline);
        e.2.push(slot);
    }

    // Chain merging: fold a send endpoint into the receive endpoint
    // that feeds all of its tasks (same chunk, this rank in the
    // middle of the chain). Folded endpoints are remembered so the
    // final sort can key their forwards right behind their feeders.
    let mut folded: HashSet<Endpoint> = HashSet::new();
    if chain_merge {
        let keys: Vec<Endpoint> = {
            let mut k: Vec<Endpoint> = intervals.keys().copied().collect();
            k.sort();
            k
        };
        for ep in keys {
            if !ep.dir_is_send {
                continue;
            }
            // The single feeding recv endpoint, if one exists.
            // Chain heads (a rank sending its own data, no feeder)
            // are allowed; a task fed by several deliveries is not
            // a chain transit and disqualifies the endpoint.
            let mut feeder: Option<Endpoint> = None;
            let mut ok = true;
            for slot in &intervals[&ep].2 {
                match chain_feed[slot.task.index()] {
                    ChainFeed::Head => {}
                    ChainFeed::Multi => {
                        ok = false;
                        break;
                    }
                    ChainFeed::Single(a) => {
                        let fa = Endpoint {
                            peer: dag.task(a).src,
                            dir_is_send: false,
                        };
                        if *feeder.get_or_insert(fa) != fa {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            if let Some(f) = feeder {
                if f != ep && intervals.contains_key(&f) {
                    let (s, e, sl) = intervals.remove(&ep).expect("present");
                    let fe = intervals.get_mut(&f).expect("checked");
                    fe.0 = fe.0.min(s);
                    fe.1 = fe.1.max(e);
                    fe.2.extend(sl);
                    folded.insert(ep);
                }
            }
        }
    }
    // Greedy interval partitioning: sort by start, place each
    // endpoint on the first TB whose last interval ended before
    // this one starts.
    let mut items: Vec<(usize, usize, Endpoint)> = intervals
        .iter()
        .map(|(ep, (s, e, _))| (*s, *e, *ep))
        .collect();
    items.sort_by_key(|(s, e, ep)| (*s, *e, *ep));
    // tb_end[i] = last sub-pipeline index currently occupied on TB i
    let mut tb_end: Vec<usize> = Vec::new();
    let mut tb_slots: Vec<Vec<PrimSlot>> = Vec::new();
    for (start, end, ep) in items {
        let mut placed = false;
        for (i, last) in tb_end.iter_mut().enumerate() {
            if *last < start {
                *last = end;
                tb_slots[i].extend(intervals[&ep].2.iter().copied());
                placed = true;
                break;
            }
        }
        if !placed {
            tb_end.push(end);
            let mut v = Vec::new();
            v.extend(intervals[&ep].2.iter().copied());
            tb_slots.push(v);
        }
    }
    for tb in &mut tb_slots {
        tb.sort_by_key(|s| {
            // A forward folded onto its feeder's TB sorts directly
            // behind the feeder (adjacent, for the fusion pass).
            // Everything else — including chain heads and every
            // gating slot — keeps the schedule's total order.
            if s.dir == Direction::Send
                && folded.contains(&Endpoint {
                    peer: dag.task(s.task).dst,
                    dir_is_send: true,
                })
            {
                if let ChainFeed::Single(a) = chain_feed[s.task.index()] {
                    return (base_pos[a.index()], 1, base_pos[s.task.index()], s.dir);
                }
            }
            (base_pos[s.task.index()], 0, 0, s.dir)
        });
    }
    tb_slots.into_iter().map(TbPlan::full).collect()
}

fn infer_n_ranks(dag: &DepDag) -> usize {
    dag.n_chunks() as usize
}

/// Expand each scheduled task into its Send and Recv slots, grouped by the
/// rank the slot runs on, preserving sub-pipeline order.
fn collect_slots(dag: &DepDag, schedule: &Schedule) -> Vec<Vec<PrimSlot>> {
    let n_ranks = infer_n_ranks(dag);
    let mut per_rank: Vec<Vec<PrimSlot>> = vec![Vec::new(); n_ranks];
    for (sp_idx, sp) in schedule.sub_pipelines.iter().enumerate() {
        for &tid in sp {
            let t = dag.task(tid);
            per_rank[t.src.index()].push(PrimSlot {
                task: tid,
                dir: Direction::Send,
                sub_pipeline: sp_idx,
            });
            per_rank[t.dst.index()].push(PrimSlot {
                task: tid,
                dir: Direction::Recv,
                sub_pipeline: sp_idx,
            });
        }
    }
    per_rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_sched::hpds;
    use rescc_topology::Topology;

    fn ring_setup(nodes: u32, gpn: u32) -> (DepDag, Schedule) {
        let n = nodes * gpn;
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(nodes, gpn)).unwrap();
        let s = hpds(&dag);
        (dag, s)
    }

    #[test]
    fn connection_based_one_tb_per_endpoint_per_channel() {
        let (dag, s) = ring_setup(1, 8);
        let a = TbAllocation::connection_based(&dag, &s, 1);
        a.validate(&dag, &s).unwrap();
        // Ring: each rank has 1 send endpoint + 1 recv endpoint.
        assert_eq!(a.max_rank_tbs(), 2);
        assert_eq!(a.total_tbs(), 16);
        let a2 = TbAllocation::connection_based(&dag, &s, 4);
        a2.validate(&dag, &s).unwrap();
        assert_eq!(a2.total_tbs(), 64);
    }

    #[test]
    fn state_based_never_uses_more_tbs() {
        for (nodes, gpn) in [(1u32, 8u32), (2, 4), (2, 8)] {
            let (dag, s) = ring_setup(nodes, gpn);
            let conn = TbAllocation::connection_based(&dag, &s, 1);
            let state = TbAllocation::state_based(&dag, &s);
            state.validate(&dag, &s).unwrap();
            assert!(
                state.total_tbs() <= conn.total_tbs(),
                "state {} > connection {} on {nodes}x{gpn}",
                state.total_tbs(),
                conn.total_tbs()
            );
        }
    }

    #[test]
    fn state_based_merges_disjoint_endpoints() {
        // A chain where rank endpoints are active in strictly separated
        // sub-pipelines: state-based merges them where possible.
        let mut b = AlgoBuilder::new("phased", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0)
            .recv(1, 2, 1, 0)
            .recv(2, 3, 2, 0)
            .recv(3, 0, 3, 0);
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap();
        let s = hpds(&dag);
        let state = TbAllocation::state_based(&dag, &s);
        state.validate(&dag, &s).unwrap();
        let conn = TbAllocation::connection_based(&dag, &s, 1);
        assert!(state.total_tbs() <= conn.total_tbs());
    }

    #[test]
    fn chained_allocation_colocates_ring_transits() {
        // In a ring, every rank's send endpoint forwards what its receive
        // endpoint delivers: chain merging must put both on one TB.
        let (dag, s) = ring_setup(1, 8);
        let plain = TbAllocation::state_based(&dag, &s);
        let chained = TbAllocation::state_based_chained(&dag, &s);
        chained.validate(&dag, &s).unwrap();
        assert!(
            chained.total_tbs() < plain.total_tbs(),
            "chained {} !< plain {}",
            chained.total_tbs(),
            plain.total_tbs()
        );
        // Each rank collapses to a single TB holding recv + send slots.
        assert_eq!(chained.max_rank_tbs(), 1);
    }

    #[test]
    fn chained_allocation_declines_mesh_fed_endpoints() {
        // Star: rank 0 gathers from everyone then broadcasts — the send
        // endpoints have multiple feeders, so no chain merge applies and
        // the result equals plain state-based.
        let mut b = AlgoBuilder::new("star", OpType::AllReduce, 4);
        for r in 1..4u32 {
            b.rrc(r, 0, 0, 0);
        }
        for r in 1..4u32 {
            b.recv(0, r, 1, 0);
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap();
        let s = hpds(&dag);
        let plain = TbAllocation::state_based(&dag, &s);
        let chained = TbAllocation::state_based_chained(&dag, &s);
        chained.validate(&dag, &s).unwrap();
        assert_eq!(plain.total_tbs(), chained.total_tbs());
    }

    #[test]
    fn validation_catches_missing_slot() {
        let (dag, s) = ring_setup(1, 4);
        let mut a = TbAllocation::state_based(&dag, &s);
        'outer: for plan in &mut a.per_rank {
            for tb in &mut plan.tbs {
                if !tb.slots.is_empty() {
                    tb.slots.pop();
                    break 'outer;
                }
            }
        }
        assert!(a.validate(&dag, &s).is_err());
    }

    #[test]
    fn validation_catches_wrong_rank() {
        let (dag, s) = ring_setup(1, 4);
        let mut a = TbAllocation::state_based(&dag, &s);
        // Move rank 0's first TB onto rank 1.
        let tb = a.per_rank[0].tbs.remove(0);
        a.per_rank[1].tbs.push(tb);
        assert!(a.validate(&dag, &s).is_err());
    }

    #[test]
    fn channel_copies_may_be_idle() {
        let (dag, s) = ring_setup(1, 4);
        let a = TbAllocation::connection_based(&dag, &s, 8);
        // Channel TBs carry the whole slot list but only their micro-batch
        // slice; with few micro-batches most channel TBs end up with no
        // work at runtime — MSCCL-style waste. Structurally: 8 TBs per
        // endpoint instead of 1.
        let conn1 = TbAllocation::connection_based(&dag, &s, 1);
        assert_eq!(a.total_tbs(), 8 * conn1.total_tbs());
        a.validate(&dag, &s).unwrap();
    }
}
