//! Cluster topology: nodes, GPUs, NICs and the two-tier Clos fabric.
//!
//! The model follows the paper's testbed (§5.1): each server hosts
//! `gpus_per_node` GPUs joined by NVSwitch, plus `nics_per_node` RoCE NICs
//! with every `gpus_per_node / nics_per_node` GPUs sharing one NIC. Servers
//! attach to Top-of-Rack switches, `servers_per_rack` each; traffic between
//! racks crosses the aggregation tier and pays extra latency.
//!
//! Two resource classes model contention:
//!
//! * **Conflict resources** — the communication-dependency domain of §3.
//!   Intra-node: the per-ordered-pair NVLink channel through the NVSwitch
//!   (two tasks between the same GPU pair contend). Inter-node: the NIC TX
//!   and RX directions (tasks from/to GPUs sharing a NIC contend — the
//!   congestion §4.4 describes).
//! * **Capacity resources** — a GPU's aggregate NVLink egress/ingress port.
//!   They never trigger the Eq. (1) penalty; they only bound the summed
//!   bandwidth a GPU can drive across all of its peers simultaneously.
//!
//! A [`Connection`] carries both sets: `conflict` feeds the scheduler's
//! communication-dependency checks, `path` feeds the simulator's fluid
//! bandwidth sharing.

use crate::health::TopologyHealth;
use crate::ids::{ConnectionId, NicId, NodeId, Rank, ResourceId};
use crate::params::{FabricParams, LinkParams};
use crate::resset::ResourceSet;
use serde::{Deserialize, Serialize};

/// Error produced when constructing a topology from an invalid preset
/// selector (e.g. a Table 3 index outside 1..=4) or when decoding an
/// identifier that does not belong to the topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested preset does not exist.
    UnknownPreset {
        /// Which preset family was requested ("Table 3 topology").
        what: &'static str,
        /// The selector the caller passed.
        got: String,
        /// The valid selectors.
        expected: &'static str,
    },
    /// A resource id beyond the topology's resource space.
    ResourceOutOfRange {
        /// The raw resource index the caller passed.
        resource: u32,
        /// The topology's resource count (valid ids are `0..n_resources`).
        n_resources: u32,
        /// The topology's name, for context.
        topology: String,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownPreset {
                what,
                got,
                expected,
            } => write!(f, "unknown {what} {got} (expected {expected})"),
            Self::ResourceOutOfRange {
                resource,
                n_resources,
                topology,
            } => write!(
                f,
                "resource res{resource} out of range for topology {topology} \
                 ({n_resources} resources)"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Whether a connection stays inside a server or crosses the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathKind {
    /// NVLink/NVSwitch path inside one server.
    Intra,
    /// RoCE path between servers.
    Inter {
        /// Whether the path goes through the aggregation tier of the Clos.
        cross_rack: bool,
    },
}

/// What a [`ResourceId`] denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Aggregate NVLink egress port of a GPU (capacity resource).
    GpuTx(Rank),
    /// Aggregate NVLink ingress port of a GPU (capacity resource).
    GpuRx(Rank),
    /// Transmit direction of a NIC (conflict resource).
    NicTx(NicId),
    /// Receive direction of a NIC (conflict resource).
    NicRx(NicId),
    /// The NVLink channel between an ordered intra-node GPU pair
    /// (conflict resource).
    PairChan(Rank, Rank),
}

/// A logical connection between an ordered pair of GPUs, together with the
/// contention resources it occupies and the cost parameters of its path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Dense id: `src.index() * n_ranks + dst.index()`.
    pub id: ConnectionId,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Path classification.
    pub kind: PathKind,
    /// Conflict resources: the communication-dependency domain.
    pub conflict: ResourceSet,
    /// All capacity resources traversed (superset of `conflict`), used for
    /// fluid bandwidth sharing in the simulator.
    pub path: ResourceSet,
    /// Cost parameters of the bottleneck link on this path.
    pub params: LinkParams,
    /// Extra one-way latency beyond `params.alpha_ns` (cross-rack hops).
    pub extra_latency_ns: f64,
}

impl Connection {
    /// Total startup latency of one task on this connection.
    pub fn alpha_ns(&self) -> f64 {
        self.params.alpha_ns + self.extra_latency_ns
    }

    /// Serial (uncontended, single fully-capable sender) time to move
    /// `bytes` over this connection.
    pub fn serial_cost_ns(&self, bytes: u64) -> f64 {
        self.params.serial_cost_ns(bytes) + self.extra_latency_ns
    }
}

/// Shape of a cluster: how many servers, GPUs and NICs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of servers.
    pub n_nodes: u32,
    /// GPUs per server.
    pub gpus_per_node: u32,
    /// NICs per server. Must divide `gpus_per_node`.
    pub nics_per_node: u32,
}

impl ClusterSpec {
    /// Total number of GPU ranks.
    pub fn n_ranks(&self) -> u32 {
        self.n_nodes * self.gpus_per_node
    }
}

/// A fully-resolved cluster topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    spec: ClusterSpec,
    fabric: FabricParams,
    /// Human-readable name ("a100-2x8", …) used in reports.
    name: String,
    /// Dead resources to route around (degraded-topology recovery).
    #[serde(default)]
    health: TopologyHealth,
}

impl Topology {
    /// Build a topology from a spec and fabric parameters.
    ///
    /// # Panics
    /// Panics if `nics_per_node` does not divide `gpus_per_node`, or any
    /// dimension is zero.
    pub fn new(name: impl Into<String>, spec: ClusterSpec, fabric: FabricParams) -> Self {
        assert!(spec.n_nodes >= 1, "need at least one node");
        assert!(spec.gpus_per_node >= 1, "need at least one GPU per node");
        assert!(spec.nics_per_node >= 1, "need at least one NIC per node");
        assert_eq!(
            spec.gpus_per_node % spec.nics_per_node,
            0,
            "NICs must evenly share the node's GPUs"
        );
        Self {
            spec,
            fabric,
            name: name.into(),
            health: TopologyHealth::healthy(),
        }
    }

    /// Overlay a health mask: [`Self::connection`] routes around the
    /// masked resources (relay through a healthy local peer for NVLink
    /// channels, failover to a sibling NIC for network paths).
    pub fn with_health(mut self, health: TopologyHealth) -> Self {
        self.health = health;
        self
    }

    /// The current health mask.
    pub fn health(&self) -> &TopologyHealth {
        &self.health
    }

    /// The paper's A100 testbed shape: `n_nodes` servers of `gpus_per_node`
    /// A100s, two GPUs per 200 Gb/s NIC.
    pub fn a100(n_nodes: u32, gpus_per_node: u32) -> Self {
        let nics = (gpus_per_node / 2).max(1);
        Self::new(
            format!("a100-{n_nodes}x{gpus_per_node}"),
            ClusterSpec {
                n_nodes,
                gpus_per_node,
                nics_per_node: nics,
            },
            FabricParams::a100(),
        )
    }

    /// A DGX-H100-class cluster: 400 Gb/s NIC per GPU (extension beyond the
    /// paper's testbeds, for forward-looking experiments).
    pub fn h100(n_nodes: u32, gpus_per_node: u32) -> Self {
        Self::new(
            format!("h100-{n_nodes}x{gpus_per_node}"),
            ClusterSpec {
                n_nodes,
                gpus_per_node,
                nics_per_node: gpus_per_node,
            },
            FabricParams::h100(),
        )
    }

    /// The V100 cluster of §5.2 (100 Gb/s RoCE).
    pub fn v100(n_nodes: u32, gpus_per_node: u32) -> Self {
        let nics = (gpus_per_node / 2).max(1);
        Self::new(
            format!("v100-{n_nodes}x{gpus_per_node}"),
            ClusterSpec {
                n_nodes,
                gpus_per_node,
                nics_per_node: nics,
            },
            FabricParams::v100(),
        )
    }

    /// The four topologies of Table 3: Topo1 = 2×4, Topo2 = 2×8,
    /// Topo3 = 4×4, Topo4 = 4×8 (A100 fabric).
    pub fn table3_topo(i: usize) -> Result<Self, TopologyError> {
        match i {
            1 => Ok(Self::a100(2, 4)),
            2 => Ok(Self::a100(2, 8)),
            3 => Ok(Self::a100(4, 4)),
            4 => Ok(Self::a100(4, 8)),
            _ => Err(TopologyError::UnknownPreset {
                what: "Table 3 topology",
                got: format!("Topo{i}"),
                expected: "Topo1..Topo4",
            }),
        }
    }

    /// Topology name used in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shape spec.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// Fabric cost parameters.
    pub fn fabric(&self) -> &FabricParams {
        &self.fabric
    }

    /// Total number of ranks.
    pub fn n_ranks(&self) -> u32 {
        self.spec.n_ranks()
    }

    /// Number of servers.
    pub fn n_nodes(&self) -> u32 {
        self.spec.n_nodes
    }

    /// GPUs per server.
    pub fn gpus_per_node(&self) -> u32 {
        self.spec.gpus_per_node
    }

    /// Iterate over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.n_ranks()).map(Rank::new)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        debug_assert!(rank.0 < self.n_ranks());
        NodeId::new(rank.0 / self.spec.gpus_per_node)
    }

    /// Rank's index within its node.
    pub fn local_index(&self, rank: Rank) -> u32 {
        rank.0 % self.spec.gpus_per_node
    }

    /// The ranks hosted on `node`, in ascending order.
    pub fn ranks_on_node(&self, node: NodeId) -> impl Iterator<Item = Rank> {
        let base = node.0 * self.spec.gpus_per_node;
        (base..base + self.spec.gpus_per_node).map(Rank::new)
    }

    /// Do two ranks share a server?
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The NIC serving `rank` for inter-node traffic.
    pub fn nic_of(&self, rank: Rank) -> NicId {
        let gpus_per_nic = self.spec.gpus_per_node / self.spec.nics_per_node;
        let node = self.node_of(rank);
        let local_nic = self.local_index(rank) / gpus_per_nic;
        NicId::new(node.0 * self.spec.nics_per_node + local_nic)
    }

    /// Total number of NICs in the cluster.
    pub fn n_nics(&self) -> u32 {
        self.spec.n_nodes * self.spec.nics_per_node
    }

    /// Rack (ToR switch) of a node.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        node.0 / self.fabric.servers_per_rack
    }

    /// Does traffic between the two ranks cross the aggregation tier?
    pub fn is_cross_rack(&self, a: Rank, b: Rank) -> bool {
        self.rack_of(self.node_of(a)) != self.rack_of(self.node_of(b))
    }

    /// Ordered intra-node pairs per node.
    fn pairs_per_node(&self) -> u32 {
        self.spec.gpus_per_node * (self.spec.gpus_per_node - 1)
    }

    /// Total number of contention resources:
    /// `2·n_ranks` GPU ports + `2·n_nics` NIC directions + the per-node
    /// ordered-pair NVLink channels.
    pub fn n_resources(&self) -> u32 {
        2 * self.n_ranks() + 2 * self.n_nics() + self.spec.n_nodes * self.pairs_per_node()
    }

    /// NVLink egress port of a GPU (capacity resource).
    pub fn gpu_tx(&self, rank: Rank) -> ResourceId {
        ResourceId::new(rank.0)
    }

    /// NVLink ingress port of a GPU (capacity resource).
    pub fn gpu_rx(&self, rank: Rank) -> ResourceId {
        ResourceId::new(self.n_ranks() + rank.0)
    }

    /// Transmit direction of a NIC (conflict resource).
    pub fn nic_tx(&self, nic: NicId) -> ResourceId {
        ResourceId::new(2 * self.n_ranks() + nic.0)
    }

    /// Receive direction of a NIC (conflict resource).
    pub fn nic_rx(&self, nic: NicId) -> ResourceId {
        ResourceId::new(2 * self.n_ranks() + self.n_nics() + nic.0)
    }

    /// The NVLink channel between an ordered intra-node pair
    /// (conflict resource).
    ///
    /// # Panics
    /// Panics when the ranks are on different nodes or equal.
    pub fn pair_chan(&self, src: Rank, dst: Rank) -> ResourceId {
        assert!(self.same_node(src, dst), "pair channel is intra-node only");
        assert_ne!(src, dst);
        let g = self.spec.gpus_per_node;
        let node = self.node_of(src).0;
        let ls = self.local_index(src);
        let ld = self.local_index(dst);
        let slot = ls * (g - 1) + if ld < ls { ld } else { ld - 1 };
        ResourceId::new(
            2 * self.n_ranks() + 2 * self.n_nics() + node * self.pairs_per_node() + slot,
        )
    }

    /// Decode a resource id back to its meaning.
    ///
    /// Errors with [`TopologyError::ResourceOutOfRange`] when `res` lies
    /// beyond this topology's resource space — which happens in practice
    /// when a caller mixes ids across topologies of different shapes.
    pub fn resource_kind(&self, res: ResourceId) -> Result<ResourceKind, TopologyError> {
        let n = self.n_ranks();
        let nics = self.n_nics();
        let pair_base = 2 * n + 2 * nics;
        if res.0 < n {
            Ok(ResourceKind::GpuTx(Rank::new(res.0)))
        } else if res.0 < 2 * n {
            Ok(ResourceKind::GpuRx(Rank::new(res.0 - n)))
        } else if res.0 < 2 * n + nics {
            Ok(ResourceKind::NicTx(NicId::new(res.0 - 2 * n)))
        } else if res.0 < pair_base {
            Ok(ResourceKind::NicRx(NicId::new(res.0 - 2 * n - nics)))
        } else if res.0 < self.n_resources() {
            let g = self.spec.gpus_per_node;
            let idx = res.0 - pair_base;
            let node = idx / self.pairs_per_node();
            let slot = idx % self.pairs_per_node();
            let ls = slot / (g - 1);
            let rem = slot % (g - 1);
            let ld = if rem < ls { rem } else { rem + 1 };
            Ok(ResourceKind::PairChan(
                Rank::new(node * g + ls),
                Rank::new(node * g + ld),
            ))
        } else {
            Err(TopologyError::ResourceOutOfRange {
                resource: res.0,
                n_resources: self.n_resources(),
                topology: self.name.clone(),
            })
        }
    }

    /// Cost parameters of a resource.
    ///
    /// Errors when `res` is outside this topology (see
    /// [`Topology::resource_kind`]).
    pub fn resource_params(&self, res: ResourceId) -> Result<LinkParams, TopologyError> {
        Ok(match self.resource_kind(res)? {
            ResourceKind::GpuTx(_) | ResourceKind::GpuRx(_) => self.fabric.port,
            ResourceKind::NicTx(_) | ResourceKind::NicRx(_) => self.fabric.inter,
            ResourceKind::PairChan(_, _) => self.fabric.intra,
        })
    }

    /// Dense connection id for an ordered pair.
    pub fn connection_id(&self, src: Rank, dst: Rank) -> ConnectionId {
        ConnectionId::new(src.0 * self.n_ranks() + dst.0)
    }

    /// Decode a connection id back to its ordered pair.
    pub fn connection_endpoints(&self, id: ConnectionId) -> (Rank, Rank) {
        let n = self.n_ranks();
        (Rank::new(id.0 / n), Rank::new(id.0 % n))
    }

    /// Resolve the connection between an ordered pair of distinct ranks.
    ///
    /// # Panics
    /// Panics if `src == dst` — a rank never transfers to itself; local
    /// copies are not transmission tasks.
    pub fn connection(&self, src: Rank, dst: Rank) -> Connection {
        assert_ne!(src, dst, "self-connection {src}->{dst} is not a transfer");
        assert!(src.0 < self.n_ranks() && dst.0 < self.n_ranks());
        if self.same_node(src, dst) {
            let chan = self.pair_chan(src, dst);
            if self.health.is_dead(chan) {
                if let Some(relay) = self.relay_for(src, dst) {
                    // NVSwitch-style reroute: bounce through a healthy
                    // local peer. Two pair channels carry (and contend
                    // for) the transfer, and the extra hop pays another
                    // switch traversal of latency.
                    let c1 = self.pair_chan(src, relay);
                    let c2 = self.pair_chan(relay, dst);
                    return Connection {
                        id: self.connection_id(src, dst),
                        src,
                        dst,
                        kind: PathKind::Intra,
                        conflict: ResourceSet::from_slice(&[c1, c2]),
                        path: ResourceSet::from_slice(&[
                            c1,
                            c2,
                            self.gpu_tx(src),
                            self.gpu_rx(dst),
                        ]),
                        params: self.fabric.intra,
                        extra_latency_ns: self.fabric.intra.alpha_ns,
                    };
                }
                // No healthy relay: fall through to the dead direct
                // channel — the simulator fails the first transfer on it
                // with a permanent `ResourceDown`.
            }
            Connection {
                id: self.connection_id(src, dst),
                src,
                dst,
                kind: PathKind::Intra,
                conflict: ResourceSet::from_slice(&[chan]),
                path: ResourceSet::from_slice(&[chan, self.gpu_tx(src), self.gpu_rx(dst)]),
                params: self.fabric.intra,
                extra_latency_ns: 0.0,
            }
        } else {
            let cross = self.is_cross_rack(src, dst);
            let tx = self.healthy_nic_tx(src);
            let rx = self.healthy_nic_rx(dst);
            Connection {
                id: self.connection_id(src, dst),
                src,
                dst,
                kind: PathKind::Inter { cross_rack: cross },
                conflict: ResourceSet::from_slice(&[tx, rx]),
                path: ResourceSet::from_slice(&[tx, rx]),
                params: self.fabric.inter,
                extra_latency_ns: if cross {
                    self.fabric.cross_rack_extra_ns
                } else {
                    0.0
                },
            }
        }
    }

    /// A local rank whose channels from `src` and to `dst` are both
    /// healthy, to relay around a dead direct channel. Deterministic:
    /// the lowest-index candidate wins.
    fn relay_for(&self, src: Rank, dst: Rank) -> Option<Rank> {
        self.ranks_on_node(self.node_of(src)).find(|&c| {
            c != src
                && c != dst
                && self.health.is_healthy(self.pair_chan(src, c))
                && self.health.is_healthy(self.pair_chan(c, dst))
        })
    }

    /// The TX direction `src` uses for inter-node traffic: its primary
    /// NIC, or — when that direction is masked — the first healthy
    /// sibling NIC on the node (NIC failover). Falls back to the dead
    /// primary when every sibling is masked too, so the simulator
    /// surfaces the unrecoverable failure.
    fn healthy_nic_tx(&self, src: Rank) -> ResourceId {
        let primary = self.nic_of(src);
        self.failover_nic(primary, |nic| self.nic_tx(nic))
    }

    /// The RX direction `dst` uses for inter-node traffic (see
    /// [`Self::healthy_nic_tx`]).
    fn healthy_nic_rx(&self, dst: Rank) -> ResourceId {
        let primary = self.nic_of(dst);
        self.failover_nic(primary, |nic| self.nic_rx(nic))
    }

    fn failover_nic(&self, primary: NicId, dir: impl Fn(NicId) -> ResourceId) -> ResourceId {
        let nics = self.spec.nics_per_node;
        let base = (primary.0 / nics) * nics;
        (0..nics)
            .map(|k| dir(NicId::new(base + (primary.0 - base + k) % nics)))
            .find(|&r| self.health.is_healthy(r))
            .unwrap_or_else(|| dir(primary))
    }

    /// Do the two ordered pairs have a *communication dependency* (shared
    /// conflict resource)? This is the relation §3 defines.
    pub fn interferes(&self, a: (Rank, Rank), b: (Rank, Rank)) -> bool {
        let ca = self.connection(a.0, a.1);
        let cb = self.connection(b.0, b.1);
        ca.conflict.intersects(&cb.conflict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo2() -> Topology {
        Topology::a100(2, 8)
    }

    #[test]
    fn rank_node_nic_mapping() {
        let t = topo2();
        assert_eq!(t.n_ranks(), 16);
        assert_eq!(t.node_of(Rank::new(0)), NodeId::new(0));
        assert_eq!(t.node_of(Rank::new(7)), NodeId::new(0));
        assert_eq!(t.node_of(Rank::new(8)), NodeId::new(1));
        // 8 GPUs / 4 NICs => 2 GPUs per NIC.
        assert_eq!(t.nic_of(Rank::new(0)), t.nic_of(Rank::new(1)));
        assert_ne!(t.nic_of(Rank::new(1)), t.nic_of(Rank::new(2)));
        assert_eq!(t.nic_of(Rank::new(8)), NicId::new(4));
    }

    #[test]
    fn intra_connection_conflicts_on_pair_channel() {
        let t = topo2();
        let c = t.connection(Rank::new(0), Rank::new(3));
        assert_eq!(c.kind, PathKind::Intra);
        assert_eq!(c.conflict.len(), 1);
        assert_eq!(
            t.resource_kind(c.conflict.as_slice()[0]).unwrap(),
            ResourceKind::PairChan(Rank::new(0), Rank::new(3))
        );
        // Path additionally traverses the GPU ports.
        assert!(c.path.contains(t.gpu_tx(Rank::new(0))));
        assert!(c.path.contains(t.gpu_rx(Rank::new(3))));
    }

    #[test]
    fn inter_connection_uses_nics() {
        let t = topo2();
        let c = t.connection(Rank::new(0), Rank::new(8));
        assert_eq!(c.kind, PathKind::Inter { cross_rack: false });
        assert!(matches!(
            t.resource_kind(c.conflict.as_slice()[0]).unwrap(),
            ResourceKind::NicTx(_)
        ));
        assert!(matches!(
            t.resource_kind(c.conflict.as_slice()[1]).unwrap(),
            ResourceKind::NicRx(_)
        ));
    }

    #[test]
    fn cross_rack_adds_latency() {
        let t = Topology::a100(4, 8); // two servers per rack
        let near = t.connection(Rank::new(0), Rank::new(8));
        let far = t.connection(Rank::new(0), Rank::new(16));
        assert_eq!(near.extra_latency_ns, 0.0);
        assert!(far.extra_latency_ns > 0.0);
        assert!(far.serial_cost_ns(1 << 20) > near.serial_cost_ns(1 << 20));
    }

    #[test]
    fn nic_sharing_creates_interference() {
        let t = topo2();
        // Ranks 0 and 1 share a NIC: their inter-node sends interfere.
        assert!(t.interferes((Rank::new(0), Rank::new(8)), (Rank::new(1), Rank::new(9))));
        // Ranks 0 and 2 use distinct NICs and distinct destinations.
        assert!(!t.interferes((Rank::new(0), Rank::new(8)), (Rank::new(2), Rank::new(10))));
    }

    #[test]
    fn intra_interference_is_per_pair_not_per_port() {
        let t = topo2();
        // Two transfers between the same ordered pair interfere.
        assert!(t.interferes((Rank::new(0), Rank::new(1)), (Rank::new(0), Rank::new(1))));
        // Sends from the same GPU to different peers do NOT conflict
        // (mesh algorithms legitimately fan out) — the shared egress port
        // is a capacity resource, not a conflict resource.
        assert!(!t.interferes((Rank::new(0), Rank::new(1)), (Rank::new(0), Rank::new(2))));
        // Opposite directions of a pair are distinct channels.
        assert!(!t.interferes((Rank::new(0), Rank::new(1)), (Rank::new(1), Rank::new(0))));
    }

    #[test]
    fn connection_id_roundtrip() {
        let t = topo2();
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let id = t.connection_id(Rank::new(s), Rank::new(d));
                assert_eq!(t.connection_endpoints(id), (Rank::new(s), Rank::new(d)));
            }
        }
    }

    #[test]
    fn resource_ids_decode() {
        let t = topo2();
        for r in 0..t.n_resources() {
            match t.resource_kind(ResourceId::new(r)).unwrap() {
                ResourceKind::GpuTx(g) => assert_eq!(t.gpu_tx(g).0, r),
                ResourceKind::GpuRx(g) => assert_eq!(t.gpu_rx(g).0, r),
                ResourceKind::NicTx(n) => assert_eq!(t.nic_tx(n).0, r),
                ResourceKind::NicRx(n) => assert_eq!(t.nic_rx(n).0, r),
                ResourceKind::PairChan(a, b) => assert_eq!(t.pair_chan(a, b).0, r),
            }
        }
    }

    #[test]
    fn out_of_range_resource_is_a_typed_error() {
        let t = topo2();
        let bad = ResourceId::new(t.n_resources());
        let err = t.resource_kind(bad).unwrap_err();
        assert!(matches!(err, TopologyError::ResourceOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(t.resource_params(bad).is_err());
        // The last valid id still decodes.
        assert!(t
            .resource_kind(ResourceId::new(t.n_resources() - 1))
            .is_ok());
    }

    #[test]
    fn pair_chan_distinct_per_ordered_pair() {
        let t = Topology::a100(2, 4);
        let mut seen = std::collections::HashSet::new();
        for node in 0..2u32 {
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i == j {
                        continue;
                    }
                    let a = Rank::new(node * 4 + i);
                    let b = Rank::new(node * 4 + j);
                    assert!(seen.insert(t.pair_chan(a, b)), "duplicate channel {a}->{b}");
                }
            }
        }
        assert_eq!(seen.len(), 2 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "self-connection")]
    fn self_connection_panics() {
        topo2().connection(Rank::new(3), Rank::new(3));
    }

    #[test]
    #[should_panic(expected = "intra-node only")]
    fn cross_node_pair_chan_panics() {
        topo2().pair_chan(Rank::new(0), Rank::new(8));
    }

    #[test]
    fn table3_presets() {
        assert_eq!(Topology::table3_topo(1).unwrap().n_ranks(), 8);
        assert_eq!(Topology::table3_topo(2).unwrap().n_ranks(), 16);
        assert_eq!(Topology::table3_topo(3).unwrap().n_ranks(), 16);
        assert_eq!(Topology::table3_topo(4).unwrap().n_ranks(), 32);
    }

    #[test]
    fn table3_out_of_range_is_a_typed_error() {
        let err = Topology::table3_topo(5).unwrap_err();
        assert!(matches!(err, TopologyError::UnknownPreset { .. }));
        assert!(err.to_string().contains("Topo5"));
        assert!(Topology::table3_topo(0).is_err());
    }

    #[test]
    fn large_emulated_scale() {
        // Fig. 10a emulates up to 1024 GPUs offline — topology math must
        // hold at that scale without materializing O(N^2) state.
        let t = Topology::a100(128, 8);
        assert_eq!(t.n_ranks(), 1024);
        let c = t.connection(Rank::new(0), Rank::new(1023));
        assert!(matches!(c.kind, PathKind::Inter { .. }));
        let c2 = t.connection(Rank::new(1020), Rank::new(1023));
        assert!(matches!(c2.kind, PathKind::Intra));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn interference_is_symmetric_and_resources_decode(
                nodes in 1u32..6,
                g_half in 1u32..5,
                a in 0u32..1000,
                b in 0u32..1000,
                c in 0u32..1000,
                d in 0u32..1000,
            ) {
                let g = 2 * g_half;
                let t = Topology::a100(nodes, g);
                let n = t.n_ranks();
                let (a, b, c, d) = (a % n, b % n, c % n, d % n);
                prop_assume!(a != b && c != d);
                let pa = (Rank::new(a), Rank::new(b));
                let pb = (Rank::new(c), Rank::new(d));
                prop_assert_eq!(t.interferes(pa, pb), t.interferes(pb, pa));
                // A pair always interferes with itself.
                prop_assert!(t.interferes(pa, pa));
                // Every resource id decodes and re-encodes.
                for r in 0..t.n_resources() {
                    match t.resource_kind(ResourceId::new(r)).unwrap() {
                        ResourceKind::GpuTx(x) => prop_assert_eq!(t.gpu_tx(x).0, r),
                        ResourceKind::GpuRx(x) => prop_assert_eq!(t.gpu_rx(x).0, r),
                        ResourceKind::NicTx(x) => prop_assert_eq!(t.nic_tx(x).0, r),
                        ResourceKind::NicRx(x) => prop_assert_eq!(t.nic_rx(x).0, r),
                        ResourceKind::PairChan(x, y) => {
                            prop_assert_eq!(t.pair_chan(x, y).0, r)
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dead_pair_channel_routes_through_relay() {
        let t = topo2();
        let (a, b) = (Rank::new(0), Rank::new(1));
        let chan = t.pair_chan(a, b);
        let mut health = crate::TopologyHealth::healthy();
        health.mask(chan);
        let t = t.with_health(health);
        let c = t.connection(a, b);
        assert_eq!(c.kind, PathKind::Intra);
        assert!(!c.path.contains(chan), "must not use the dead channel");
        assert_eq!(c.conflict.len(), 2, "relay spans two pair channels");
        // Lowest-index healthy relay is rank 2.
        assert!(c.conflict.contains(t.pair_chan(a, Rank::new(2))));
        assert!(c.conflict.contains(t.pair_chan(Rank::new(2), b)));
        assert!(c.extra_latency_ns > 0.0, "relay pays an extra hop");
        // The reverse direction is unaffected.
        let rev = t.connection(b, a);
        assert_eq!(rev.conflict.len(), 1);
    }

    #[test]
    fn dead_nic_fails_over_to_sibling() {
        let t = topo2();
        let (src, dst) = (Rank::new(0), Rank::new(8));
        let primary_tx = t.nic_tx(t.nic_of(src));
        let mut health = crate::TopologyHealth::healthy();
        health.mask(primary_tx);
        let t = t.with_health(health);
        let c = t.connection(src, dst);
        assert!(!c.conflict.contains(primary_tx));
        // Failover lands on the next NIC of node 0 (nic1 tx).
        assert!(c.conflict.contains(t.nic_tx(NicId::new(1))));
        // RX side untouched.
        assert!(c.conflict.contains(t.nic_rx(t.nic_of(dst))));
    }

    #[test]
    fn all_masked_falls_back_to_dead_primary() {
        // 2 GPUs per node, 1 NIC per node: no sibling to fail over to, and
        // no third rank to relay through — the dead resource stays on the
        // path so the simulator can surface the unrecoverable failure.
        let t = Topology::a100(2, 2);
        let chan = t.pair_chan(Rank::new(0), Rank::new(1));
        let nic_tx = t.nic_tx(t.nic_of(Rank::new(0)));
        let mut health = crate::TopologyHealth::healthy();
        health.mask(chan);
        health.mask(nic_tx);
        let t = t.with_health(health);
        assert!(t.connection(Rank::new(0), Rank::new(1)).path.contains(chan));
        assert!(t
            .connection(Rank::new(0), Rank::new(2))
            .conflict
            .contains(nic_tx));
    }

    #[test]
    fn healthy_topology_unchanged_by_empty_mask() {
        let plain = topo2();
        let masked = topo2().with_health(crate::TopologyHealth::healthy());
        for (s, d) in [(0u32, 1u32), (0, 8), (3, 12)] {
            let a = plain.connection(Rank::new(s), Rank::new(d));
            let b = masked.connection(Rank::new(s), Rank::new(d));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn single_gpu_nodes_have_no_pair_channels() {
        let t = Topology::new(
            "tiny",
            ClusterSpec {
                n_nodes: 4,
                gpus_per_node: 1,
                nics_per_node: 1,
            },
            FabricParams::a100(),
        );
        assert_eq!(t.n_resources(), 2 * 4 + 2 * 4);
        let c = t.connection(Rank::new(0), Rank::new(3));
        assert!(matches!(c.kind, PathKind::Inter { .. }));
    }
}
