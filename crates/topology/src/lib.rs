//! # rescc-topology
//!
//! Cluster topology and link cost model for the ResCCL reproduction.
//!
//! This crate is the foundation of the stack: it defines the strongly-typed
//! identifiers ([`Rank`], [`ChunkId`], [`Step`], …), the α–β–γ link cost
//! model of the paper's Eq. (1) ([`LinkParams`]), and the cluster shapes the
//! evaluation uses ([`Topology::a100`], [`Topology::v100`],
//! [`Topology::table3_topo`]).
//!
//! ```
//! use rescc_topology::{Topology, Rank};
//!
//! let topo = Topology::a100(2, 8); // two servers, 8 A100s each
//! assert_eq!(topo.n_ranks(), 16);
//! let conn = topo.connection(Rank::new(0), Rank::new(9));
//! // inter-node path: bottlenecked by the 25 GB/s NIC
//! assert!((conn.params.bandwidth() - 25.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cluster;
mod health;
mod ids;
mod params;
mod resset;

pub use cluster::{ClusterSpec, Connection, PathKind, ResourceKind, Topology, TopologyError};
pub use health::TopologyHealth;
pub use ids::{ChunkId, ConnectionId, NicId, NodeId, Rank, ResourceId, Step};
pub use params::{gbps_to_bytes_per_ns, FabricParams, LinkParams, Nanos};
pub use resset::{ResourceSet, MAX_PATH_RESOURCES};
