//! Strongly-typed identifiers used across the ResCCL stack.
//!
//! Every entity in the system — GPUs (ranks), nodes (servers), NICs,
//! contention resources, connections, chunks and algorithm steps — gets its
//! own newtype so that indices cannot be accidentally mixed up. All ids are
//! plain `u32` wrappers: cheap to copy, hash and order.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, usable for arena lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// A GPU rank — the global index of a GPU inside the collective group.
    Rank,
    "r"
);
id_type!(
    /// A node (server) hosting several GPUs.
    NodeId,
    "n"
);
id_type!(
    /// A network interface card. Several GPUs of one node may share a NIC.
    NicId,
    "nic"
);
id_type!(
    /// A contention resource: the unit over which concurrent transfers
    /// interfere (an NVLink port pair, a NIC direction, a fabric path).
    ResourceId,
    "res"
);
id_type!(
    /// A logical connection between an ordered pair of GPUs.
    ConnectionId,
    "conn"
);
id_type!(
    /// A data chunk index inside a rank's [`DataBuffer`](crate)..
    ChunkId,
    "c"
);
id_type!(
    /// A discrete algorithm step. Transfers at smaller steps logically
    /// precede transfers at larger steps for the same chunk.
    Step,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        let r = Rank::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(Rank::from(7usize), r);
        assert_eq!(Rank::from(7u32), r);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", Rank::new(3)), "r3");
        assert_eq!(format!("{:?}", NicId::new(1)), "nic1");
        assert_eq!(format!("{}", ChunkId::new(12)), "c12");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(Rank::new(1) < Rank::new(2));
        assert!(Step::new(0) < Step::new(10));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: this test simply demonstrates that ids of
        // the same type compare fine (cross-type comparison does not compile).
        assert_eq!(NodeId::new(0), NodeId::new(0));
    }
}
