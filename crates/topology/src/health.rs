//! Topology health overlay: which resources are administratively dead.
//!
//! When the simulator reports a *permanent*
//! `ResourceDown`, the Communicator masks the resource here and recompiles
//! the collective against the degraded topology —
//! [`Topology::connection`](crate::Topology::connection) routes around
//! masked resources (relay through a healthy peer for NVLink channels,
//! failover to a sibling NIC for network paths). The mask is part of the
//! compiled plan's identity: the plan cache fingerprints it, so plans for a
//! healthy and a degraded fabric never alias.

use crate::ids::ResourceId;
use serde::{Deserialize, Serialize};

/// The set of dead resources, kept sorted and duplicate-free so that equal
/// masks are structurally equal (and hash/fingerprint identically).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyHealth {
    dead: Vec<ResourceId>,
}

impl TopologyHealth {
    /// A fully healthy fabric (nothing masked).
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Mask `res` as dead. Returns `false` when it was already masked —
    /// the caller's recovery made no progress and should give up rather
    /// than recompile the same plan again.
    pub fn mask(&mut self, res: ResourceId) -> bool {
        match self.dead.binary_search(&res) {
            Ok(_) => false,
            Err(pos) => {
                self.dead.insert(pos, res);
                true
            }
        }
    }

    /// Un-mask `res` — it was restored and is usable again. Returns
    /// `false` when it was not masked (nothing to heal).
    pub fn unmask(&mut self, res: ResourceId) -> bool {
        match self.dead.binary_search(&res) {
            Ok(pos) => {
                self.dead.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Is `res` masked?
    pub fn is_dead(&self, res: ResourceId) -> bool {
        self.dead.binary_search(&res).is_ok()
    }

    /// Is `res` usable?
    pub fn is_healthy(&self, res: ResourceId) -> bool {
        !self.is_dead(res)
    }

    /// The masked resources, ascending.
    pub fn dead(&self) -> &[ResourceId] {
        &self.dead
    }

    /// Number of masked resources.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// Nothing masked?
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_idempotent_and_sorted() {
        let mut h = TopologyHealth::healthy();
        assert!(h.is_empty());
        assert!(h.mask(ResourceId::new(7)));
        assert!(h.mask(ResourceId::new(3)));
        assert!(
            !h.mask(ResourceId::new(7)),
            "double mask reports no progress"
        );
        assert_eq!(h.dead(), &[ResourceId::new(3), ResourceId::new(7)]);
        assert!(h.is_dead(ResourceId::new(3)));
        assert!(h.is_healthy(ResourceId::new(4)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn unmask_heals_and_reports_progress() {
        let mut h = TopologyHealth::healthy();
        h.mask(ResourceId::new(3));
        h.mask(ResourceId::new(7));
        assert!(h.unmask(ResourceId::new(3)));
        assert!(!h.unmask(ResourceId::new(3)), "double unmask is a no-op");
        assert_eq!(h.dead(), &[ResourceId::new(7)]);
        h.unmask(ResourceId::new(7));
        assert!(h.is_empty());
    }

    #[test]
    fn equal_masks_compare_equal_regardless_of_order() {
        let mut a = TopologyHealth::healthy();
        a.mask(ResourceId::new(1));
        a.mask(ResourceId::new(9));
        let mut b = TopologyHealth::healthy();
        b.mask(ResourceId::new(9));
        b.mask(ResourceId::new(1));
        assert_eq!(a, b);
    }
}
