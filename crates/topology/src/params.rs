//! Link cost-model parameters.
//!
//! ResCCL models every transfer with the α–β–γ cost of Eq. (1) in the paper:
//!
//! ```text
//! T_conflict = n · z · (α + c·β) + L(z) · γ
//! ```
//!
//! * `α` — startup overhead of one transmission task (ns),
//! * `β` — inverse link bandwidth (ns per byte),
//! * `γ` — constant factor scaling the contention penalty `L(z)`,
//! * `z` — the factor by which aggregate thread-level transmission
//!   capability exceeds the link bandwidth,
//! * `L(z)` — the penalty term for performance loss caused by additional
//!   thread-block contention (implemented in [`LinkParams::contention_penalty`]).
//!
//! A single thread block (TB) cannot saturate a fast link on its own: its
//! copy capability is bounded by `tb_bw` bytes/ns. Bandwidth therefore grows
//! with TB count until `saturation_tbs` TBs jointly match the link capacity
//! (the peak at 4 TBs in Fig. 4 of the paper) and degrades past it.

use serde::{Deserialize, Serialize};

/// Nanoseconds — the simulator's time unit.
pub type Nanos = u64;

/// Gigabytes per second, converted to the internal bytes/ns representation.
/// 1 GB/s == 1 byte/ns exactly in this unit system, which keeps the numbers
/// human-readable: `bw_bytes_per_ns == bw_gb_per_s`.
pub const fn gbps_to_bytes_per_ns(gb_per_s: f64) -> f64 {
    gb_per_s
}

/// Cost-model parameters of one contention resource (link / NIC direction).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Startup overhead α of a transmission task on this link, in ns.
    pub alpha_ns: f64,
    /// Inverse bandwidth β, in ns per byte (`1.0 / (GB/s)`).
    pub beta_ns_per_byte: f64,
    /// Contention-penalty scale γ, in ns.
    pub gamma_ns: f64,
    /// Copy capability of a single TB on this path, bytes per ns.
    pub tb_bw_bytes_per_ns: f64,
    /// Number of concurrently active TBs at which aggregate TB capability
    /// equals the link bandwidth (`z* = link_bw / tb_bw`).
    pub saturation_tbs: u32,
}

impl LinkParams {
    /// Build parameters from human-friendly units.
    ///
    /// * `bandwidth_gbps` — link bandwidth in GB/s,
    /// * `alpha_us` — per-task startup latency in microseconds,
    /// * `saturation_tbs` — TBs needed to saturate the link.
    pub fn new(bandwidth_gbps: f64, alpha_us: f64, saturation_tbs: u32) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(saturation_tbs >= 1, "need at least one TB to saturate");
        let bw = gbps_to_bytes_per_ns(bandwidth_gbps);
        Self {
            alpha_ns: alpha_us * 1_000.0,
            beta_ns_per_byte: 1.0 / bw,
            gamma_ns: alpha_us * 500.0,
            tb_bw_bytes_per_ns: bw / saturation_tbs as f64,
            saturation_tbs,
        }
    }

    /// Build parameters for a pure *capacity* resource: any number of
    /// concurrent transfers fair-share the full bandwidth with no
    /// per-TB cap and no contention penalty (a GPU's aggregate NVLink
    /// port, where the NVSwitch fabric imposes no per-peer ceiling).
    pub fn shared(bandwidth_gbps: f64, alpha_us: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        let bw = gbps_to_bytes_per_ns(bandwidth_gbps);
        Self {
            alpha_ns: alpha_us * 1_000.0,
            beta_ns_per_byte: 1.0 / bw,
            gamma_ns: 0.0,
            tb_bw_bytes_per_ns: bw,
            saturation_tbs: u32::MAX,
        }
    }

    /// Link bandwidth in bytes per ns (== GB/s).
    pub fn bandwidth(&self) -> f64 {
        1.0 / self.beta_ns_per_byte
    }

    /// Serial cost of transferring `bytes` with no contention and a fully
    /// capable sender: `α + c·β` of Eq. (1).
    pub fn serial_cost_ns(&self, bytes: u64) -> f64 {
        self.alpha_ns + bytes as f64 * self.beta_ns_per_byte
    }

    /// The penalty term `L(z)`: zero until the link saturates, then growing
    /// linearly with the oversubscription (each extra TB beyond `z*` adds a
    /// fixed contention cost, the additive `L(z)·γ` reading of Eq. 1).
    /// `z` is the number of TBs concurrently driving transfers on this
    /// resource.
    pub fn contention_penalty(&self, z: u32) -> f64 {
        if z <= self.saturation_tbs {
            0.0
        } else {
            (z - self.saturation_tbs) as f64
        }
    }

    /// Effective aggregate bandwidth (bytes/ns) delivered by `z` concurrent
    /// TBs on this resource.
    ///
    /// * Under-saturated (`z < z*`): each TB contributes its full `tb_bw`.
    /// * Saturated (`z == z*`): the link bandwidth is reached.
    /// * Over-saturated (`z > z*`): contention shaves the aggregate by the
    ///   γ·L(z) penalty amortized over the mean task, reproducing the
    ///   downward slope of Fig. 4.
    pub fn effective_bandwidth(&self, z: u32) -> f64 {
        if z == 0 {
            return 0.0;
        }
        let aggregate = (z as f64 * self.tb_bw_bytes_per_ns).min(self.bandwidth());
        let penalty = self.contention_penalty(z);
        if penalty == 0.0 {
            aggregate
        } else {
            // Each unit of penalty costs γ ns per "slot"; convert to a
            // multiplicative slowdown relative to a 1 MiB reference chunk.
            let reference_chunk_ns = self.serial_cost_ns(1 << 20);
            aggregate / (1.0 + penalty * self.gamma_ns / reference_chunk_ns)
        }
    }

    /// Time for one TB (of `z` concurrently active on this resource) to move
    /// `bytes`: the processor-sharing reading of Eq. (1).
    pub fn shared_cost_ns(&self, bytes: u64, z: u32) -> f64 {
        assert!(z >= 1, "at least the caller is active");
        let per_tb_bw = self.effective_bandwidth(z) / z as f64;
        self.alpha_ns + bytes as f64 / per_tb_bw
    }
}

/// Parameters of the whole fabric: intra-node, inter-node, the GPU-port
/// aggregate, and the extra hop for crossing racks in the two-tier Clos.
///
/// Two kinds of resources carry different semantics:
///
/// * **conflict resources** (per-pair NVLink channels, NIC directions) are
///   the *communication-dependency* domain of §3 — a fully-capable TB
///   (`saturation_tbs == 1`, the default 16-warp instance) saturates them
///   alone, so concurrent tasks on one of them contend (Eq. 1);
/// * **capacity resources** (the GPU's aggregate NVLink egress/ingress
///   port) only fluid-share bandwidth across many peers and never apply a
///   contention penalty (`saturation_tbs` set high).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FabricParams {
    /// Per-pair NVLink/NVSwitch channel parameters for intra-node
    /// GPU↔GPU transfers (conflict resource).
    pub intra: LinkParams,
    /// Aggregate GPU NVLink port parameters (capacity resource): total
    /// egress/ingress bandwidth shared across all of a GPU's peers.
    pub port: LinkParams,
    /// RoCE NIC parameters for inter-node transfers (conflict resource,
    /// shared by the GPUs attached to the NIC).
    pub inter: LinkParams,
    /// Additional latency (ns) when source and destination node hang off
    /// different ToR switches and traffic crosses the aggregation tier.
    pub cross_rack_extra_ns: f64,
    /// Servers attached to a single ToR switch.
    pub servers_per_rack: u32,
}

impl FabricParams {
    /// Concurrency level past which a capacity resource starts to care
    /// (effectively "never" — GPU ports only fluid-share).
    pub const PORT_SATURATION: u32 = 64;

    /// The A100 testbed of the paper: 300 GB/s per-GPU NVLink bandwidth via
    /// NVSwitch; 200 Gb/s (25 GB/s) RoCE NICs; inter-node startup latency
    /// ≥ 2.5× the intra-node latency (§4.3); two servers per rack.
    pub fn a100() -> Self {
        Self {
            // A per-pair NVLink stream is TB-limited: one 16-warp TB
            // drives ~75 GB/s, four saturate the 300 GB/s port — which is
            // exactly why NCCL opens multiple channels per connection.
            intra: LinkParams::new(300.0, 4.0, 4),
            port: LinkParams::shared(300.0, 4.0),
            // One TB's ~75 GB/s capability exceeds the 25 GB/s NIC line
            // rate, so a single TB saturates the NIC (saturation 1).
            inter: LinkParams::new(25.0, 10.0, 1),
            cross_rack_extra_ns: 3_000.0,
            servers_per_rack: 2,
        }
    }

    /// A DGX-H100-class fabric (beyond the paper's testbeds): 900 GB/s
    /// NVLink4 per GPU, 400 Gb/s (50 GB/s) NICs, one NIC per GPU.
    pub fn h100() -> Self {
        Self {
            intra: LinkParams::new(900.0, 3.0, 6),
            port: LinkParams::shared(900.0, 3.0),
            inter: LinkParams::new(50.0, 8.0, 1),
            cross_rack_extra_ns: 2_500.0,
            servers_per_rack: 4,
        }
    }

    /// The heterogeneous V100 cluster of §5.2: slower NVLink (150 GB/s) and
    /// 100 Gb/s (12.5 GB/s) RoCE.
    pub fn v100() -> Self {
        Self {
            intra: LinkParams::new(150.0, 5.0, 3),
            port: LinkParams::shared(150.0, 5.0),
            inter: LinkParams::new(12.5, 12.0, 1),
            cross_rack_extra_ns: 3_500.0,
            servers_per_rack: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_cost_is_alpha_plus_c_beta() {
        let p = LinkParams::new(25.0, 10.0, 4);
        let c = 1u64 << 20; // 1 MiB
        let expect = 10_000.0 + (c as f64) / 25.0;
        assert!((p.serial_cost_ns(c) - expect).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_peaks_at_saturation() {
        let p = LinkParams::new(25.0, 10.0, 4);
        let bw: Vec<f64> = (1..=10).map(|z| p.effective_bandwidth(z)).collect();
        // Strictly increasing up to z* = 4.
        assert!(bw[0] < bw[1] && bw[1] < bw[2] && bw[2] < bw[3]);
        // Peak at 4.
        let peak = bw[3];
        assert!((peak - 25.0).abs() < 1e-9);
        // Strictly decreasing beyond.
        assert!(bw[4] < peak && bw[5] < bw[4] && bw[9] < bw[5]);
    }

    #[test]
    fn penalty_zero_below_saturation() {
        let p = LinkParams::new(300.0, 4.0, 4);
        for z in 0..=4 {
            assert_eq!(p.contention_penalty(z), 0.0);
        }
        assert!(p.contention_penalty(5) > 0.0);
        assert!(p.contention_penalty(8) > p.contention_penalty(5));
    }

    #[test]
    fn shared_cost_grows_with_contention() {
        let p = LinkParams::new(25.0, 10.0, 4);
        let c = 4u64 << 20;
        let t4 = p.shared_cost_ns(c, 4);
        let t8 = p.shared_cost_ns(c, 8);
        assert!(t8 > t4, "oversubscribed link must be slower per TB");
    }

    #[test]
    fn a100_inter_latency_at_least_2_5x_intra() {
        let f = FabricParams::a100();
        assert!(f.inter.alpha_ns >= 2.5 * f.intra.alpha_ns);
    }

    #[test]
    fn single_tb_cannot_saturate() {
        let p = LinkParams::new(25.0, 10.0, 4);
        assert!(p.effective_bandwidth(1) < p.bandwidth());
        assert!((p.effective_bandwidth(1) - 25.0 / 4.0).abs() < 1e-9);
    }
}
