//! Topology analysis helpers: aggregate bandwidth figures a user needs when
//! sizing algorithms for a cluster (and that the benchmarks use to sanity-
//! check measured algbw against physical limits).

use crate::cluster::Topology;
use crate::ids::NodeId;

impl Topology {
    /// Aggregate injection bandwidth of one node into the fabric, bytes/ns
    /// (sum of its NIC TX line rates).
    pub fn node_injection_bandwidth(&self) -> f64 {
        self.spec().nics_per_node as f64 * self.fabric().inter.bandwidth()
    }

    /// Bisection bandwidth of the (non-blocking Clos) fabric: the smaller
    /// half's aggregate injection capacity, bytes/ns.
    pub fn bisection_bandwidth(&self) -> f64 {
        let half = self.n_nodes() / 2;
        if half == 0 {
            return f64::INFINITY; // single node: NVSwitch only
        }
        half as f64 * self.node_injection_bandwidth()
    }

    /// Aggregate NVLink egress bandwidth of a single GPU, bytes/ns.
    pub fn gpu_port_bandwidth(&self) -> f64 {
        self.fabric().port.bandwidth()
    }

    /// An upper bound on AllGather algorithm bandwidth (buffer ÷ time) on
    /// this topology.
    ///
    /// Multi-node: each of a node's `g` GPUs must receive the remote
    /// `(n−g)/n` share of the buffer `S` through the node's NICs, so
    /// `T ≥ g·S·(n−g)/n / B_inject` and
    /// `algbw = S/T ≤ B_inject · n / (g·(n−g))`.
    /// Single node: each GPU ingests `(n−1)/n · S` over its NVLink port,
    /// so `algbw ≤ B_port · n/(n−1)`.
    pub fn allgather_bound_gbps(&self) -> f64 {
        let n = self.n_ranks() as f64;
        if self.n_nodes() == 1 {
            return self.gpu_port_bandwidth() * n / (n - 1.0);
        }
        let g = self.gpus_per_node() as f64;
        self.node_injection_bandwidth() * n / (g * (n - g))
    }

    /// Hop diameter between two ranks: 0 (same GPU), 1 (same node),
    /// 2 (same rack), 3 (cross rack).
    pub fn hop_distance(&self, a: crate::Rank, b: crate::Rank) -> u32 {
        if a == b {
            0
        } else if self.same_node(a, b) {
            1
        } else if !self.is_cross_rack(a, b) {
            2
        } else {
            3
        }
    }

    /// Ranks per rack (for hierarchical algorithm sizing).
    pub fn ranks_per_rack(&self) -> u32 {
        self.fabric().servers_per_rack * self.gpus_per_node()
    }

    /// Number of racks.
    pub fn n_racks(&self) -> u32 {
        self.n_nodes().div_ceil(self.fabric().servers_per_rack)
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rank;

    #[test]
    fn injection_and_bisection() {
        let t = Topology::a100(4, 8); // 4 NICs × 25 GB/s per node
        assert!((t.node_injection_bandwidth() - 100.0).abs() < 1e-9);
        assert!((t.bisection_bandwidth() - 200.0).abs() < 1e-9);
        let single = Topology::a100(1, 8);
        assert!(single.bisection_bandwidth().is_infinite());
    }

    #[test]
    fn hop_distances() {
        let t = Topology::a100(4, 8);
        assert_eq!(t.hop_distance(Rank::new(3), Rank::new(3)), 0);
        assert_eq!(t.hop_distance(Rank::new(0), Rank::new(7)), 1);
        assert_eq!(t.hop_distance(Rank::new(0), Rank::new(8)), 2);
        assert_eq!(t.hop_distance(Rank::new(0), Rank::new(16)), 3);
    }

    #[test]
    fn rack_counts() {
        let t = Topology::a100(4, 8);
        assert_eq!(t.n_racks(), 2);
        assert_eq!(t.ranks_per_rack(), 16);
        let t3 = Topology::a100(3, 4);
        assert_eq!(t3.n_racks(), 2);
    }
}
