//! A tiny fixed-capacity set of [`ResourceId`]s.
//!
//! Connections traverse at most four resources (pair channel, GPU ports,
//! NIC directions), so a fixed inline array keeps [`Connection`](crate::Connection)
//! and downstream task types `Copy` and allocation-free.

use crate::ids::ResourceId;
use serde::{Deserialize, Serialize};

/// Maximum resources a path can traverse.
pub const MAX_PATH_RESOURCES: usize = 4;

/// An inline, ordered set of up to [`MAX_PATH_RESOURCES`] resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceSet {
    items: [ResourceId; MAX_PATH_RESOURCES],
    len: u8,
}

impl ResourceSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self {
            items: [ResourceId(0); MAX_PATH_RESOURCES],
            len: 0,
        }
    }

    /// Build from a slice.
    ///
    /// # Panics
    /// Panics if the slice holds more than [`MAX_PATH_RESOURCES`] entries.
    pub fn from_slice(resources: &[ResourceId]) -> Self {
        assert!(
            resources.len() <= MAX_PATH_RESOURCES,
            "a path traverses at most {MAX_PATH_RESOURCES} resources"
        );
        let mut s = Self::empty();
        for &r in resources {
            s.push(r);
        }
        s
    }

    /// Append a resource (ignores duplicates).
    pub fn push(&mut self, r: ResourceId) {
        if self.contains(r) {
            return;
        }
        assert!(
            (self.len as usize) < MAX_PATH_RESOURCES,
            "resource set overflow"
        );
        self.items[self.len as usize] = r;
        self.len += 1;
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, r: ResourceId) -> bool {
        self.as_slice().contains(&r)
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[ResourceId] {
        &self.items[..self.len as usize]
    }

    /// Iterate over the resources.
    pub fn iter(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.as_slice().iter().copied()
    }

    /// Do two sets share any resource?
    pub fn intersects(&self, other: &ResourceSet) -> bool {
        self.iter().any(|r| other.contains(r))
    }
}

impl<'a> IntoIterator for &'a ResourceSet {
    type Item = ResourceId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ResourceId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = ResourceSet::empty();
        assert!(s.is_empty());
        s.push(ResourceId(3));
        s.push(ResourceId(7));
        s.push(ResourceId(3)); // duplicate ignored
        assert_eq!(s.len(), 2);
        assert!(s.contains(ResourceId(7)));
        assert!(!s.contains(ResourceId(5)));
    }

    #[test]
    fn intersects() {
        let a = ResourceSet::from_slice(&[ResourceId(1), ResourceId(2)]);
        let b = ResourceSet::from_slice(&[ResourceId(2), ResourceId(3)]);
        let c = ResourceSet::from_slice(&[ResourceId(4)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&ResourceSet::empty()));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn overflow_panics() {
        ResourceSet::from_slice(&[
            ResourceId(1),
            ResourceId(2),
            ResourceId(3),
            ResourceId(4),
            ResourceId(5),
        ]);
    }
}
