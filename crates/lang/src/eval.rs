//! Evaluator: executes a parsed ResCCLang [`Program`] and collects the
//! declared [`TransferRec`]s into a validated [`AlgoSpec`].
//!
//! Semantics follow Python where the DSL borrows its syntax:
//! * one flat function scope — loop variables stay bound after the loop,
//! * `/` is floor division, `%` always yields a non-negative result
//!   (so `(offset - step) % N` from Fig. 5(a) works as the paper intends),
//! * `range(end)`, `range(start, end)` and `range(start, end, step)`.
//!
//! The evaluator enforces resource bounds so that a buggy or adversarial
//! program cannot hang the compiler: at most [`MAX_TRANSFERS`] transfers and
//! [`MAX_ITERATIONS`] total loop iterations.

use crate::ast::{BinOp, Exp, Program, Stat};
use crate::error::{LangError, Result};
use crate::spec::{AlgoSpec, TransferRec};
use rescc_topology::{ChunkId, Rank, Step};
use std::collections::HashMap;

/// Upper bound on the number of transfers a single program may declare.
pub const MAX_TRANSFERS: usize = 8_000_000;
/// Upper bound on total loop iterations during evaluation.
pub const MAX_ITERATIONS: u64 = 200_000_000;

/// Evaluate a program into a validated [`AlgoSpec`].
pub fn eval(program: &Program) -> Result<AlgoSpec> {
    let n_ranks = program.n_ranks()?;
    let op = program.op_type()?;
    let mut env: HashMap<String, i64> = HashMap::new();
    // Integer header parameters are visible as variables in the body.
    for p in &program.params {
        if let crate::ast::ParamValue::Int(v) = p.value {
            env.insert(p.name.clone(), v);
        }
    }
    let mut cx = EvalCx {
        env,
        transfers: Vec::new(),
        iterations: 0,
    };
    cx.run_block(&program.body)?;
    AlgoSpec::new(program.algo_name(), op, n_ranks, cx.transfers)
}

/// Parse source text and evaluate it in one call.
pub fn eval_source(src: &str) -> Result<AlgoSpec> {
    let program = crate::parser::parse(src)?;
    eval(&program)
}

struct EvalCx {
    env: HashMap<String, i64>,
    transfers: Vec<TransferRec>,
    iterations: u64,
}

impl EvalCx {
    fn run_block(&mut self, stats: &[Stat]) -> Result<()> {
        for s in stats {
            self.run_stat(s)?;
        }
        Ok(())
    }

    fn run_stat(&mut self, stat: &Stat) -> Result<()> {
        match stat {
            Stat::Assign { name, value } => {
                let v = self.eval_exp(value)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            Stat::For { var, range, body } => {
                let (start, end, step) = self.eval_range(range)?;
                let mut i = start;
                loop {
                    if (step > 0 && i >= end) || (step < 0 && i <= end) {
                        break;
                    }
                    self.iterations += 1;
                    if self.iterations > MAX_ITERATIONS {
                        return Err(LangError::eval(format!(
                            "loop iteration budget exceeded ({MAX_ITERATIONS}); \
                             the program likely diverges"
                        )));
                    }
                    self.env.insert(var.clone(), i);
                    self.run_block(body)?;
                    i += step;
                }
                Ok(())
            }
            Stat::Transfer { args, comm } => {
                let src = self.eval_exp(&args[0])?;
                let dst = self.eval_exp(&args[1])?;
                let step = self.eval_exp(&args[2])?;
                let chunk = self.eval_exp(&args[3])?;
                for (what, v) in [
                    ("srcRank", src),
                    ("dstRank", dst),
                    ("step", step),
                    ("chunkId", chunk),
                ] {
                    if v < 0 || v > u32::MAX as i64 {
                        return Err(LangError::eval(format!(
                            "transfer {what} evaluated to {v}, outside the valid range"
                        )));
                    }
                }
                if self.transfers.len() >= MAX_TRANSFERS {
                    return Err(LangError::eval(format!(
                        "transfer budget exceeded ({MAX_TRANSFERS})"
                    )));
                }
                self.transfers.push(TransferRec {
                    src: Rank::new(src as u32),
                    dst: Rank::new(dst as u32),
                    step: Step::new(step as u32),
                    chunk: ChunkId::new(chunk as u32),
                    comm: *comm,
                });
                Ok(())
            }
        }
    }

    fn eval_range(&mut self, range: &[Exp]) -> Result<(i64, i64, i64)> {
        let vals: Vec<i64> = range
            .iter()
            .map(|e| self.eval_exp(e))
            .collect::<Result<_>>()?;
        let (start, end, step) = match vals.as_slice() {
            [end] => (0, *end, 1),
            [start, end] => (*start, *end, 1),
            [start, end, step] => (*start, *end, *step),
            _ => unreachable!("parser guarantees 1..=3 range args"),
        };
        if step == 0 {
            return Err(LangError::eval("range() step must not be zero"));
        }
        Ok((start, end, step))
    }

    fn eval_exp(&self, exp: &Exp) -> Result<i64> {
        match exp {
            Exp::Int(v) => Ok(*v),
            Exp::Var(name) => self
                .env
                .get(name)
                .copied()
                .ok_or_else(|| LangError::eval(format!("undefined variable `{name}`"))),
            Exp::Bin { op, lhs, rhs } => {
                let l = self.eval_exp(lhs)?;
                let r = self.eval_exp(rhs)?;
                match op {
                    BinOp::Add => l.checked_add(r),
                    BinOp::Sub => l.checked_sub(r),
                    BinOp::Mul => l.checked_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(LangError::eval("division by zero"));
                        }
                        Some(l.div_euclid(r))
                    }
                    BinOp::Mod => {
                        if r == 0 {
                            return Err(LangError::eval("modulo by zero"));
                        }
                        Some(l.rem_euclid(r))
                    }
                }
                .ok_or_else(|| LangError::eval("integer overflow in expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CommType, OpType};

    const RING_AG_4: &str = r#"
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = nRanks
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
"#;

    #[test]
    fn ring_allgather_produces_n_times_n_minus_1_transfers() {
        let spec = eval_source(RING_AG_4).unwrap();
        assert_eq!(spec.op(), OpType::AllGather);
        assert_eq!(spec.transfers().len(), 4 * 3);
        // Every rank sends only to its ring successor.
        for t in spec.transfers() {
            assert_eq!(t.dst.0, (t.src.0 + 1) % 4);
            assert_eq!(t.comm, CommType::Recv);
        }
    }

    #[test]
    fn python_modulo_semantics() {
        // (0 - 1) % 4 must be 3, not -1.
        let src = r#"
def ResCCLAlgo(nRanks=4, OpType="Allgather"):
    transfer(0, (0-1)%4, 0, 0, recv)
"#;
        let spec = eval_source(src).unwrap();
        assert_eq!(spec.transfers()[0].dst.0, 3);
    }

    #[test]
    fn floor_division() {
        let src = r#"
def ResCCLAlgo(nRanks=4, OpType="Allgather"):
    x = (0-7)/2
    transfer(0, x+5, 0, 0, recv)
"#;
        // (-7).div_euclid(2) = -4; -4 + 5 = 1
        let spec = eval_source(src).unwrap();
        assert_eq!(spec.transfers()[0].dst.0, 1);
    }

    #[test]
    fn params_visible_as_variables() {
        let src = r#"
def ResCCLAlgo(nRanks=8, GPUPerNode=4, OpType="Allgather"):
    transfer(0, GPUPerNode, 0, 0, recv)
"#;
        let spec = eval_source(src).unwrap();
        assert_eq!(spec.transfers()[0].dst.0, 4);
    }

    #[test]
    fn undefined_variable_errors() {
        let src =
            "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, ghost, 0, 0, recv)\n";
        let err = eval_source(src).unwrap_err();
        assert!(err.to_string().contains("undefined variable `ghost`"));
    }

    #[test]
    fn division_by_zero_errors() {
        let src = "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = 1 / 0\n";
        assert!(eval_source(src)
            .unwrap_err()
            .to_string()
            .contains("division by zero"));
    }

    #[test]
    fn negative_transfer_argument_errors() {
        let src =
            "def ResCCLAlgo(nRanks=4, OpType=\"Allgather\"):\n    transfer(0, 0-1, 0, 0, recv)\n";
        let err = eval_source(src).unwrap_err();
        assert!(err.to_string().contains("dstRank"));
    }

    #[test]
    fn zero_step_range_errors() {
        let src = "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    for i in range(0, 4, 0):\n        x = i\n";
        assert!(eval_source(src)
            .unwrap_err()
            .to_string()
            .contains("step must not be zero"));
    }

    #[test]
    fn loop_variable_visible_after_loop() {
        let src = r#"
def ResCCLAlgo(nRanks=4, OpType="Allgather"):
    for i in range(0, 3):
        x = i
    transfer(0, i, 0, 0, recv)
"#;
        let spec = eval_source(src).unwrap();
        assert_eq!(spec.transfers()[0].dst.0, 2);
    }

    #[test]
    fn descending_range() {
        let src = r#"
def ResCCLAlgo(nRanks=8, OpType="Allgather"):
    for i in range(3, 0, 0-1):
        transfer(0, i, 3-i, 0, recv)
"#;
        let spec = eval_source(src).unwrap();
        let dsts: Vec<u32> = spec.transfers().iter().map(|t| t.dst.0).collect();
        assert_eq!(dsts, vec![3, 2, 1]);
    }

    #[test]
    fn missing_nranks_errors() {
        let src = "def ResCCLAlgo(OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, recv)\n";
        assert!(eval_source(src).unwrap_err().to_string().contains("nRanks"));
    }

    #[test]
    fn missing_optype_errors() {
        let src = "def ResCCLAlgo(nRanks=2):\n    transfer(0, 1, 0, 0, recv)\n";
        assert!(eval_source(src).unwrap_err().to_string().contains("OpType"));
    }
}
