//! # rescc-lang
//!
//! **ResCCLang** — the DSL of §4.2 / Appendix B, plus a typed builder API.
//!
//! A collective algorithm is a set of `Transfer(srcRank, dstRank, step,
//! chunkId, commType)` declarations; ResCCLang wraps them in a small
//! Python-flavoured language (`def ResCCLAlgo(...)`, `for … in range(…)`,
//! integer arithmetic). This crate provides:
//!
//! * [`parse`] — text → [`Program`] AST (lexer with Python-style
//!   indentation, recursive-descent parser for the Appendix B BNF),
//! * [`eval`] / [`eval_source`] — AST → validated [`AlgoSpec`],
//! * [`AlgoBuilder`] — the same [`AlgoSpec`] built from Rust,
//! * [`pretty`] — AST → canonical text (roundtrip-safe).
//!
//! ```
//! use rescc_lang::{eval_source, OpType};
//!
//! let spec = eval_source(r#"
//! def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
//!     N = nRanks
//!     for r in range(0, N):
//!         peer = (r+1)%N
//!         for step in range(0, N-1):
//!             transfer(r, peer, step, (r-step)%N, recv)
//! "#).unwrap();
//! assert_eq!(spec.op(), OpType::AllGather);
//! assert_eq!(spec.transfers().len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod builder;
mod diagnostics;
mod error;
mod eval;
mod lexer;
mod parser;
mod pretty;
mod spec;
mod token;
mod verify;

pub use ast::{BinOp, CommType, Exp, OpType, Param, ParamValue, Program, Stat};
pub use builder::AlgoBuilder;
pub use diagnostics::render_diagnostic;
pub use error::{LangError, Result};
pub use eval::{eval, eval_source, MAX_ITERATIONS, MAX_TRANSFERS};
pub use lexer::lex;
pub use parser::parse;
pub use pretty::pretty;
pub use spec::{AlgoSpec, TransferRec};
pub use token::{Tok, Token};
pub use verify::{verify_collective, verify_collective_with_threads};
