//! A typed Rust builder for collective algorithms.
//!
//! Algorithm generators (the expert algorithms of Appendix A, the
//! synthesizer emulations) construct specs programmatically instead of going
//! through DSL text. The builder applies the same validation as the DSL
//! evaluator, so both input paths produce identical [`AlgoSpec`]s.

use crate::ast::{CommType, OpType};
use crate::error::Result;
use crate::spec::{AlgoSpec, TransferRec};
use rescc_topology::{ChunkId, Rank, Step};

/// Incremental builder for an [`AlgoSpec`].
#[derive(Clone, Debug)]
pub struct AlgoBuilder {
    name: String,
    op: OpType,
    n_ranks: u32,
    transfers: Vec<TransferRec>,
}

impl AlgoBuilder {
    /// Start building an algorithm for `n_ranks` ranks.
    pub fn new(name: impl Into<String>, op: OpType, n_ranks: u32) -> Self {
        Self {
            name: name.into(),
            op,
            n_ranks,
            transfers: Vec::new(),
        }
    }

    /// Declare a transfer. Arguments mirror the DSL's
    /// `transfer(srcRank, dstRank, step, chunkId, commType)`.
    pub fn transfer(
        &mut self,
        src: u32,
        dst: u32,
        step: u32,
        chunk: u32,
        comm: CommType,
    ) -> &mut Self {
        self.transfers.push(TransferRec {
            src: Rank::new(src),
            dst: Rank::new(dst),
            step: Step::new(step),
            chunk: ChunkId::new(chunk),
            comm,
        });
        self
    }

    /// Shorthand for a `recv` transfer.
    pub fn recv(&mut self, src: u32, dst: u32, step: u32, chunk: u32) -> &mut Self {
        self.transfer(src, dst, step, chunk, CommType::Recv)
    }

    /// Shorthand for a `rrc` (recvReduceCopy) transfer.
    pub fn rrc(&mut self, src: u32, dst: u32, step: u32, chunk: u32) -> &mut Self {
        self.transfer(src, dst, step, chunk, CommType::Rrc)
    }

    /// Number of transfers added so far.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// Whether no transfers have been added yet.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Validate and finish.
    pub fn build(&self) -> Result<AlgoSpec> {
        AlgoSpec::new(
            self.name.clone(),
            self.op,
            self.n_ranks,
            self.transfers.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_dsl_output() {
        // Ring AllGather over 4 ranks built both ways must be identical.
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 4);
        for r in 0..4u32 {
            let peer = (r + 1) % 4;
            for step in 0..3u32 {
                b.recv(r, peer, step, (r + 4 - step) % 4);
            }
        }
        let built = b.build().unwrap();

        let dsl = r#"
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = nRanks
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
"#;
        let evaled = crate::eval::eval_source(dsl).unwrap();
        assert_eq!(built, evaled);
    }

    #[test]
    fn builder_validates() {
        let mut b = AlgoBuilder::new("bad", OpType::AllGather, 2);
        b.recv(0, 0, 0, 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn len_and_is_empty() {
        let mut b = AlgoBuilder::new("x", OpType::AllReduce, 4);
        assert!(b.is_empty());
        b.rrc(0, 1, 0, 0);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
