//! Pretty-printer: renders a [`Program`] back to canonical ResCCLang text.
//!
//! `parse(pretty(p)) == p` holds for every well-formed program (verified by
//! a property test), which makes the printer usable for program storage and
//! for emitting the algorithm header of generated kernels.

use crate::ast::{BinOp, Exp, Param, ParamValue, Program, Stat};
use std::fmt::Write;

/// Render a program as canonical DSL text.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    let params: Vec<String> = program.params.iter().map(render_param).collect();
    let _ = writeln!(out, "def {}({}):", program.func_name, params.join(", "));
    for stat in &program.body {
        render_stat(&mut out, stat, 1);
    }
    out
}

fn render_param(p: &Param) -> String {
    match &p.value {
        ParamValue::Int(v) => format!("{}={}", p.name, v),
        ParamValue::Str(s) => format!("{}=\"{}\"", p.name, s),
    }
}

fn render_stat(out: &mut String, stat: &Stat, depth: usize) {
    let pad = "    ".repeat(depth);
    match stat {
        Stat::Assign { name, value } => {
            let _ = writeln!(out, "{pad}{name} = {}", render_exp(value, 0));
        }
        Stat::For { var, range, body } => {
            let args: Vec<String> = range.iter().map(|e| render_exp(e, 0)).collect();
            let _ = writeln!(out, "{pad}for {var} in range({}):", args.join(", "));
            for s in body {
                render_stat(out, s, depth + 1);
            }
        }
        Stat::Transfer { args, comm } => {
            let rendered: Vec<String> = args.iter().map(|e| render_exp(e, 0)).collect();
            let _ = writeln!(out, "{pad}transfer({}, {})", rendered.join(", "), comm);
        }
    }
}

/// Render with minimal parentheses. `min_prec` is the binding strength of
/// the surrounding context: 0 = statement, 1 = additive operand,
/// 2 = multiplicative operand.
fn render_exp(exp: &Exp, min_prec: u8) -> String {
    match exp {
        Exp::Int(v) => v.to_string(),
        Exp::Var(name) => name.clone(),
        Exp::Bin { op, lhs, rhs } => {
            let prec = match op {
                BinOp::Add | BinOp::Sub => 1,
                BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
            };
            // Right operand of -, / and % needs parens at equal precedence
            // (a - (b - c) != a - b - c), so require strictly higher there.
            let s = format!(
                "{}{}{}",
                render_exp(lhs, prec),
                op.symbol(),
                render_exp(rhs, prec + 1)
            );
            if prec < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const HM_HEADER: &str = r#"
def ResCCLAlgo(nRanks=8, nChannels=4, nWarps=16, AlgoName="HM", OpType="Allreduce", GPUPerNode=4, NICPerNode=4):
    nNodes = 2
    for n in range(0, nNodes):
        for r in range(0, 4):
            transfer(4*n+r, (r+1)%4+4*n, 0, r, rrc)
"#;

    #[test]
    fn roundtrip_preserves_ast() {
        let p1 = parse(HM_HEADER).unwrap();
        let text = pretty(&p1);
        let p2 = parse(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn parenthesization_is_minimal_but_correct() {
        let src = "def ResCCLAlgo(nRanks=4, OpType=\"Allgather\"):\n    x = (1+2)*3-4%(5-1)\n";
        let p1 = parse(src).unwrap();
        let text = pretty(&p1);
        let p2 = parse(&text).unwrap();
        assert_eq!(p1, p2, "reparsed pretty output differs:\n{text}");
    }

    #[test]
    fn subtraction_associativity_kept() {
        // a - (b - c) must keep its parens.
        let src = "def ResCCLAlgo(nRanks=4, OpType=\"Allgather\"):\n    x = 9-(5-2)\n";
        let p1 = parse(src).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        assert_eq!(p1, p2);
        assert!(pretty(&p1).contains("9-(5-2)"));
    }
}
