//! Recursive-descent parser for ResCCLang.
//!
//! Implements the BNF of Appendix B:
//!
//! ```text
//! def       ::= funcName ( paramList ) : stat
//! paramlist ::= name = (digit | string) , ...
//! stat      ::= assign | for | transfer
//! assign    ::= id = exp
//! for       ::= for id in range ( exp+ ) : stat
//! transfer  ::= transfer ( exp*, commType )
//! exp       ::= digit | id | exp mop exp | ( exp )
//! mop       ::= + | - | * | / | %
//! ```

use crate::ast::{BinOp, CommType, Exp, Param, ParamValue, Program, Stat};
use crate::error::{LangError, Result};
use crate::lexer::lex;
use crate::token::{Tok, Token};

/// Parse a full ResCCLang source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<Token> {
        let t = self.next();
        if t.tok == want {
            Ok(t)
        } else {
            Err(LangError::parse(
                t.line,
                t.col,
                format!("expected {want}, found {}", t.tok),
            ))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if &self.peek().tok == want {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program> {
        self.expect(Tok::Def)?;
        let func_name = self.ident("function name")?;
        self.expect(Tok::LParen)?;
        let params = self.param_list()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Colon)?;
        self.expect(Tok::Newline)?;
        let body = self.block()?;
        // Nothing but EOF may follow the function body.
        let t = self.next();
        if t.tok != Tok::Eof {
            return Err(LangError::parse(
                t.line,
                t.col,
                format!("unexpected {} after function body", t.tok),
            ));
        }
        if body.is_empty() {
            return Err(LangError::parse(1, 1, "empty function body"));
        }
        Ok(Program {
            func_name,
            params,
            body,
        })
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::parse(
                t.line,
                t.col,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn param_list(&mut self) -> Result<Vec<Param>> {
        let mut params = Vec::new();
        if self.peek().tok == Tok::RParen {
            return Ok(params);
        }
        loop {
            let name = self.ident("parameter name")?;
            self.expect(Tok::Assign)?;
            let t = self.next();
            let value = match t.tok {
                Tok::Int(v) => ParamValue::Int(v),
                Tok::Str(s) => ParamValue::Str(s),
                other => {
                    return Err(LangError::parse(
                        t.line,
                        t.col,
                        format!("parameter `{name}` must be an integer or string, found {other}"),
                    ))
                }
            };
            params.push(Param { name, value });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    /// An indented block: INDENT stat+ DEDENT.
    fn block(&mut self) -> Result<Vec<Stat>> {
        self.expect(Tok::Indent)?;
        let mut stats = Vec::new();
        loop {
            match self.peek().tok {
                Tok::Dedent => {
                    self.next();
                    break;
                }
                Tok::Eof => {
                    let t = self.peek().clone();
                    return Err(LangError::parse(t.line, t.col, "unterminated block"));
                }
                _ => stats.push(self.stat()?),
            }
        }
        Ok(stats)
    }

    fn stat(&mut self) -> Result<Stat> {
        match self.peek().tok.clone() {
            Tok::For => self.for_stat(),
            Tok::Transfer => self.transfer_stat(),
            Tok::Ident(_) => self.assign_stat(),
            other => {
                let t = self.peek().clone();
                Err(LangError::parse(
                    t.line,
                    t.col,
                    format!("expected a statement (assignment, for, transfer), found {other}"),
                ))
            }
        }
    }

    fn assign_stat(&mut self) -> Result<Stat> {
        let name = self.ident("assignment target")?;
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        self.expect(Tok::Newline)?;
        Ok(Stat::Assign { name, value })
    }

    fn for_stat(&mut self) -> Result<Stat> {
        self.expect(Tok::For)?;
        let var = self.ident("loop variable")?;
        self.expect(Tok::In)?;
        self.expect(Tok::Range)?;
        self.expect(Tok::LParen)?;
        let mut range = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            range.push(self.expr()?);
        }
        if range.len() > 3 {
            let t = self.peek().clone();
            return Err(LangError::parse(
                t.line,
                t.col,
                format!("range() takes 1..=3 arguments, got {}", range.len()),
            ));
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Colon)?;
        self.expect(Tok::Newline)?;
        let body = self.block()?;
        Ok(Stat::For { var, range, body })
    }

    fn transfer_stat(&mut self) -> Result<Stat> {
        let kw = self.expect(Tok::Transfer)?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        for i in 0..4 {
            args.push(self.expr()?);
            if i < 3 {
                self.expect(Tok::Comma)?;
            }
        }
        self.expect(Tok::Comma)?;
        let comm = match self.next() {
            Token {
                tok: Tok::Ident(s), ..
            } if s == "recv" => CommType::Recv,
            Token {
                tok: Tok::Ident(s), ..
            } if s == "rrc" => CommType::Rrc,
            t => {
                return Err(LangError::parse(
                    t.line,
                    t.col,
                    format!(
                        "expected communication type `recv` or `rrc`, found {}",
                        t.tok
                    ),
                ))
            }
        };
        self.expect(Tok::RParen)?;
        self.expect(Tok::Newline)?;
        let args: [Exp; 4] = args
            .try_into()
            .map_err(|_| LangError::parse(kw.line, kw.col, "transfer() needs 4 expressions"))?;
        Ok(Stat::Transfer { args, comm })
    }

    /// Expression with precedence: `*`, `/`, `%` bind tighter than `+`, `-`.
    fn expr(&mut self) -> Result<Exp> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = Exp::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Exp> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.factor()?;
            lhs = Exp::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Exp> {
        let t = self.next();
        match t.tok {
            Tok::Int(v) => Ok(Exp::Int(v)),
            Tok::Ident(s) => Ok(Exp::Var(s)),
            Tok::Minus => {
                // Unary minus: -x parses as (0 - x).
                let inner = self.factor()?;
                Ok(Exp::bin(BinOp::Sub, Exp::Int(0), inner))
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(LangError::parse(
                t.line,
                t.col,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OpType, Stat};

    const RING_AG: &str = r#"
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = 4
    for r in range(0, N):
        offset = r
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (offset-step)%N, recv)
"#;

    #[test]
    fn parses_ring_allgather() {
        let p = parse(RING_AG).unwrap();
        assert_eq!(p.func_name, "ResCCLAlgo");
        assert_eq!(p.n_ranks().unwrap(), 4);
        assert_eq!(p.op_type().unwrap(), OpType::AllGather);
        assert_eq!(p.algo_name(), "Ring");
        assert_eq!(p.body.len(), 2); // N = 4 and the outer for
    }

    #[test]
    fn precedence_mul_over_add() {
        let p =
            parse("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = 1 + 2 * 3\n").unwrap();
        match &p.body[0] {
            Stat::Assign { value, .. } => {
                // 1 + (2*3)
                match value {
                    Exp::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(**rhs, Exp::Bin { op: BinOp::Mul, .. }));
                    }
                    other => panic!("wrong tree: {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expression() {
        let p = parse("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = (1 + 2) * 3\n")
            .unwrap();
        match &p.body[0] {
            Stat::Assign { value, .. } => {
                assert!(matches!(value, Exp::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let p = parse("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = -3\n").unwrap();
        match &p.body[0] {
            Stat::Assign { value, .. } => {
                assert_eq!(*value, Exp::bin(BinOp::Sub, Exp::Int(0), Exp::Int(3)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_transfer_with_bad_comm_type() {
        let src =
            "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, sendrecv)\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("communication type"));
    }

    #[test]
    fn rejects_range_with_too_many_args() {
        let src = "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    for i in range(0, 1, 2, 3):\n        x = 1\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("range()"));
    }

    #[test]
    fn rejects_empty_body() {
        let err = parse("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
    }

    #[test]
    fn rejects_statement_outside_function() {
        let err = parse("x = 4\n").unwrap_err();
        assert!(err.to_string().contains("expected def"));
    }

    #[test]
    fn range_with_single_argument() {
        let p = parse(
            "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    for i in range(4):\n        x = i\n",
        )
        .unwrap();
        match &p.body[0] {
            Stat::For { range, .. } => assert_eq!(range.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
