//! The canonical, validated output of a ResCCLang program: an [`AlgoSpec`].
//!
//! Whatever the input form — DSL text, the typed [`AlgoBuilder`](crate::AlgoBuilder),
//! or a synthesizer — every collective algorithm reduces to a flat list of
//! [`TransferRec`]s: `(srcRank, dstRank, step, chunkId, commType)` tuples,
//! exactly the `Transfer` abstraction of §4.2. The rest of the stack (IR,
//! scheduler, backends, simulator) consumes only this type.

use crate::ast::{CommType, OpType};
use crate::error::{LangError, Result};
use rescc_topology::{ChunkId, Rank, Step};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One transmission task declared by the algorithm: move `chunk` from
/// `src` to `dst` at logical time `step`, applying `comm` at the receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferRec {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Logical step; transfers of the same chunk are ordered by step.
    pub step: Step,
    /// The chunk moved.
    pub chunk: ChunkId,
    /// Receive semantics (copy vs reduce-copy).
    pub comm: CommType,
}

/// A validated collective algorithm specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoSpec {
    name: String,
    op: OpType,
    n_ranks: u32,
    n_chunks: u32,
    transfers: Vec<TransferRec>,
}

impl AlgoSpec {
    /// Build and validate a spec.
    ///
    /// Validation rules:
    /// * at least one transfer,
    /// * all ranks within `[0, n_ranks)` and `src != dst`,
    /// * all chunks within `[0, n_chunks)`,
    /// * no duplicate `(src, dst, step, chunk)` tuple — the tuple uniquely
    ///   identifies a transmission task (§4.2).
    pub fn new(
        name: impl Into<String>,
        op: OpType,
        n_ranks: u32,
        transfers: Vec<TransferRec>,
    ) -> Result<Self> {
        let name = name.into();
        let n_chunks = n_ranks;
        if n_ranks < 2 {
            return Err(LangError::eval(format!(
                "algorithm `{name}` needs at least 2 ranks, got {n_ranks}"
            )));
        }
        if transfers.is_empty() {
            return Err(LangError::eval(format!(
                "algorithm `{name}` declares no transfers"
            )));
        }
        let mut seen = HashSet::with_capacity(transfers.len());
        for t in &transfers {
            if t.src.0 >= n_ranks || t.dst.0 >= n_ranks {
                return Err(LangError::eval(format!(
                    "`{name}`: transfer {}->{} outside rank range 0..{n_ranks}",
                    t.src, t.dst
                )));
            }
            if t.src == t.dst {
                return Err(LangError::eval(format!(
                    "`{name}`: self-transfer at rank {} (step {}, chunk {})",
                    t.src, t.step, t.chunk
                )));
            }
            if t.chunk.0 >= n_chunks {
                return Err(LangError::eval(format!(
                    "`{name}`: chunk {} outside chunk range 0..{n_chunks}",
                    t.chunk
                )));
            }
            if !seen.insert((t.src, t.dst, t.step, t.chunk)) {
                return Err(LangError::eval(format!(
                    "`{name}`: duplicate transfer ({}, {}, {}, {})",
                    t.src, t.dst, t.step, t.chunk
                )));
            }
        }
        Ok(Self {
            name,
            op,
            n_ranks,
            n_chunks,
            transfers,
        })
    }

    /// Algorithm name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Collective operator this algorithm implements.
    pub fn op(&self) -> OpType {
        self.op
    }

    /// Number of participating ranks.
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Number of chunks each rank's buffer is divided into (== `n_ranks`,
    /// per the DataBuffer abstraction of §4.2).
    pub fn n_chunks(&self) -> u32 {
        self.n_chunks
    }

    /// All transfers, in declaration order.
    pub fn transfers(&self) -> &[TransferRec] {
        &self.transfers
    }

    /// The largest step index used, or 0 for a one-shot algorithm.
    pub fn max_step(&self) -> Step {
        self.transfers
            .iter()
            .map(|t| t.step)
            .max()
            .unwrap_or(Step::new(0))
    }

    /// Transfers of one chunk, ordered by step (ties keep declaration order).
    pub fn chunk_transfers(&self, chunk: ChunkId) -> Vec<TransferRec> {
        let mut v: Vec<TransferRec> = self
            .transfers
            .iter()
            .copied()
            .filter(|t| t.chunk == chunk)
            .collect();
        v.sort_by_key(|t| t.step);
        v
    }

    /// The distinct ordered GPU pairs (connections) the algorithm uses.
    pub fn connections(&self) -> Vec<(Rank, Rank)> {
        let mut set: Vec<(Rank, Rank)> = self
            .transfers
            .iter()
            .map(|t| (t.src, t.dst))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        set
    }

    /// Rename the algorithm (used when deriving variants).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: u32, dst: u32, step: u32, chunk: u32) -> TransferRec {
        TransferRec {
            src: Rank::new(src),
            dst: Rank::new(dst),
            step: Step::new(step),
            chunk: ChunkId::new(chunk),
            comm: CommType::Recv,
        }
    }

    #[test]
    fn valid_spec_builds() {
        let s = AlgoSpec::new(
            "t",
            OpType::AllGather,
            2,
            vec![rec(0, 1, 0, 0), rec(1, 0, 0, 1)],
        )
        .unwrap();
        assert_eq!(s.n_ranks(), 2);
        assert_eq!(s.n_chunks(), 2);
        assert_eq!(s.max_step(), Step::new(0));
        assert_eq!(s.connections().len(), 2);
    }

    #[test]
    fn rejects_out_of_range_rank() {
        let e = AlgoSpec::new("t", OpType::AllGather, 2, vec![rec(0, 2, 0, 0)]).unwrap_err();
        assert!(e.to_string().contains("rank range"));
    }

    #[test]
    fn rejects_self_transfer() {
        let e = AlgoSpec::new("t", OpType::AllGather, 2, vec![rec(1, 1, 0, 0)]).unwrap_err();
        assert!(e.to_string().contains("self-transfer"));
    }

    #[test]
    fn rejects_out_of_range_chunk() {
        let e = AlgoSpec::new("t", OpType::AllGather, 2, vec![rec(0, 1, 0, 5)]).unwrap_err();
        assert!(e.to_string().contains("chunk range"));
    }

    #[test]
    fn rejects_duplicate_tuple() {
        let e = AlgoSpec::new(
            "t",
            OpType::AllGather,
            2,
            vec![rec(0, 1, 0, 0), rec(0, 1, 0, 0)],
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_empty() {
        let e = AlgoSpec::new("t", OpType::AllGather, 2, vec![]).unwrap_err();
        assert!(e.to_string().contains("no transfers"));
    }

    #[test]
    fn chunk_transfers_sorted_by_step() {
        let s = AlgoSpec::new(
            "t",
            OpType::AllGather,
            4,
            vec![rec(2, 3, 2, 0), rec(0, 1, 0, 0), rec(1, 2, 1, 0)],
        )
        .unwrap();
        let c0 = s.chunk_transfers(ChunkId::new(0));
        assert_eq!(c0.len(), 3);
        assert!(c0[0].step < c0[1].step && c0[1].step < c0[2].step);
    }
}
