//! Human-friendly error rendering: point at the offending source location
//! with a caret, the way a production compiler reports.
//!
//! ```text
//! error: parse error at 4:27: expected communication type `recv` or `rrc`, found identifier `rcv`
//!   --> <resccl>:4:27
//!    |
//!  4 |     transfer(r, peer, 0, r, rcv)
//!    |                             ^
//! ```

use crate::error::LangError;
use std::fmt::Write;

/// Render `err` against its `source` text with a caret diagnostic.
/// Evaluation errors (which carry no span) render as a plain message.
pub fn render_diagnostic(err: &LangError, source: &str, filename: &str) -> String {
    let (line, col) = match err {
        LangError::Lex { line, col, .. } | LangError::Parse { line, col, .. } => (*line, *col),
        LangError::Eval { .. } => {
            return format!("error: {err}\n");
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "error: {err}");
    let _ = writeln!(out, "  --> {filename}:{line}:{col}");
    if let Some(text) = source.lines().nth(line.saturating_sub(1) as usize) {
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(out, " {pad} |");
        let _ = writeln!(out, " {gutter} | {text}");
        let caret_pad = " ".repeat(col.saturating_sub(1) as usize);
        let _ = writeln!(out, " {pad} | {caret_pad}^");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn caret_points_at_the_error() {
        let src =
            "def ResCCLAlgo(nRanks=4, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, rcv)\n";
        let err = parse(src).unwrap_err();
        let rendered = render_diagnostic(&err, src, "<test>");
        assert!(rendered.contains("--> <test>:2:"), "{rendered}");
        assert!(rendered.contains("transfer(0, 1, 0, 0, rcv)"));
        // The caret line exists and is under the source line.
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.trim_end().ends_with('^'), "{rendered}");
        // Caret column: `rcv` starts at column 26.
        let col = caret_line.find('^').unwrap();
        let src_line_start = rendered
            .lines()
            .find(|l| l.contains("transfer"))
            .unwrap()
            .find("transfer")
            .unwrap();
        assert!(col > src_line_start, "{rendered}");
    }

    #[test]
    fn eval_errors_render_plainly() {
        let err = LangError::eval("division by zero");
        let rendered = render_diagnostic(&err, "x = 1/0", "<test>");
        assert!(rendered.starts_with("error:"));
        assert!(!rendered.contains("-->"));
    }

    #[test]
    fn lex_errors_render_with_location() {
        let src = "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = 4 @ 2\n";
        let err = crate::lexer::lex(src).unwrap_err();
        let rendered = render_diagnostic(&err, src, "algo.rcl");
        assert!(rendered.contains("algo.rcl:2:"));
        assert!(rendered.contains("x = 4 @ 2"));
    }
}
