//! Error types for lexing, parsing and evaluating ResCCLang.

use std::fmt;

/// Any error produced while processing a ResCCLang program.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Lexical error (bad character, inconsistent indentation, …).
    Lex {
        /// 1-based line number.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line number.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Semantic / runtime error during evaluation.
    Eval {
        /// Human-readable description.
        msg: String,
    },
}

impl LangError {
    pub(crate) fn lex(line: u32, col: u32, msg: impl Into<String>) -> Self {
        Self::Lex {
            line,
            col,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(line: u32, col: u32, msg: impl Into<String>) -> Self {
        Self::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    pub(crate) fn eval(msg: impl Into<String>) -> Self {
        Self::Eval { msg: msg.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, msg } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            LangError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LangError::Eval { msg } => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LangError>;
