//! Tokens of ResCCLang.
//!
//! ResCCLang is the Python-flavoured DSL of Appendix B: block structure is
//! expressed through indentation, so the lexer emits synthetic
//! [`Tok::Indent`] / [`Tok::Dedent`] tokens exactly like CPython's tokenizer.

use std::fmt;

/// A lexical token together with its source position (1-based line/column).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// `def`
    Def,
    /// `for`
    For,
    /// `in`
    In,
    /// `range`
    Range,
    /// `transfer`
    Transfer,
    /// An identifier (including parameter names such as `nRanks`).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal, quotes stripped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of a logical line.
    Newline,
    /// Increase of indentation level (opens a block).
    Indent,
    /// Decrease of indentation level (closes a block).
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Def => write!(f, "def"),
            Tok::For => write!(f, "for"),
            Tok::In => write!(f, "in"),
            Tok::Range => write!(f, "range"),
            Tok::Transfer => write!(f, "transfer"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Newline => write!(f, "newline"),
            Tok::Indent => write!(f, "indent"),
            Tok::Dedent => write!(f, "dedent"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}
