//! Abstract syntax tree of ResCCLang, mirroring the BNF of Appendix B.

use crate::error::{LangError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Collective operator implemented by an algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Every rank ends with every rank's chunk.
    AllGather,
    /// Every rank ends with the element-wise reduction of all ranks' data.
    AllReduce,
    /// Rank `i` ends with the reduction of chunk `i` across all ranks.
    ReduceScatter,
}

impl OpType {
    /// Parse the quoted operator name of the DSL (`"Allgather"` …).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "Allgather" => Ok(OpType::AllGather),
            "Allreduce" => Ok(OpType::AllReduce),
            "Reducescatter" => Ok(OpType::ReduceScatter),
            other => Err(LangError::eval(format!(
                "unknown OpType \"{other}\"; expected Allgather, Allreduce or Reducescatter"
            ))),
        }
    }

    /// The DSL spelling.
    pub fn dsl_name(self) -> &'static str {
        match self {
            OpType::AllGather => "Allgather",
            OpType::AllReduce => "Allreduce",
            OpType::ReduceScatter => "Reducescatter",
        }
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.dsl_name())
    }
}

/// Communication type of one transfer: plain receive-copy or
/// receive-reduce-copy (the reducing variant used by ReduceScatter phases).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommType {
    /// Receive and copy into the destination buffer slot.
    Recv,
    /// Receive, reduce with the local value, and copy
    /// (`recvReduceCopy` in NCCL primitive terms).
    Rrc,
}

impl CommType {
    /// The DSL spelling (`recv` / `rrc`).
    pub fn dsl_name(self) -> &'static str {
        match self {
            CommType::Recv => "recv",
            CommType::Rrc => "rrc",
        }
    }
}

impl fmt::Display for CommType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.dsl_name())
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division, floor semantics like Python)
    Div,
    /// `%` (modulo, non-negative result like Python)
    Mod,
}

impl BinOp {
    /// Operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Exp {
    /// Integer literal.
    Int(i64),
    /// Variable reference (loop variable, assignment or parameter).
    Var(String),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Exp>,
        /// Right operand.
        rhs: Box<Exp>,
    },
}

impl Exp {
    /// Shorthand for building a binary expression.
    pub fn bin(op: BinOp, lhs: Exp, rhs: Exp) -> Exp {
        Exp::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Exp {
        Exp::Var(name.into())
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stat {
    /// `name = exp`
    Assign {
        /// Target variable.
        name: String,
        /// Assigned value.
        value: Exp,
    },
    /// `for var in range(args...):` with 1–3 range arguments
    /// (`end` / `start, end` / `start, end, step`).
    For {
        /// Loop variable.
        var: String,
        /// Range arguments.
        range: Vec<Exp>,
        /// Loop body.
        body: Vec<Stat>,
    },
    /// `transfer(srcRank, dstRank, step, chunkId, commType)`
    Transfer {
        /// `(srcRank, dstRank, step, chunkId)` expressions.
        args: [Exp; 4],
        /// Communication type.
        comm: CommType,
    },
}

/// Value of a header parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Integer parameter (nRanks, nChannels, nWarps, GPUPerNode, NICPerNode).
    Int(i64),
    /// String parameter (AlgoName, OpType).
    Str(String),
}

/// One `name = value` entry in the `def ResCCLAlgo(...)` header.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter value.
    pub value: ParamValue,
}

/// A complete ResCCLang program: the `def ResCCLAlgo(params...):` header and
/// the statement body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Function name (always `ResCCLAlgo` in well-formed programs).
    pub func_name: String,
    /// Header parameters.
    pub params: Vec<Param>,
    /// Statement body.
    pub body: Vec<Stat>,
}

impl Program {
    /// Look up an integer header parameter.
    pub fn int_param(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|p| p.name == name).and_then(|p| {
            if let ParamValue::Int(v) = p.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Look up a string header parameter.
    pub fn str_param(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|p| p.name == name).and_then(|p| {
            if let ParamValue::Str(ref s) = p.value {
                Some(s.as_str())
            } else {
                None
            }
        })
    }

    /// The declared rank count.
    pub fn n_ranks(&self) -> Result<u32> {
        let v = self
            .int_param("nRanks")
            .ok_or_else(|| LangError::eval("missing required parameter `nRanks`"))?;
        if v < 2 {
            return Err(LangError::eval(format!(
                "nRanks must be at least 2, got {v}"
            )));
        }
        Ok(v as u32)
    }

    /// The declared collective operator.
    pub fn op_type(&self) -> Result<OpType> {
        let s = self
            .str_param("OpType")
            .ok_or_else(|| LangError::eval("missing required parameter `OpType`"))?;
        OpType::parse(s)
    }

    /// The algorithm name (`AlgoName` parameter, or the function name).
    pub fn algo_name(&self) -> &str {
        self.str_param("AlgoName").unwrap_or(&self.func_name)
    }
}
